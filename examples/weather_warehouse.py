"""A small weather warehouse on the OLAP facade.

The downstream-user view of the whole system: define named dimensions
in physical units, bulk-load a TEMPERATURE-like cube, answer analyst
queries in those units, persist the warehouse to a file and reopen it
— everything running on SHIFT-SPLIT, the tiling, and the simulated
disk underneath.

Run:  python examples/weather_warehouse.py
"""

import tempfile
from pathlib import Path

from repro import Dimension, WaveletCube
from repro.datasets import temperature_cube
from repro.storage.persist import load_standard_store, save_standard_store


def main() -> None:
    shape = (16, 16, 8, 64)
    cube_data = temperature_cube(shape, seed=7)

    warehouse = WaveletCube(
        [
            Dimension("latitude", 16, low=-90.0, high=90.0),
            Dimension("longitude", 16, low=0.0, high=360.0),
            Dimension("altitude", 8, low=0.0, high=16.0),  # km
            Dimension("halfday", 64),  # two samples per day
        ],
        block_edge=4,
        pool_blocks=256,
    )
    report = warehouse.load(cube_data)
    print(
        f"loaded {cube_data.size:,} cells in {report.chunks} chunks "
        f"({report.block_ios} block I/Os)\n"
    )

    print("analyst queries (domain units):")
    tropics = warehouse.average(latitude=(-23.5, 23.5))
    print(f"  mean tropical temperature:            {tropics:7.2f} K")
    poles = warehouse.average(latitude=(67.0, 90.0))
    print(f"  mean arctic temperature:              {poles:7.2f} K")
    high_alt = warehouse.average(altitude=(10.0, 16.0))
    print(f"  mean above 10 km:                     {high_alt:7.2f} K")
    first_week = warehouse.average(halfday=(0, 13))
    print(f"  mean over the first week:             {first_week:7.2f} K")
    spot = warehouse.value_at(
        latitude=0.0, longitude=180.0, altitude=0.0, halfday=10
    )
    print(f"  spot value (equator, 180E, surface):  {spot:7.2f} K")

    window = warehouse.window(latitude=(0.0, 45.0), altitude=(0.0, 2.0))
    print(f"  reconstructed window shape:           {window.shape}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "warehouse.npz"
        save_standard_store(warehouse.store, path)
        size_kb = path.stat().st_size / 1024
        reopened = load_standard_store(path, pool_capacity=64)
        check = reopened.read_point((0, 0, 0, 0))
        print(
            f"\npersisted to {path.name} ({size_kb:.0f} KiB), reopened, "
            f"first coefficient intact: {check:.3f}"
        )

    print(f"\ntotal session I/O: {warehouse.stats}")


if __name__ == "__main__":
    main()
