"""Multidimensional stream synopses (paper, Section 5.3, Results 4-5).

A grid of sensors reports a 2-d slab every tick; the stream grows along
time without bound.  Two maintainers summarise it on the fly:

* the standard-form maintainer (Result 4), whose working memory grows
  with the *fixed* domain (``N^{d-1} log T`` open coefficients), and
* the hybrid non-standard maintainer (Result 5), which needs only a
  logarithmic crest.

Both are compared on memory and on approximation quality.

Run:  python examples/multidim_stream.py
"""

import numpy as np

from repro import NonStandardStreamSynopsis, StandardStreamSynopsis
from repro.datasets import slab_stream
from repro.synopsis import relative_l2_error


def main() -> None:
    edge = 8  # sensor grid edge (the fixed spatial domain)
    time_domain = 256
    k = 96

    slabs = list(slab_stream((edge, edge), time_domain, seed=29))
    cube = np.stack(slabs, axis=-1)

    # Result 4 — standard form.
    standard = StandardStreamSynopsis(
        (edge, edge), time_domain, k=k, time_buffer=4
    )
    for slab in slabs:
        standard.push_slab(slab)

    # Result 5 — hybrid non-standard form (the within-cube time axis is
    # the cube's last dimension; chunks arrive in z-order).
    hybrid = NonStandardStreamSynopsis(
        edge, 3, time_domain, k=k, chunk_edge=2
    )
    cubes = time_domain // edge
    for cube_index in range(cubes):
        block = cube[:, :, cube_index * edge : (cube_index + 1) * edge]
        for grid in hybrid.expected_chunk_order():
            hybrid.push_chunk(
                block[
                    grid[0] * 2 : (grid[0] + 1) * 2,
                    grid[1] * 2 : (grid[1] + 1) * 2,
                    grid[2] * 2 : (grid[2] + 1) * 2,
                ]
            )

    print(
        f"{edge}x{edge} sensor grid, {time_domain} ticks, K = {k} "
        f"({k / cube.size:.2%} of the cells):\n"
    )
    std_error = relative_l2_error(standard.estimate(), cube)
    hyb_error = relative_l2_error(hybrid.estimate(), cube)
    print(
        f"  standard form (Result 4): "
        f"{standard.max_live_coefficients:5d} live coefficients, "
        f"relative L2 error {std_error:.3f}"
    )
    print(
        f"  hybrid form   (Result 5): "
        f"{hybrid.max_live_coefficients:5d} live coefficients, "
        f"relative L2 error {hyb_error:.3f}"
    )
    print(
        "\nThe paper's trade-off: the standard form needs working "
        "memory proportional to the whole spatial domain "
        f"(N^(d-1) log T = {edge * edge} x log T here), while the "
        "hybrid non-standard maintainer runs in logarithmic space."
    )


if __name__ == "__main__":
    main()
