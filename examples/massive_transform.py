"""Transforming a massive dataset under a memory budget (paper,
Section 5.1 and Figure 11).

The dataset is never materialised: a callable serves chunks on demand,
exactly like scanning a chunk-organised file.  The three methods of
Figure 11 run side by side — Vitter et al., SHIFT-SPLIT standard and
SHIFT-SPLIT non-standard — and their coefficient I/O is reported for a
sweep of memory sizes.

Run:  python examples/massive_transform.py
"""

from repro import (
    DenseNonStandardStore,
    DenseStandardStore,
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.datasets import temperature_cube
from repro.transform import vitter_io_cost


def main() -> None:
    edge = 16
    shape = (edge,) * 4
    cube = temperature_cube(shape, seed=7)
    print(
        f"4-d TEMPERATURE-like cube, {edge}^4 = {cube.size:,} cells "
        f"(scaled stand-in for the paper's 16 GB JPL cube)\n"
    )

    def chunk_source(chunk_edge):
        def getter(grid_position):
            selector = tuple(
                slice(g * chunk_edge, (g + 1) * chunk_edge)
                for g in grid_position
            )
            return cube[selector]

        return getter

    vitter = vitter_io_cost(shape)
    print(f"{'memory':>10} {'Vitter':>12} {'SS standard':>12} {'SS non-std':>12}")
    for memory_edge in (2, 4, 8):
        std_store = DenseStandardStore(shape)
        std = transform_standard_chunked(
            std_store, chunk_source(memory_edge), (memory_edge,) * 4
        )
        ns_store = DenseNonStandardStore(edge, 4)
        ns = transform_nonstandard_chunked(
            ns_store, chunk_source(memory_edge), memory_edge, order="zorder"
        )
        print(
            f"{memory_edge ** 4:>10,} {vitter:>12,} "
            f"{std.coefficient_ios:>12,} {ns.coefficient_ios:>12,}"
        )

    print(
        "\nVitter is flat in memory; SHIFT-SPLIT standard falls as the "
        "SPLIT term shrinks; non-standard stays at the optimal 2 N^d."
    )


if __name__ == "__main__":
    main()
