"""OLAP over a TEMPERATURE-like 4-d cube (the paper's Section 6.1 data).

Loads a latitude x longitude x altitude x time cube into a tiled
wavelet store with the SHIFT-SPLIT bulk transformation, then answers
the kind of range-aggregate queries the paper's introduction motivates
— average temperature over a region and period — counting disk blocks
per query.

Run:  python examples/olap_temperature.py
"""

from repro import (
    TiledStandardStore,
    range_sum_standard,
    transform_standard_chunked,
)
from repro.datasets import temperature_cube


def main() -> None:
    shape = (16, 16, 8, 64)  # lat, lon, alt, time
    cube = temperature_cube(shape, seed=7)
    print(
        f"TEMPERATURE-like cube {shape}: "
        f"{cube.size:,} cells, {cube.size * 8 / 2**20:.1f} MiB raw"
    )

    store = TiledStandardStore(shape, block_edge=4, pool_capacity=256)
    report = transform_standard_chunked(store, cube, (4, 4, 4, 8))
    print(
        f"bulk transform: {report.chunks} chunks, "
        f"{report.block_ios} block I/Os"
    )

    queries = [
        ("tropics, all altitudes, first month", (6, 0, 0, 0), (9, 15, 7, 3)),
        ("northern quarter, surface, full range", (0, 0, 0, 0), (3, 15, 1, 63)),
        ("one cell's full history", (8, 8, 4, 0), (8, 8, 4, 63)),
    ]
    for label, lows, highs in queries:
        cells = 1
        for lo, hi in zip(lows, highs):
            cells *= hi - lo + 1
        store.drop_cache()
        before = store.stats.snapshot()
        total = range_sum_standard(store, lows, highs)
        reads = store.stats.delta_since(before).block_reads
        truth = cube[
            tuple(slice(lo, hi + 1) for lo, hi in zip(lows, highs))
        ].sum()
        print(
            f"  {label}: avg {total / cells:7.2f} K "
            f"(truth {truth / cells:7.2f}) — {reads} block reads "
            f"for {cells:,} cells"
        )

    print(
        "\nEach query touched a handful of blocks instead of the "
        "region's cells — Lemma 2 plus Section 3's tiling."
    )


if __name__ == "__main__":
    main()
