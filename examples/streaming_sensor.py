"""Best K-term synopsis of a sensor stream (paper, Section 5.3,
Result 3).

A bursty sensor feed is summarised on the fly with a K-term Haar
synopsis, twice: with the per-item baseline (Gilbert et al.) and with
the buffered SHIFT-SPLIT maintainer.  Both end with the *same*
synopsis; the buffered one does a fraction of the coefficient updates.

Run:  python examples/streaming_sensor.py
"""

import numpy as np

from repro import StreamSynopsis1D
from repro.datasets import bursty_stream


def main() -> None:
    domain = 1 << 16
    k = 48
    # ~20 large bursts on a quiet baseline: the regime where a K-term
    # synopsis captures almost all the energy.
    stream = bursty_stream(domain, burst_probability=0.0003, seed=23)

    baseline = StreamSynopsis1D(domain, k=k, buffer_size=1)
    buffered = StreamSynopsis1D(domain, k=k, buffer_size=128)
    for value in stream:
        baseline.push(value)
        buffered.push(value)

    print(f"stream of {domain:,} items, K = {k}")
    print(
        f"  baseline (per item):   "
        f"{baseline.crest_updates / domain:6.3f} crest updates/item, "
        f"{baseline.max_live_coefficients} live coefficients"
    )
    print(
        f"  buffered (B = 128):    "
        f"{buffered.crest_updates / domain:6.3f} crest updates/item, "
        f"{buffered.max_live_coefficients} live coefficients"
    )
    speedup = baseline.crest_updates / max(buffered.crest_updates, 1)
    print(f"  crest-update reduction: {speedup:.0f}x (Result 3)")

    # Both maintainers retain the same best-K set (ties aside).
    shared = set(baseline.synopsis()) & set(buffered.synopsis())
    print(f"  synopses agree on {len(shared)}/{k} coefficients")

    # Approximation quality: K terms out of 65,536.
    estimate = buffered.estimate()
    error = np.linalg.norm(estimate - stream) / np.linalg.norm(stream)
    print(
        f"  relative L2 error of the {k}-term estimate: {error:.3f} "
        f"({k / domain:.4%} of the coefficients retained)"
    )


if __name__ == "__main__":
    main()
