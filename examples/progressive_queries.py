"""Progressive OLAP answering (the paper's "approximate, progressive
or even fast exact answers" motivation).

A range-aggregate query over a transformed cube is refined level by
level: the client sees an estimate after every refinement and can stop
early — the error/IO trade-off is printed as the refinement proceeds.

Run:  python examples/progressive_queries.py
"""

from repro import DenseStandardStore, apply_chunk_standard
from repro.datasets import temperature_cube
from repro.reconstruct.progressive import progressive_range_sum_standard


def main() -> None:
    cube = temperature_cube((32, 32, 4, 4), seed=7)
    field = cube[:, :, 0, 0]  # a smooth 2-d slice
    store = DenseStandardStore(field.shape)
    apply_chunk_standard(store, field, (0, 0))

    lows, highs = (3, 5), (27, 30)
    truth = field[3:28, 5:31].sum()
    cells = 25 * 26
    print(
        f"progressive range average over a {cells}-cell window "
        f"(truth {truth / cells:.3f} K):\n"
    )
    print(f"{'refinement':>10} {'coeffs read':>12} {'estimate':>10} {'rel. error':>11}")
    for step in progressive_range_sum_standard(store, lows, highs):
        error = abs(step.estimate - truth) / abs(truth)
        tag = "  (exact)" if step.exact else ""
        print(
            f"{'level ' + str(step.cutoff):>10} "
            f"{step.coefficients_read:>12} "
            f"{step.estimate / cells:>10.3f} "
            f"{error:>11.2e}{tag}"
        )

    print(
        "\nA client content with 0.1% error could have stopped several "
        "refinements (and most of the I/O) early."
    )


if __name__ == "__main__":
    main()
