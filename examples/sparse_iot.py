"""Sparse IoT telemetry through the chunk-organised pipeline.

A city-wide sensor deployment produces a huge but mostly-empty grid
(few sensors ever fire).  The readings land in a chunk-organised file
(Section 5.1's assumed input layout) where empty chunks are never
materialised; the bulk transformation then skips them entirely, so
both storage and transformation I/O track the *occupied* volume, not
the domain.

Run:  python examples/sparse_iot.py
"""

import numpy as np

from repro import DenseStandardStore, range_sum_standard
from repro.storage import ChunkedDataFile
from repro.transform import transform_standard_chunked


def main() -> None:
    edge, chunk_edge = 256, 16
    rng = np.random.default_rng(61)

    # 40 active sensor neighbourhoods in a 256x256 grid.
    readings = np.zeros((edge, edge))
    for __ in range(40):
        x, y = rng.integers(0, edge - 8, size=2)
        readings[x : x + 8, y : y + 8] = rng.gamma(2.0, 3.0, size=(8, 8))

    source = ChunkedDataFile.from_array(readings, (chunk_edge, chunk_edge))
    total_chunks = (edge // chunk_edge) ** 2
    print(
        f"{edge}x{edge} grid, {(readings != 0).sum():,} non-zero cells; "
        f"chunk file holds {source.occupied_chunks}/{total_chunks} chunks "
        f"({source.stats.block_writes} block writes to ingest)"
    )

    source.stats.reset()
    store = DenseStandardStore((edge, edge))
    report = transform_standard_chunked(
        store,
        source.as_chunk_source(),
        (chunk_edge, chunk_edge),
        skip_zero_chunks=True,
    )
    print(
        f"bulk transform: processed {report.chunks} chunks, skipped "
        f"{report.extras['skipped_chunks']} empty ones; "
        f"{source.stats.block_reads} source block reads, "
        f"{report.store_stats.coefficient_ios:,} coefficient I/Os"
    )

    print(
        f"(a dense load would touch every one of the {total_chunks} "
        f"chunks — I/O tracks sensor activity, not city area)"
    )

    # The sparse transform answers queries like any other.
    total = range_sum_standard(store, (0, 0), (edge - 1, edge - 1))
    print(f"\ntotal reading from the transform: {total:,.1f} "
          f"(truth {readings.sum():,.1f})")


if __name__ == "__main__":
    main()
