"""Monthly appends to a PRECIPITATION-like archive (paper, Section 5.2
and Figure 13).

Ten years of measurements are already transformed; every month a new
8 x 8 x 32 slab arrives.  The appender SHIFT-SPLITs each slab into the
existing transform, doubling (expanding) the time dimension only when
it runs out — the expansion spikes and steady months are printed just
like Figure 13.

Run:  python examples/append_precipitation.py
"""

from repro import StandardAppender, TiledStandardStore, range_sum_standard
from repro.datasets import precipitation_months


def main() -> None:
    months = 36
    tile_edge = 4

    appender = StandardAppender(
        slab_shape=(8, 8, 32),
        grow_axis=2,
        store_factory=lambda shape, stats: TiledStandardStore(
            shape, block_edge=tile_edge, pool_capacity=64, stats=stats
        ),
    )

    print(f"appending {months} months (tile edge {tile_edge}):")
    total_rain = 0.0
    for month, slab in enumerate(precipitation_months(months, seed=11)):
        total_rain += float(slab.sum())
        record = appender.append(slab)
        marker = "  <-- EXPANSION (time domain doubled)" if record.expanded else ""
        if record.expanded or month % 6 == 0:
            print(
                f"  month {month:2d}: {record.io_delta.block_ios:6d} "
                f"block I/Os, time extent {record.domain_shape[2]:4d}"
                f"{marker}"
            )

    # The maintained transform stays queryable the whole time.
    store = appender.store
    answer = range_sum_standard(
        store, (0, 0, 0), (7, 7, appender.logical_extent - 1)
    )
    print(
        f"\ntotal precipitation from the transform: {answer:,.1f} "
        f"(ground truth {total_rain:,.1f})"
    )
    expansions = sum(1 for r in appender.records if r.expanded)
    print(
        f"{expansions} expansions in {months} months; everything else "
        f"was a cheap SHIFT-SPLIT append."
    )


if __name__ == "__main__":
    main()
