"""Quickstart: SHIFT-SPLIT in five minutes.

Builds a wavelet transform chunk by chunk with SHIFT-SPLIT (never
holding the full dataset in memory), stores it in disk-block tiles,
and answers queries straight from the tiles — printing the I/O the
paper's machinery saves at each step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    TiledStandardStore,
    point_query_standard,
    range_sum_standard,
    reconstruct_box_standard,
    transform_standard_chunked,
)


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.normal(loc=10.0, size=(64, 64))

    # A store whose disk blocks are 8x8-coefficient wavelet-tree tiles
    # (Section 3's optimal allocation), with a small buffer pool.
    store = TiledStandardStore((64, 64), block_edge=8, pool_capacity=32)

    # Bulk-load with SHIFT-SPLIT: each 8x8 chunk is transformed in
    # memory, its details SHIFTed into place, its average SPLIT along
    # the path to the root (Section 5.1).
    report = transform_standard_chunked(store, data, chunk_shape=(8, 8))
    print(f"loaded {report.chunks} chunks")
    print(f"block I/O for the whole load: {report.block_ios}")

    # Point query: Lemma 1 says (log N + 1)^2 coefficients; tiling
    # compresses that to one block per band pair.
    store.drop_cache()
    before = store.stats.snapshot()
    value = point_query_standard(store, (17, 42))
    delta = store.stats.delta_since(before)
    print(
        f"point query -> {value:.3f} "
        f"(truth {data[17, 42]:.3f}) in {delta.block_reads} block reads"
    )

    # Range sum over an arbitrary box: Lemma 2's boundary coefficients.
    store.drop_cache()
    before = store.stats.snapshot()
    total = range_sum_standard(store, (8, 16), (39, 47))
    delta = store.stats.delta_since(before)
    print(
        f"range sum    -> {total:.3f} "
        f"(truth {data[8:40, 16:48].sum():.3f}) "
        f"in {delta.block_reads} block reads"
    )

    # Partial reconstruction of an arbitrary window (Result 6): the
    # inverse SHIFT-SPLIT, far cheaper than rebuilding everything.
    store.drop_cache()
    before = store.stats.snapshot()
    window = reconstruct_box_standard(store, (10, 20), (26, 52))
    delta = store.stats.delta_since(before)
    assert np.allclose(window, data[10:26, 20:52])
    print(
        f"reconstructed a {window.shape} window exactly "
        f"in {delta.block_reads} block reads "
        f"(naive full rebuild would touch all "
        f"{store.tile_store.num_tiles} tiles)"
    )


if __name__ == "__main__":
    main()
