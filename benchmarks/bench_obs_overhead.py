"""Benchmark for the serving-telemetry overhead budget.

Drives the same aggregate workload against three otherwise-identical
single-tenant hubs on live threading servers:

* ``baseline`` — every serving-path recorder disabled
  (``flight_capacity=0``, ``reqlog_capacity=0``, ``heat_max_tiles=0``);
* ``instrumented`` — the always-on production shape: request log,
  flight recorder and tile-heat accounting enabled, tracer off;
* ``traced`` — ``instrumented`` plus a live :class:`Tracer`
  installed, the opt-in debugging shape.

Request batches are interleaved across the servers so clock drift and
cache warmup hit all three equally.  The acceptance budget is the
*instrumented* tail: always-on telemetry must stay within 5% of the
baseline p95 (the traced column is informational — tracing is opt-in
and allowed to cost more).

Run standalone for the JSON report (written to ``BENCH_obs.json``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

``--smoke`` shrinks the request counts for CI; the report schema is
identical.
"""

import json
import sys
import time
import urllib.request

import numpy as np

FULL = dict(batches=10, requests_per_batch=25, warmup=20)
SMOKE = dict(batches=4, requests_per_batch=8, warmup=4)

TARGET_P95_OVERHEAD = 0.05

_PATH = "/cube/grid/aggregate?cut=x:0-31|y:0-31"


def _fetch(base, path, key):
    request = urllib.request.Request(base + path)
    request.add_header("X-API-Key", key)
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=30) as response:
        response.read()
        code = response.status
    return code, (time.perf_counter() - start) * 1e3


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_hub(telemetry):
    from repro.olap.schema import Dimension
    from repro.server.hub import ServingHub

    if telemetry:
        hub = ServingHub(num_workers=2)
    else:
        hub = ServingHub(
            num_workers=2,
            flight_capacity=0,
            reqlog_capacity=0,
            heat_max_tiles=0,
        )
    rng = np.random.default_rng(29)
    hub.add_tenant("bench", api_key="bench-key")
    hub.add_cube(
        "bench",
        "grid",
        [Dimension("x", 64), Dimension("y", 64)],
        data=rng.random((64, 64)),
    )
    return hub


def obs_overhead(smoke=False):
    from repro.obs import set_tracer, tracing
    from repro.server.http import spawn

    cfg = SMOKE if smoke else FULL

    # Build the instrumented hub FIRST so the baseline hub's
    # construction does not leave the global heat recorder pointing at
    # a closed hub; each ServingHub installs its heat on construct.
    servers = {}
    try:
        for name, telemetry in (
            ("instrumented", True),
            ("traced", True),
            ("baseline", False),
        ):
            hub = _build_hub(telemetry)
            server, __thread = spawn(hub)
            host, port = server.server_address
            servers[name] = (hub, server, f"http://{host}:{port}")

        latencies = {name: [] for name in servers}
        codes = {name: [] for name in servers}

        def drive(name, count, record=True):
            __, __, base = servers[name]
            if name == "traced":
                with tracing():
                    batch = [_fetch(base, _PATH, "bench-key") for __ in range(count)]
            else:
                batch = [_fetch(base, _PATH, "bench-key") for __ in range(count)]
            if record:
                for code, ms in batch:
                    codes[name].append(code)
                    latencies[name].append(ms)

        for name in servers:
            drive(name, cfg["warmup"], record=False)
        for __ in range(cfg["batches"]):
            for name in ("baseline", "instrumented", "traced"):
                drive(name, cfg["requests_per_batch"])

        report = {"config": dict(cfg, smoke=smoke)}
        for name in ("baseline", "instrumented", "traced"):
            assert set(codes[name]) == {200}, (
                f"{name}: unexpected {set(codes[name])}"
            )
            report[name] = {
                "requests": len(latencies[name]),
                "p50_ms": round(_percentile(latencies[name], 0.50), 3),
                "p95_ms": round(_percentile(latencies[name], 0.95), 3),
            }
        base_p95 = max(report["baseline"]["p95_ms"], 1e-9)
        base_p50 = max(report["baseline"]["p50_ms"], 1e-9)
        report["overhead_p50"] = round(
            report["instrumented"]["p50_ms"] / base_p50 - 1.0, 4
        )
        report["overhead_p95"] = round(
            report["instrumented"]["p95_ms"] / base_p95 - 1.0, 4
        )
        report["traced_overhead_p95"] = round(
            report["traced"]["p95_ms"] / base_p95 - 1.0, 4
        )
        report["target_p95_overhead"] = TARGET_P95_OVERHEAD
        report["within_target"] = (
            report["overhead_p95"] <= TARGET_P95_OVERHEAD
        )
    finally:
        set_tracer(None)
        for hub, server, __ in servers.values():
            server.shutdown()
            server.server_close()
            hub.close()

    print(json.dumps(report, indent=2))
    with open("BENCH_obs.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(
        "obs-overhead: instrumented p95 "
        f"{report['instrumented']['p95_ms']}ms vs baseline "
        f"{report['baseline']['p95_ms']}ms "
        f"(overhead {report['overhead_p95']:+.1%}, "
        f"target <={TARGET_P95_OVERHEAD:.0%}, "
        f"within_target={report['within_target']}); "
        "written to BENCH_obs.json",
        file=sys.stderr,
    )
    return report


def test_obs_overhead(benchmark):
    from conftest import run_experiment

    report = run_experiment(benchmark, obs_overhead, smoke=True)
    for name in ("baseline", "instrumented", "traced"):
        assert report[name]["requests"] > 0
        assert report[name]["p95_ms"] >= report[name]["p50_ms"] >= 0.0
    # the overhead numbers are recorded, not asserted: single-digit
    # millisecond localhost latencies are too noisy to gate CI on
    assert "overhead_p95" in report and "within_target" in report


if __name__ == "__main__":
    obs_overhead(smoke="--smoke" in sys.argv)
