"""Benchmark: streaming K-term synopsis quality equals the offline
L2 optimum while error falls with K."""

from conftest import run_experiment

from repro.experiments import stream_quality


def test_stream_quality(benchmark):
    rows = run_experiment(benchmark, stream_quality.main)
    for row in rows:
        assert row["gap"] < 1e-3  # streaming == offline (ties aside)
    errors = [row["streaming_error"] for row in rows]
    assert errors == sorted(errors, reverse=True)
