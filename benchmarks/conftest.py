"""Shared benchmark configuration.

Each benchmark wraps one experiment from :mod:`repro.experiments` so the
numbers printed by ``pytest benchmarks/ --benchmark-only`` regenerate the
paper's tables and figures (see EXPERIMENTS.md for the mapping).  Row
data are attached as ``extra_info`` and also echoed to stdout.
"""

def run_experiment(benchmark, fn, **kwargs):
    """Run an experiment once under the benchmark timer and attach its
    result rows to the report."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = result
    return result
