"""Benchmark for journal-shipping replication: ship/replay throughput,
failover time, and the zero-acked-loss chaos invariant.

Phase 1 measures the raw replication pipe in-process: a journaled
primary runs SHIFT-SPLIT update batches with a
:class:`~repro.replica.shipper.JournalShipper` streaming every group
commit into a :class:`~repro.replica.follower.FollowerEngine`, and we
report groups/s and MB/s shipped plus the follower's replay rate.

Phase 2 measures failover end to end over live HTTP: a primary hub and
a snapshot-bootstrapped replica hub, the primary's server is torn
down, and a :class:`~repro.replica.controller.FailoverController` with
a fast probe promotes the replica; we report detection-to-promotion
wall clock and the promotion's own replay/scan time.

Phase 3 runs a reduced replication chaos matrix
(:func:`~repro.fault.chaos.run_chaos_matrix`) and **hard-asserts**
``acked_write_loss == 0`` — the benchmark exits non-zero if any kill
site loses an acknowledged update, so the CI artifact doubles as a
correctness proof.

Run standalone for the JSON report (written to
``BENCH_replication.json``)::

    PYTHONPATH=src python benchmarks/bench_replication.py [--smoke]

``--smoke`` shrinks batch counts and strides the chaos matrix for CI;
the report schema is identical.
"""

import json
import sys
import time
import urllib.request

import numpy as np

FULL = dict(
    pipe_shape=(64, 64),
    pipe_batches=40,
    failover_rounds=3,
    chaos_batches=2,
    chaos_stride=1,
)
SMOKE = dict(
    pipe_shape=(32, 32),
    pipe_batches=10,
    failover_rounds=2,
    chaos_batches=1,
    chaos_stride=5,
)


# ----------------------------------------------------------------------
# phase 1: ship / replay throughput
# ----------------------------------------------------------------------


def bench_pipe(shape, batches):
    from repro.replica.follower import FollowerEngine
    from repro.replica.shipper import JournalShipper
    from repro.storage.block_device import BlockDevice
    from repro.storage.journal import JournaledDevice
    from repro.storage.tiled import TiledStandardStore
    from repro.update.batch import batch_update_standard
    from repro.wavelet.standard import standard_dwt

    block_edge = 8
    store = TiledStandardStore(
        shape, block_edge=block_edge, pool_capacity=256
    )
    holder = {}

    def wrap(device):
        holder["journaled"] = JournaledDevice(device)
        return holder["journaled"]

    store.tile_store.wrap_device(wrap)
    journaled = holder["journaled"]
    follower = FollowerEngine(BlockDevice(block_edge ** len(shape)))
    shipper = JournalShipper(journaled)
    replay_clock = [0.0]

    def timed_feed(data):
        start = time.perf_counter()
        follower.feed(data)
        replay_clock[0] += time.perf_counter() - start

    shipper.attach(timed_feed)

    rng = np.random.default_rng(11)
    coefficients = standard_dwt(rng.normal(size=shape))
    for position in np.ndindex(*shape):
        store.write_point(position, float(coefficients[position]))
    store.flush()

    deltas = rng.normal(size=(8, 8))
    start = time.perf_counter()
    for index in range(batches):
        corner = tuple(
            8 * ((index + axis) % (extent // 8))
            for axis, extent in enumerate(shape)
        )
        batch_update_standard(store, deltas, corner)
        store.flush()
    elapsed = time.perf_counter() - start
    snapshot = shipper.snapshot()
    groups = snapshot["groups_shipped"]
    shipped_bytes = snapshot["bytes_shipped"]
    follower.finalize()
    return {
        "batches": batches,
        "groups_shipped": groups,
        "bytes_shipped": shipped_bytes,
        "primary_wall_s": round(elapsed, 4),
        "ship_groups_per_s": round(groups / elapsed, 1),
        "ship_mb_per_s": round(shipped_bytes / elapsed / 2**20, 2),
        "replay_wall_s": round(replay_clock[0], 4),
        "replay_groups_per_s": round(
            groups / replay_clock[0] if replay_clock[0] else 0.0, 1
        ),
        "follower_applied_seq": follower.applied_seq,
    }


# ----------------------------------------------------------------------
# phase 2: failover time over live HTTP
# ----------------------------------------------------------------------


def bench_failover(rounds):
    from repro.replica.controller import (
        FailoverController,
        http_health_probe,
    )
    from repro.server.demo import build_demo_hub
    from repro.server.http import spawn
    from repro.server.hub import ServingHub

    samples = []
    for __ in range(rounds):
        primary = build_demo_hub(seed=13, size=16, replicate=True)
        server, __thread = spawn(primary)
        base = "http://{}:{}".format(*server.server_address)
        replica = ServingHub(
            replica_of=base,
            primary_api_key="demo-admin-key",
            admin_key="demo-admin-key",
            replica_poll_s=0.01,
        )
        deadline = time.time() + 10
        while time.time() < deadline:
            if replica.replication_state()["lag_groups"] == 0:
                break
            time.sleep(0.01)
        server.shutdown()
        server.server_close()
        controller = FailoverController(
            lambda: http_health_probe(base, timeout_s=0.2),
            [replica],
            threshold=2,
            interval_s=0.01,
        )
        detect_start = time.perf_counter()
        promoted = None
        while promoted is None:
            promoted = controller.tick()
        total = time.perf_counter() - detect_start
        assert promoted is replica and replica.role == "primary"
        samples.append(
            {
                "detect_to_promoted_s": round(total, 4),
                "promotion_s": round(controller.promotion_s, 4),
            }
        )
        replica.close()
        primary.close()
    return {
        "rounds": rounds,
        "samples": samples,
        "median_detect_to_promoted_s": round(
            sorted(s["detect_to_promoted_s"] for s in samples)[
                len(samples) // 2
            ],
            4,
        ),
    }


# ----------------------------------------------------------------------
# phase 3: chaos matrix with the hard acked-loss assert
# ----------------------------------------------------------------------


def bench_chaos(batches, stride):
    from repro.fault.chaos import run_chaos_matrix

    start = time.perf_counter()
    report = run_chaos_matrix(batches=batches, site_stride=stride)
    elapsed = time.perf_counter() - start
    summary = report.summary()
    summary["wall_s"] = round(elapsed, 3)
    summary["sites_per_s"] = round(len(report.results) / elapsed, 1)
    # The invariant this whole subsystem exists for: no kill site may
    # lose an acknowledged write.  Hard-fail the benchmark otherwise.
    assert summary["acked_losses"] == 0, report.acked_losses
    assert summary["unclean_scans"] == 0, report.unclean
    summary["acked_write_loss"] = 0
    return summary


def main(argv):
    smoke = "--smoke" in argv
    params = SMOKE if smoke else FULL
    report = {
        "benchmark": "replication",
        "mode": "smoke" if smoke else "full",
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "pipe": bench_pipe(params["pipe_shape"], params["pipe_batches"]),
        "failover": bench_failover(params["failover_rounds"]),
        "chaos": bench_chaos(
            params["chaos_batches"], params["chaos_stride"]
        ),
    }
    out = "BENCH_replication.json"
    with open(out, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
