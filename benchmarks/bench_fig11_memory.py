"""Benchmark regenerating Figure 11 — transformation I/O vs memory.

Prints the same series the paper plots: coefficient I/O of Vitter et
al., SHIFT-SPLIT standard and SHIFT-SPLIT non-standard as memory grows
on a 4-d TEMPERATURE-like cube.
"""

from conftest import run_experiment

from repro.experiments import fig11


def test_fig11_memory_sweep(benchmark):
    rows = run_experiment(benchmark, fig11.main, edge=16)
    vitter = rows[0]["vitter_io"]
    for row in rows:
        assert row["vitter_io"] == vitter  # flat in memory
    # Within the paper's plotted regime (memory >= 4^d here),
    # SHIFT-SPLIT standard beats Vitter and non-standard beats both.
    plotted = [row for row in rows if row["memory_edge"] >= 4]
    for row in plotted:
        assert row["shift_split_standard_io"] < row["vitter_io"]
        assert (
            row["shift_split_nonstandard_io"]
            <= row["shift_split_standard_io"]
        )
