"""Benchmark verifying the analytic space bounds of Results 3-5."""

from conftest import run_experiment

from repro.experiments import stream_space


def test_stream_space_bounds(benchmark):
    rows = run_experiment(benchmark, stream_space.main)
    for row in rows:
        assert row["measured_live"] <= row["bound"], row["result"]
