"""Kernel-speed benchmark: plan-compiled vs interpreted SHIFT-SPLIT.

Times the standard-form bulk load (``transform_standard_chunked``) over
1-d / 2-d / 3-d tiled-store geometries in three modes:

``uncached``
    the interpreted per-call path (``use_plans=False``) — the baseline;
``cached``
    the plan-compiled path with a warm plan cache;
``workers``
    the ordered ``workers=K`` pipeline (bit-identical, same I/O trace);

then a separate **process-pool section** per geometry, with the pool
sized to the whole tile footprint so the serial reference never
evicts:

``serial_cached``
    warm serial plan path + flush — the parity baseline
    (0 block reads, one write per tile);
``procpool``
    ``transform_standard_procpool`` scatter workers, auto-sized to one
    per CPU (``--procpool-workers`` overrides; on a 1-CPU box that is
    the inline no-fork path — forking past the core count only adds
    overhead) — asserted **bit-identical** to the serial reference
    with **identical** block reads AND writes, and timed interleaved
    with it trial by trial so machine drift cannot fake a win either
    way;
``mmap``
    the same serial cached load onto a file-backed
    ``MmapBlockDevice`` — asserted bit-identical with identical I/O
    counts (the file backend must cost no extra charged I/O).

plus the non-standard bulk load cached vs uncached.  Every cached /
parallel run is checked bit-identical to its baseline; the speedup is
pure CPU, never bought with extra I/O.

Writes ``BENCH_kernels.json`` (see ``--out``).  ``--smoke`` shrinks the
geometries for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_speed.py
    PYTHONPATH=src python benchmarks/bench_kernel_speed.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from typing import Optional

import numpy as np

from repro.core.plans import clear_plan_caches, plan_cache_info
from repro.storage.mmap_device import MmapBlockDevice
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.procpool import transform_standard_procpool

FULL_GEOMETRIES = [
    {"name": "1d-4096", "shape": (4096,), "chunk": (256,), "block_edge": 64,
     "pool": 32},
    # The acceptance geometry: 1024^2 cells, 64^2 chunks, 16^2 tiles.
    {"name": "2d-1024", "shape": (1024, 1024), "chunk": (64, 64),
     "block_edge": 16, "pool": 64},
    {"name": "3d-64", "shape": (64, 64, 64), "chunk": (16, 16, 16),
     "block_edge": 8, "pool": 64},
]

SMOKE_GEOMETRIES = [
    {"name": "1d-512", "shape": (512,), "chunk": (64,), "block_edge": 16,
     "pool": 16},
    {"name": "2d-128", "shape": (128, 128), "chunk": (16, 16),
     "block_edge": 8, "pool": 32},
    {"name": "3d-32", "shape": (32, 32, 32), "chunk": (8, 8, 8),
     "block_edge": 4, "pool": 32},
]


def _make_store(geom) -> TiledStandardStore:
    return TiledStandardStore(
        geom["shape"], block_edge=geom["block_edge"],
        pool_capacity=geom["pool"],
    )


def _block_counts(stats) -> dict:
    return {
        "block_reads": stats.block_reads,
        "block_writes": stats.block_writes,
    }


def _timed_load(geom, data, repeats: int, **kwargs):
    """Best-of-``repeats`` wall time of one bulk load configuration.

    Returns ``(seconds, store, report)`` of the best run; every run
    loads into a fresh store so I/O accounting starts from zero.
    """
    best = None
    for __ in range(repeats):
        store = _make_store(geom)
        start = time.perf_counter()
        report = transform_standard_chunked(
            store, data, geom["chunk"], **kwargs
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, store, report)
    return best


def bench_standard_geometry(geom, workers: int, repeats: int) -> dict:
    rng = np.random.default_rng(7)
    data = rng.standard_normal(geom["shape"])
    cells = float(np.prod(geom["shape"]))

    clear_plan_caches()
    t_uncached, s_uncached, __ = _timed_load(
        geom, data, repeats, use_plans=False
    )
    base_array = s_uncached.to_array()
    base_stats = s_uncached.stats.snapshot()

    # Prime the plan cache, then measure the warm plan path — the
    # steady state of repeated loads / batch updates at one geometry.
    _timed_load(geom, data, 1, use_plans=True)
    t_cached, s_cached, __ = _timed_load(geom, data, repeats, use_plans=True)
    assert np.array_equal(base_array, s_cached.to_array()), geom["name"]
    assert base_stats == s_cached.stats.snapshot(), geom["name"]

    t_workers, s_workers, __ = _timed_load(
        geom, data, repeats, workers=workers
    )
    assert np.array_equal(base_array, s_workers.to_array()), geom["name"]
    assert base_stats == s_workers.stats.snapshot(), geom["name"]

    return {
        "geometry": geom["name"],
        "shape": list(geom["shape"]),
        "chunk": list(geom["chunk"]),
        "block_edge": geom["block_edge"],
        "pool_capacity": geom["pool"],
        "workers": workers,
        "seconds": {
            "uncached": t_uncached,
            "cached": t_cached,
            "workers": t_workers,
        },
        "cells_per_second": {
            "uncached": cells / t_uncached,
            "cached": cells / t_cached,
            "workers": cells / t_workers,
        },
        "speedup_vs_uncached": {
            "cached": t_uncached / t_cached,
            "workers": t_uncached / t_workers,
        },
        "block_io": {
            "uncached": _block_counts(base_stats),
            "cached": _block_counts(s_cached.stats.snapshot()),
            "workers": _block_counts(s_workers.stats.snapshot()),
        },
        "bit_identical": True,
        "iostats_identical_serial_paths": True,
    }


def bench_procpool_geometry(geom, workers: int, trials: int) -> dict:
    """Interleaved serial-cached vs procpool vs mmap timings.

    The pool is sized past the tile footprint so the serial cached
    reference does 0 block reads and exactly one write per tile — the
    trace the process pool must (and does) replay exactly.  Serial and
    procpool runs alternate within each trial so clock drift hits both
    equally; ``min`` over trials is reported.
    """
    rng = np.random.default_rng(7)
    data = rng.standard_normal(geom["shape"])
    cells = float(np.prod(geom["shape"]))
    pool_capacity = 1 << 20  # >= any geometry's tile footprint

    def fresh_store(device=None):
        return TiledStandardStore(
            geom["shape"],
            block_edge=geom["block_edge"],
            pool_capacity=pool_capacity,
            device=device,
        )

    def serial_run():
        store = fresh_store()
        start = time.perf_counter()
        transform_standard_chunked(store, data, geom["chunk"])
        store.flush()
        return time.perf_counter() - start, store

    def procpool_run():
        store = fresh_store()
        start = time.perf_counter()
        transform_standard_procpool(
            store, data, geom["chunk"], workers=workers
        )
        return time.perf_counter() - start, store

    # Warm everything first: plan cache, scatter schedule, shared
    # buffer pool — the steady state of repeated batch loads.
    __, reference = serial_run()
    procpool_run()

    t_serial = float("inf")
    t_procpool = float("inf")
    serial_store = procpool_store = None
    for __trial in range(trials):
        elapsed, store = serial_run()
        if elapsed < t_serial:
            t_serial, serial_store = elapsed, store
        elapsed, store = procpool_run()
        if elapsed < t_procpool:
            t_procpool, procpool_store = elapsed, store

    name = geom["name"]
    serial_io = _block_counts(serial_store.stats.snapshot())
    procpool_io = _block_counts(procpool_store.stats.snapshot())
    assert serial_io["block_reads"] == 0, name  # pool covers footprint
    assert procpool_io == serial_io, (name, procpool_io, serial_io)
    assert (
        procpool_store.tile_store.directory()
        == serial_store.tile_store.directory()
    ), name
    assert np.array_equal(
        procpool_store.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity assert)
        serial_store.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity assert)
    ), name
    del reference

    # The same serial cached load onto the file-backed device: the
    # backend swap must cost no charged I/O and change no bit.
    handle, path = tempfile.mkstemp(suffix=".blocks")
    os.close(handle)
    os.unlink(path)  # MmapBlockDevice creates it fresh
    try:
        t_mmap = float("inf")
        device = None
        for __trial in range(trials):
            if device is not None:
                device.close()
                os.unlink(path)
            device = MmapBlockDevice(
                path, block_slots=geom["block_edge"] ** len(geom["shape"])
            )
            store = fresh_store(device=device)
            start = time.perf_counter()
            transform_standard_chunked(store, data, geom["chunk"])
            store.flush()
            t_mmap = min(t_mmap, time.perf_counter() - start)
            mmap_store = store
        mmap_io = _block_counts(mmap_store.stats.snapshot())
        assert mmap_io == serial_io, (name, mmap_io, serial_io)
        assert np.array_equal(
            mmap_store.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity assert)
            serial_store.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity assert)
        ), name
        device.close()
        device = None
    finally:
        if device is not None:
            device.close()
        if os.path.exists(path):
            os.unlink(path)

    return {
        "geometry": name,
        "workers": workers,
        "trials": trials,
        "pool_capacity": pool_capacity,
        "num_tiles": int(serial_store.tile_store.num_tiles),
        "seconds": {
            "serial_cached": t_serial,
            "procpool": t_procpool,
            "mmap": t_mmap,
        },
        "cells_per_second": {
            "serial_cached": cells / t_serial,
            "procpool": cells / t_procpool,
            "mmap": cells / t_mmap,
        },
        "speedup_procpool_vs_serial": t_serial / t_procpool,
        "block_io": {
            "serial_cached": serial_io,
            "procpool": procpool_io,
            "mmap": mmap_io,
        },
        "bit_identical": True,
        "io_identical": True,
    }


def bench_nonstandard_geometry(size: int, ndim: int, chunk_edge: int,
                               block_edge: int, pool: int,
                               repeats: int) -> dict:
    rng = np.random.default_rng(11)
    data = rng.standard_normal((size,) * ndim)
    cells = float(size**ndim)

    def load(use_plans: bool):
        best = None
        for __ in range(repeats):
            store = TiledNonStandardStore(
                size, ndim, block_edge=block_edge, pool_capacity=pool
            )
            start = time.perf_counter()
            transform_nonstandard_chunked(
                store, data, chunk_edge, use_plans=use_plans
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, store)
        return best

    clear_plan_caches()
    t_uncached, s_uncached = load(False)
    load(True)  # prime
    t_cached, s_cached = load(True)
    assert np.array_equal(s_uncached.to_array(), s_cached.to_array())
    assert s_uncached.stats.snapshot() == s_cached.stats.snapshot()
    return {
        "geometry": f"ns-{ndim}d-{size}",
        "size": size,
        "ndim": ndim,
        "chunk_edge": chunk_edge,
        "block_edge": block_edge,
        "seconds": {"uncached": t_uncached, "cached": t_cached},
        "cells_per_second": {
            "uncached": cells / t_uncached,
            "cached": cells / t_cached,
        },
        "speedup_vs_uncached": {"cached": t_uncached / t_cached},
        "block_io": {
            "uncached": _block_counts(s_uncached.stats.snapshot()),
            "cached": _block_counts(s_cached.stats.snapshot()),
        },
        "bit_identical": True,
        "iostats_identical_serial_paths": True,
    }


def main(argv: Optional[list] = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small geometries for CI")
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output JSON path")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pipeline workers (ordered mode)")
    parser.add_argument("--procpool-workers", type=int, default=0,
                        help="forked scatter workers (procpool mode); "
                             "0 = auto (one per CPU — forking more "
                             "workers than cores only adds overhead)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per mode (best-of)")
    args = parser.parse_args(argv)

    geometries = SMOKE_GEOMETRIES if args.smoke else FULL_GEOMETRIES
    repeats = args.repeats or (1 if args.smoke else 3)
    procpool_workers = args.procpool_workers or (os.cpu_count() or 1)

    results = {"mode": "smoke" if args.smoke else "full",
               "standard": [], "procpool": [], "nonstandard": []}
    for geom in geometries:
        row = bench_standard_geometry(geom, args.workers, repeats)
        results["standard"].append(row)
        print(
            f"[standard {row['geometry']}] uncached {row['seconds']['uncached']:.3f}s"
            f" | cached {row['seconds']['cached']:.3f}s"
            f" ({row['speedup_vs_uncached']['cached']:.2f}x)"
            f" | workers={args.workers} {row['seconds']['workers']:.3f}s"
            f" ({row['speedup_vs_uncached']['workers']:.2f}x)"
        )

    procpool_trials = max(3 * repeats, 9) if not args.smoke else repeats
    for geom in geometries:
        row = bench_procpool_geometry(
            geom, procpool_workers, procpool_trials
        )
        results["procpool"].append(row)
        print(
            f"[procpool {row['geometry']}] serial_cached"
            f" {row['seconds']['serial_cached']:.3f}s"
            f" | procpool w{procpool_workers}"
            f" {row['seconds']['procpool']:.3f}s"
            f" ({row['speedup_procpool_vs_serial']:.2f}x)"
            f" | mmap {row['seconds']['mmap']:.3f}s"
            f" | io {row['block_io']['procpool']['block_reads']}r/"
            f"{row['block_io']['procpool']['block_writes']}w identical"
        )

    if args.smoke:
        ns = bench_nonstandard_geometry(64, 2, 16, 8, 32, repeats)
    else:
        ns = bench_nonstandard_geometry(512, 2, 64, 16, 64, repeats)
    results["nonstandard"].append(ns)
    print(
        f"[nonstandard {ns['geometry']}] uncached {ns['seconds']['uncached']:.3f}s"
        f" | cached {ns['seconds']['cached']:.3f}s"
        f" ({ns['speedup_vs_uncached']['cached']:.2f}x)"
    )

    results["plan_caches"] = plan_cache_info()
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.out}")
    return results


if __name__ == "__main__":
    main()
