"""Benchmark regenerating Figure 12 — block I/O vs dataset size and
tile size, both decomposition forms (d = 2, memory = 64 coefficients)."""

from conftest import run_experiment

from repro.experiments import fig12


def test_fig12_tile_sweep(benchmark):
    rows = run_experiment(
        benchmark, fig12.main, dataset_edges=(64, 128, 256), tile_edges=(8, 16)
    )
    by_key = {(r["dataset_edge"], r["tile_edge"]): r for r in rows}
    # Larger tiles -> fewer blocks; larger data -> more blocks.
    assert (
        by_key[(256, 16)]["standard_block_io"]
        < by_key[(256, 8)]["standard_block_io"]
    )
    assert (
        by_key[(256, 8)]["standard_block_io"]
        > by_key[(64, 8)]["standard_block_io"]
    )
    for row in rows:
        assert row["nonstandard_block_io"] <= row["standard_block_io"]
