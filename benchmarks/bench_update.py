"""Benchmark for Example 2 — batch updates via SHIFT-SPLIT vs naive
per-cell updates (identical results, very different I/O)."""

from conftest import run_experiment

from repro.experiments import update_exp


def test_update_example2(benchmark):
    rows = run_experiment(benchmark, update_exp.main)
    for row in rows:
        assert row["shift_split_io"] < row["naive_io"]
    # The advantage grows with the batch size.
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
