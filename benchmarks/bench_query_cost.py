"""Benchmark for the query-cost study: blocks per query across tile
sizes and forms, with and without the redundant scalings."""

from conftest import run_experiment

from repro.experiments import query_cost


def test_query_cost(benchmark):
    rows = run_experiment(benchmark, query_cost.main)
    for row in rows:
        # The spare-slot scalings give single-block point queries.
        assert row["std_point_fast"] == 1.0
        assert row["ns_point_fast"] == 1.0
        assert row["std_point_fast"] < row["std_point"]
    # Larger tiles cut the per-query block cost.
    assert rows[-1]["std_point"] < rows[0]["std_point"]
    assert rows[-1]["std_range"] < rows[0]["std_range"]
