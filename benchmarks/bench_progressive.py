"""Benchmark for progressive range-sum answering: early refinements
carry most of the mass at a fraction of the I/O."""

import numpy as np

from repro.core.standard_ops import apply_chunk_standard
from repro.datasets.synthetic import temperature_cube
from repro.reconstruct.progressive import progressive_range_sum_standard
from repro.storage.dense import DenseStandardStore


def test_progressive_refinement(benchmark):
    cube = temperature_cube((64, 64, 4, 4), seed=7)
    field = cube[:, :, 0, 0]
    store = DenseStandardStore(field.shape)
    apply_chunk_standard(store, field, (0, 0))
    lows, highs = (5, 9), (57, 50)
    truth = field[5:58, 9:51].sum()

    def run():
        return list(progressive_range_sum_standard(store, lows, highs))

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    final = steps[-1]
    assert final.exact
    assert np.isclose(final.estimate, truth)
    # Halfway through the refinements the estimate is already within
    # 1% on smooth data, at a fraction of the final I/O.
    halfway = steps[len(steps) // 2]
    assert abs(halfway.estimate - truth) / abs(truth) < 0.01
    assert halfway.coefficients_read < final.coefficients_read
    benchmark.extra_info["rows"] = [
        {
            "cutoff": step.cutoff,
            "coefficients_read": step.coefficients_read,
            "relative_error": abs(step.estimate - truth) / abs(truth),
        }
        for step in steps
    ]
