"""Ablation benchmark — z-order + crest buffering for the non-standard
bulk transformation (Section 5.1's optimality ingredients)."""

from conftest import run_experiment

from repro.experiments import ablation_zorder


def test_ablation_zorder(benchmark):
    rows = run_experiment(benchmark, ablation_zorder.main)
    by_name = {row["configuration"]: row for row in rows}
    zorder = by_name["zorder + crest buffer"]
    rowmajor = by_name["rowmajor + crest buffer"]
    unbuffered = by_name["rowmajor, no buffer"]
    assert zorder["crest_buffer_peak"] < rowmajor["crest_buffer_peak"]
    assert unbuffered["coefficient_io"] > zorder["coefficient_io"]
