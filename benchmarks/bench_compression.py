"""Benchmark for the Section 3.1 compressibility claim: the standard
form compresses range aggregates better than the non-standard form."""

from conftest import run_experiment

from repro.experiments import compression


def test_compression_forms(benchmark):
    rows = run_experiment(benchmark, compression.main)
    partial = [row for row in rows if row["K_fraction"] < 1.0]
    wins = sum(
        1
        for row in partial
        if row["std_rangesum_error"] <= row["ns_rangesum_error"]
    )
    assert wins == len(partial)
