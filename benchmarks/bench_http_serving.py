"""Benchmark for the HTTP serving layer: latency and I/O per request
class, plus the two-tenant quota-enforcement acceptance run.

Phase 1 drives a live :class:`ThreadingWSGIServer` (ephemeral port)
over the deterministic demo hub and measures, per request class —
``model``, ``point`` (fully-cut aggregate), ``rollup`` (hierarchy
cut), ``drilldown`` (member cross product) and ``update`` (SHIFT-SPLIT
delta batch) — the p50/p95 wall-clock latency and the shared arena's
block/journal I/O per request.

Phase 2 is the acceptance experiment for tenant isolation: a *noisy*
tenant floods its own admission quota from several threads while a
*quiet* tenant keeps issuing small aggregates.  The quota must convert
the flood into per-tenant 429s, and the quiet tenant's p95 must stay
inside its deadline budget both alone and under contention — one
saturated tenant cannot push the other past its deadline.

Run standalone for the JSON report (written to ``BENCH_http.json``)::

    PYTHONPATH=src python benchmarks/bench_http_serving.py [--smoke]

``--smoke`` shrinks the request counts for CI; the report schema is
identical.
"""

import json
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np

FULL = dict(
    requests_per_class=40,
    noisy_threads=4,
    noisy_requests=10,
    quiet_threads=2,
    quiet_requests=15,
    quiet_deadline_ms=1000.0,
)
SMOKE = dict(
    requests_per_class=12,
    noisy_threads=3,
    noisy_requests=6,
    quiet_threads=2,
    quiet_requests=8,
    quiet_deadline_ms=1000.0,
)


def _fetch(base, path, key, data=None, timeout=30):
    request = urllib.request.Request(base + path, data=data)
    request.add_header("X-API-Key", key)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            code = response.status
    except urllib.error.HTTPError as error:
        error.read()
        code = error.code
    return code, (time.perf_counter() - start) * 1e3


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _summarize(latencies, codes, io_delta):
    count = max(1, len(latencies))
    return {
        "requests": len(latencies),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p95_ms": round(_percentile(latencies, 0.95), 3),
        "status_counts": {
            str(code): codes.count(code) for code in sorted(set(codes))
        },
        "io_per_request": {
            "block_reads": io_delta.block_reads / count,
            "block_writes": io_delta.block_writes / count,
            "journal_writes": io_delta.journal_writes / count,
        },
    }


def _bench_request_classes(cfg):
    from repro.server.demo import build_demo_hub
    from repro.server.http import spawn

    hub = build_demo_hub(seed=7)
    server, __thread = spawn(hub)
    host, port = server.server_address
    base = f"http://{host}:{port}"
    n = cfg["requests_per_class"]
    update_body = json.dumps(
        {"deltas": [[0.5] * 4] * 4, "corner": {"time": 8, "region": 8}}
    ).encode()
    classes = {
        "model": ("/cube/sales/model", None),
        "point": ("/cube/sales/aggregate?cut=time:5|region:9", None),
        "rollup": (
            "/cube/sales/aggregate?cut=time@ymd:2.1|region:0-31",
            None,
        ),
        "drilldown": (
            "/cube/sales/aggregate?cut=time@ymd:2&drilldown=time,region:2",
            None,
        ),
        "update": ("/cube/sales/update", update_body),
    }
    results = {}
    try:
        for name, (path, body) in classes.items():
            before = hub.stats.snapshot()
            latencies, codes = [], []
            for __ in range(n):
                code, ms = _fetch(base, path, "acme-key", data=body)
                codes.append(code)
                latencies.append(ms)
            delta = hub.stats.delta_since(before)
            results[name] = _summarize(latencies, codes, delta)
            assert set(codes) == {200}, f"{name}: unexpected {set(codes)}"
    finally:
        server.shutdown()
        server.server_close()
        hub.close()
    return results


def _run_clients(base, path, key, threads, requests_each):
    """Fan out HTTP clients; returns (latencies_ms, status codes)."""
    latencies, codes = [], []
    lock = threading.Lock()

    def client():
        for __ in range(requests_each):
            code, ms = _fetch(base, path, key)
            with lock:
                codes.append(code)
                latencies.append(ms)

    workers = [threading.Thread(target=client) for __ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(120)
    return latencies, codes


def _bench_tenant_isolation(cfg):
    from repro.olap.schema import Dimension
    from repro.server.http import spawn
    from repro.server.hub import ServingHub

    hub = ServingHub(
        block_slots=64,
        pool_blocks=64,
        num_workers=2,
        queue_depth=64,
    )
    rng = np.random.default_rng(11)
    hub.add_tenant("quiet", api_key="quiet-key", max_inflight=32)
    # the noisy quota is sized so two concurrent 4-cell drilldowns fit
    # and the third throttles: real load AND real 429s
    hub.add_tenant("noisy", api_key="noisy-key", max_inflight=8)
    for tenant, cube in (("quiet", "steady"), ("noisy", "flood")):
        hub.add_cube(
            tenant,
            cube,
            [Dimension("x", 64), Dimension("y", 64)],
            data=rng.random((64, 64)),
        )
    server, __thread = spawn(hub)
    host, port = server.server_address
    base = f"http://{host}:{port}"
    quiet_path = "/cube/steady/aggregate?cut=x:0-15&drilldown=y:2"
    noisy_path = "/cube/flood/aggregate?drilldown=x:2"
    try:
        alone, alone_codes = _run_clients(
            base,
            quiet_path,
            "quiet-key",
            cfg["quiet_threads"],
            cfg["quiet_requests"],
        )
        assert set(alone_codes) == {200}

        quiet_out = {}
        noisy_out = {}

        def noisy_side():
            noisy_out["data"] = _run_clients(
                base,
                noisy_path,
                "noisy-key",
                cfg["noisy_threads"],
                cfg["noisy_requests"],
            )

        def quiet_side():
            quiet_out["data"] = _run_clients(
                base,
                quiet_path,
                "quiet-key",
                cfg["quiet_threads"],
                cfg["quiet_requests"],
            )

        sides = [
            threading.Thread(target=noisy_side),
            threading.Thread(target=quiet_side),
        ]
        for side in sides:
            side.start()
        for side in sides:
            side.join(300)
        contended, contended_codes = quiet_out["data"]
        noisy_lat, noisy_codes = noisy_out["data"]

        deadline_ms = cfg["quiet_deadline_ms"]
        report = {
            "quiet_deadline_ms": deadline_ms,
            "quiet_alone": {
                "p50_ms": round(_percentile(alone, 0.50), 3),
                "p95_ms": round(_percentile(alone, 0.95), 3),
            },
            "quiet_contended": {
                "p50_ms": round(_percentile(contended, 0.50), 3),
                "p95_ms": round(_percentile(contended, 0.95), 3),
                "status_counts": {
                    str(code): contended_codes.count(code)
                    for code in sorted(set(contended_codes))
                },
            },
            "noisy": {
                "p50_ms": round(_percentile(noisy_lat, 0.50), 3),
                "requests": len(noisy_codes),
                "throttled_429": noisy_codes.count(429),
                "served_200": noisy_codes.count(200),
            },
        }
        report["quota_enforced"] = (
            report["noisy"]["throttled_429"] > 0
            and set(contended_codes) == {200}
            and report["quiet_contended"]["p95_ms"] <= deadline_ms
        )
        return report
    finally:
        server.shutdown()
        server.server_close()
        hub.close()


def http_serving(smoke=False):
    cfg = SMOKE if smoke else FULL
    report = {
        "config": dict(cfg, smoke=smoke),
        "classes": _bench_request_classes(cfg),
        "isolation": _bench_tenant_isolation(cfg),
    }
    print(json.dumps(report, indent=2))
    with open("BENCH_http.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(
        "http-serving: isolation "
        f"quota_enforced={report['isolation']['quota_enforced']} "
        f"(noisy 429s={report['isolation']['noisy']['throttled_429']}, "
        "quiet contended p95="
        f"{report['isolation']['quiet_contended']['p95_ms']}ms "
        f"vs deadline {report['isolation']['quiet_deadline_ms']}ms); "
        "written to BENCH_http.json",
        file=sys.stderr,
    )
    return report


def test_http_serving(benchmark):
    from conftest import run_experiment

    report = run_experiment(benchmark, http_serving, smoke=True)
    classes = report["classes"]
    assert set(classes) == {"model", "point", "rollup", "drilldown", "update"}
    # reads are served through the shared pool: the warm tail keeps the
    # per-request device I/O well under one block per request...
    assert classes["model"]["io_per_request"]["block_reads"] == 0.0
    # ...while updates must hit the journal every time
    assert classes["update"]["io_per_request"]["journal_writes"] > 0.0
    assert report["isolation"]["quota_enforced"]


if __name__ == "__main__":
    report = http_serving(smoke="--smoke" in sys.argv)
    if not report["isolation"]["quota_enforced"]:
        sys.exit(1)
