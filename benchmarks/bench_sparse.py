"""Benchmark for the sparse-data transformation variant: I/O tracks
occupied chunks, not the domain."""

from conftest import run_experiment

from repro.experiments import sparse


def test_sparse_transform(benchmark):
    rows = run_experiment(benchmark, sparse.main)
    per_chunk = {row["std_io_per_occupied_chunk"] for row in rows}
    assert len(per_chunk) == 1  # constant cost per occupied chunk
    assert rows[-1]["std_io"] < rows[0]["std_io"]
