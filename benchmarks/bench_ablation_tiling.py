"""Ablation benchmark — subtree tiling vs naive index blocking under a
point/range query workload (cold cache)."""

from conftest import run_experiment

from repro.experiments import ablation_tiling


def test_ablation_tiling(benchmark):
    rows = run_experiment(benchmark, ablation_tiling.main)
    tiled, scalings, naive = rows
    assert tiled["point_blocks_per_query"] < naive["point_blocks_per_query"]
    assert tiled["range_blocks_per_query"] < naive["range_blocks_per_query"]
    # The redundant scalings take point queries down to one block.
    assert scalings["point_blocks_per_query"] == 1.0
