"""Benchmark regenerating Table 2 — I/O complexity classes of the three
transformation methods (measured/formula ratios stay constant in N)."""

from conftest import run_experiment

from repro.experiments import table2


def test_table2_complexities(benchmark):
    rows = run_experiment(benchmark, table2.main)
    for column in ("vitter_ratio", "std_ratio", "ns_ratio"):
        values = [row[column] for row in rows]
        assert max(values) / min(values) < 1.2
    for row in rows:
        assert row["ns_io"] < row["std_io"] < row["vitter_io"]
