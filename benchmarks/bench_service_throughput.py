"""Benchmark for the serving layer: batched planner vs naive queries.

A 64-query mixed workload (point / range-sum / region) is executed
twice against the same tiled store — once one-query-at-a-time with a
cold cache per query, once through the :class:`QueryEngine`'s batched
planner with a sharded pool — and the block-I/O-per-query and
throughput of both paths are reported.  The planner's fetch dedup must
beat the naive path on block reads (the workload's root paths overlap
heavily on the coarse bands).

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

With ``--trace [PATH]`` the replay runs under the tracer: the report
gains per-query I/O receipts and a lossless-attribution check (the
receipt total must equal the global IOStats delta exactly), and the
Chrome trace-event JSON is written to PATH (default
``TRACE_service.json``; load it in https://ui.perfetto.dev).

With ``--fault-rate R`` the batched phase runs with transient read
faults injected at probability R under the self-healing engine (retry
+ circuit breaker + degraded reads).  The report gains a ``fault``
section classifying every answer (retried-to-exact / degraded within
bound / definite error / wrong), is written to ``BENCH_faults.json``,
and the run fails if any answer was silently wrong.
"""

import json
import sys

from conftest import run_experiment

from repro.service import replay

WORKLOAD = dict(
    shape=(64, 64),
    block_edge=8,
    pool_capacity=64,
    points=32,
    range_sums=16,
    regions=16,  # 64 queries total
    num_workers=4,
    num_shards=4,
    seed=0,
)


def service_throughput(trace_path=None, fault_rate=0.0) -> dict:
    report = replay(
        **WORKLOAD,
        trace=trace_path is not None,
        trace_path=trace_path,
        fault_rate=fault_rate,
        fault_seed=1,
    )
    print(json.dumps(report, indent=2))
    if fault_rate > 0.0:
        fault = report["fault"]
        with open("BENCH_faults.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        assert fault["wrong"] == 0, (
            f"{fault['wrong']} silently-wrong answers under "
            f"fault_rate={fault_rate}"
        )
        print(
            f"faults: {fault['injected']} injected, "
            f"{fault['recovered_ok']} retried to exact, "
            f"{fault['degraded_within_bound']} degraded within bound, "
            f"{fault['definite_errors']} definite errors, "
            f"{fault['wrong']} wrong; written to BENCH_faults.json",
            file=sys.stderr,
        )
    if trace_path is not None:
        trace = report["trace"]
        assert trace["lossless"], (
            "I/O attribution lost counts: "
            f"receipt={trace['receipt']['total']} "
            f"expected={trace['expected_io']}"
        )
        print(
            f"trace: {trace['spans']} spans "
            f"({trace['dropped_spans']} dropped), "
            f"{len(trace['queries'])} query receipts, "
            f"lossless={trace['lossless']}, written to {trace_path}",
            file=sys.stderr,
        )
    return report


def test_service_throughput(benchmark):
    report = run_experiment(benchmark, service_throughput)
    assert report["config"]["queries"] == 64
    # Both paths must compute identical answers.
    assert report["results_match"]
    # The batch overlaps on coarse-band tiles: dedup ratio > 1 and
    # measurably fewer block reads than 64 independent executions.
    assert report["batched"]["dedup_ratio"] > 1.0
    assert report["batched"]["block_reads"] < report["naive"]["block_reads"]
    # With the pool sized to hold the working set, the batch reads each
    # unique tile exactly once.
    assert report["batched"]["block_reads"] == report["batched"]["unique_tiles"]


if __name__ == "__main__":
    path = None
    if "--trace" in sys.argv:
        index = sys.argv.index("--trace")
        if index + 1 < len(sys.argv) and not sys.argv[index + 1].startswith(
            "-"
        ):
            path = sys.argv[index + 1]
        else:
            path = "TRACE_service.json"
    rate = 0.0
    if "--fault-rate" in sys.argv:
        index = sys.argv.index("--fault-rate")
        rate = float(sys.argv[index + 1]) if index + 1 < len(sys.argv) else 0.01
    service_throughput(trace_path=path, fault_rate=rate)
