"""Benchmark for the serving layer: batched planner vs naive queries.

A 64-query mixed workload (point / range-sum / region) is executed
twice against the same tiled store — once one-query-at-a-time with a
cold cache per query, once through the :class:`QueryEngine`'s batched
planner with a sharded pool — and the block-I/O-per-query and
throughput of both paths are reported.  The planner's fetch dedup must
beat the naive path on block reads (the workload's root paths overlap
heavily on the coarse bands).

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

import json

from conftest import run_experiment

from repro.service import replay

WORKLOAD = dict(
    shape=(64, 64),
    block_edge=8,
    pool_capacity=64,
    points=32,
    range_sums=16,
    regions=16,  # 64 queries total
    num_workers=4,
    num_shards=4,
    seed=0,
)


def service_throughput() -> dict:
    report = replay(**WORKLOAD)
    print(json.dumps(report, indent=2))
    return report


def test_service_throughput(benchmark):
    report = run_experiment(benchmark, service_throughput)
    assert report["config"]["queries"] == 64
    # Both paths must compute identical answers.
    assert report["results_match"]
    # The batch overlaps on coarse-band tiles: dedup ratio > 1 and
    # measurably fewer block reads than 64 independent executions.
    assert report["batched"]["dedup_ratio"] > 1.0
    assert report["batched"]["block_reads"] < report["naive"]["block_reads"]
    # With the pool sized to hold the working set, the batch reads each
    # unique tile exactly once.
    assert report["batched"]["block_reads"] == report["batched"]["unique_tiles"]


if __name__ == "__main__":
    service_throughput()
