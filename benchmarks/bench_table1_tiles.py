"""Benchmark regenerating Table 1 — tiles touched by SHIFT / SPLIT
(measured against the paper's formulas)."""

from conftest import run_experiment

from repro.experiments import table1


def test_table1_tile_counts(benchmark):
    rows = run_experiment(benchmark, table1.main)
    for row in rows:
        # The paper's M/B drops the geometric series over bands; the
        # exact count stays below (B/(B-1))^d times the formula.
        slack = (row["B"] / (row["B"] - 1)) ** row["d"]
        assert row["std_shift"] <= slack * row["std_shift_formula"] + 2
        assert row["ns_split"] <= row["ns_split_formula"] + 1
