"""Benchmark regenerating the Result 6 comparison — partial
reconstruction via inverse SHIFT-SPLIT vs the two naive strategies."""

from conftest import run_experiment

from repro.experiments import reconstruct_exp


def test_reconstruct_sweep(benchmark):
    rows = run_experiment(benchmark, reconstruct_exp.main)
    for row in rows:
        assert row["std_shift_split_io"] == row["std_formula"]
        assert row["ns_shift_split_io"] == row["ns_formula"]
        assert row["std_shift_split_io"] < row["pointwise_io"]
