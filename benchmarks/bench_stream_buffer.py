"""Benchmark regenerating the Section 6 stream experiment — synopsis
update cost vs buffer size (Result 3)."""

from conftest import run_experiment

from repro.experiments import stream_buffer


def test_stream_buffer_sweep(benchmark):
    rows = run_experiment(benchmark, stream_buffer.main)
    for row in rows:
        assert row["crest_updates_per_item"] == row["formula"]
    assert (
        rows[-1]["crest_updates_per_item"] < rows[0]["crest_updates_per_item"]
    )
