"""Benchmark regenerating Figure 13 — appending I/O per month on
PRECIPITATION-like data, tile sizes swept, expansion jumps visible."""

from conftest import run_experiment

from repro.experiments import fig13


def test_fig13_appending(benchmark):
    rows = run_experiment(benchmark, fig13.main, months=48)
    for tile_edge in (2, 4, 8):
        series = [r for r in rows if r["tile_edge"] == tile_edge]
        jumps = [r["block_io"] for r in series if r["expanded"]]
        steady = [r["block_io"] for r in series if not r["expanded"]]
        assert max(jumps) > max(steady)  # the figure's spikes
    # Larger tiles damp the spikes (paper's closing observation).
    worst = {
        edge: max(
            r["block_io"]
            for r in rows
            if r["tile_edge"] == edge and r["expanded"]
        )
        for edge in (2, 8)
    }
    assert worst[8] < worst[2]
