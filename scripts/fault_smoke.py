"""Fault-smoke check: crash matrix + faulty replay, end to end.

Two independent robustness drills, both deterministic:

1. **Crash matrix** — a small bulk load flushed through a
   :class:`JournaledDevice` is crashed once at *every* surveyed site of
   the group-commit protocol; after each crash only the raw device
   bytes and the journal image survive, and recovery must land
   bit-identical on either the pre-flush or the post-flush fault-free
   state with a clean checksum scan — never anything in between.

2. **Faulty replay** — the serve-replay workload runs with a transient
   read-fault rate injected under the self-healing engine (retry +
   breaker + degraded reads); every answer must be retried to the
   exact value, degraded within its error bound, or a definite error.
   Zero silently-wrong answers are tolerated.

Writes ``FAULT_smoke.json`` with both sections and exits non-zero on
any violation.  Run via ``make fault-smoke``; CI runs it non-gating
and uploads the artifact.
"""

import json
import sys

import numpy as np

from repro.fault.crash import CrashPlan, InjectedCrash
from repro.service.replay import replay
from repro.storage.journal import JournaledDevice, WriteAheadJournal
from repro.storage.tiled import TiledStandardStore
from repro.wavelet.standard import standard_dwt

OUT_PATH = "FAULT_smoke.json"

SHAPE = (16, 16)
BLOCK_EDGE = 4


def check(condition, message):
    if not condition:
        raise AssertionError(message)


def _job(crash=None, holder=None):
    """Bulk-load a small standard transform; crash-protect the flush."""
    store = TiledStandardStore(SHAPE, block_edge=BLOCK_EDGE, pool_capacity=256)
    captured = {}

    def wrap(device):
        captured["journaled"] = JournaledDevice(device)
        return captured["journaled"]

    store.tile_store.wrap_device(wrap)
    device = captured["journaled"]
    if holder is not None:
        holder["device"] = device
    coefficients = standard_dwt(np.random.default_rng(7).normal(size=SHAPE))
    for position in np.ndindex(*SHAPE):
        store.write_point(position, float(coefficients[position]))
    device.crash = crash
    store.flush()
    device.crash = None
    return device


def crash_matrix() -> dict:
    survey = CrashPlan()
    _job(crash=survey)
    check(survey.count > 0, "crash survey found no sites")
    golden_post = _job().dump_blocks()
    # The pre-flush image (blocks allocated, nothing written): taken
    # from a run whose flush is killed at the very first site.
    holder = {}
    try:
        _job(crash=CrashPlan(armed=0), holder=holder)
    except InjectedCrash:
        pass
    golden_pre = holder["device"].inner.dump_blocks()

    outcomes = {"pre": 0, "post": 0}
    for site in range(survey.count):
        plan = CrashPlan(armed=site)
        holder = {}
        try:
            _job(crash=plan, holder=holder)
        except InjectedCrash:
            pass
        else:
            raise AssertionError(f"site {site} did not crash")
        raw = holder["device"].inner
        journal_bytes = holder["device"].journal.to_bytes()
        recovered = JournaledDevice(
            raw, journal=WriteAheadJournal.from_bytes(journal_bytes)
        )
        report = recovered.recover()
        name = survey.site_names[site]
        check(report.clean, f"site {name}: checksum failures after recovery")
        final = recovered.dump_blocks()
        if np.array_equal(final, golden_pre):
            outcomes["pre"] += 1
        elif np.array_equal(final, golden_post):
            outcomes["post"] += 1
        else:
            raise AssertionError(
                f"site {name}: recovered state is neither pre- nor "
                f"post-flush — atomicity violated"
            )
    check(outcomes["pre"] > 0, "no crash site lost the flush")
    check(outcomes["post"] > 0, "no crash site kept the flush")
    return {
        "sites": survey.count,
        "site_names": list(survey.site_names),
        "recovered_to_pre": outcomes["pre"],
        "recovered_to_post": outcomes["post"],
        "atomicity_violations": 0,
    }


def faulty_replay() -> dict:
    report = replay(
        shape=(32, 32),
        block_edge=8,
        pool_capacity=32,
        points=8,
        range_sums=4,
        regions=4,
        num_workers=2,
        num_shards=2,
        fault_rate=0.05,
        fault_seed=1,
    )
    fault = report["fault"]
    check(fault["wrong"] == 0, f"{fault['wrong']} silently-wrong answers")
    check(
        fault["injected"].get("read_error", 0) > 0,
        "fault replay injected no faults — the drill proved nothing",
    )
    total = (
        fault["recovered_ok"]
        + fault["degraded_within_bound"]
        + fault["definite_errors"]
    )
    check(
        total == report["config"]["queries"],
        "some answers were left unclassified",
    )
    return fault


def main():
    matrix = crash_matrix()
    fault = faulty_replay()
    smoke = {"crash_matrix": matrix, "faulty_replay": fault}
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(smoke, handle, indent=2)
    print(json.dumps(smoke, indent=2))
    print(
        f"fault-smoke OK: {matrix['sites']} crash sites recovered "
        f"atomically ({matrix['recovered_to_pre']} pre / "
        f"{matrix['recovered_to_post']} post), "
        f"{fault['injected'].get('read_error', 0)} injected read faults "
        f"with zero wrong answers, written to {OUT_PATH}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
