"""Racesan smoke: run the concurrency hammers under the lockset
sanitizer and report what it observed.

Forces ``REPRO_RACESAN=1`` and drives two instrumented workloads:

* the 8-thread metrics hammer (counter / gauge / histogram /
  registry), the same shapes ``tests/test_service_metrics.py`` runs;
* the replication apply path: a feeder drains shipped journal frames
  into a ``FollowerEngine`` while reader threads hammer ``snapshot()``
  and ack threads post acknowledgements to the ``JournalShipper``.

Writes ``RACESAN_smoke.json`` with the instrumented-object count, the
fields the Eraser pass tracked, and every race / guard-mismatch
finding (rendered through the same ``Finding`` type the static rules
use).  Exits non-zero on any finding — the tree's locking is supposed
to be clean.  Run via ``make racesan-smoke``; CI runs it non-gating
and uploads the artifact.
"""

import json
import os
import sys
import threading

os.environ["REPRO_RACESAN"] = "1"

from repro.analysis.racesan import RaceSanitizer, watching  # noqa: E402
from repro.service.metrics import MetricsRegistry  # noqa: E402

OUT_PATH = "RACESAN_smoke.json"
SLOTS = 16


def _run_threads(workers):
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


def metrics_hammer(results):
    """The 8-thread metrics stress under instrumentation."""
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    gauge = registry.gauge("depth")
    histogram = registry.histogram("lat")

    def hammer():
        for __ in range(1000):
            counter.inc()
            gauge.add(1)
            histogram.record(1.0)

    with watching(counter, gauge, histogram) as san:
        assert san is not None, "REPRO_RACESAN=1 must enable the sanitizer"
        _run_threads([threading.Thread(target=hammer) for __ in range(8)])
        results["metrics"] = {
            "instrumented": len(san._instrumented),
            "fields_tracked": len(san._states),
        }
    assert counter.value == 8000
    assert gauge.value == 8000.0
    assert histogram.count == 8000


def replica_apply_hammer(results):
    """Feeder + snapshot readers + ackers over shipper and follower."""
    import numpy as np

    from repro.replica.follower import FollowerEngine
    from repro.replica.shipper import JournalShipper
    from repro.storage.block_device import BlockDevice
    from repro.storage.journal import JournaledDevice

    device = JournaledDevice(BlockDevice(SLOTS))
    shipper = JournalShipper(device)
    rng = np.random.default_rng(7)
    for seed in range(64):
        block_id = seed % 4
        while device.num_blocks <= block_id:
            device.allocate()
        device.write_batch([(block_id, rng.standard_normal(SLOTS))])
    frames = shipper.frames_since(0)
    assert frames is not None and len(frames) == 64
    follower = FollowerEngine(BlockDevice(SLOTS))

    stop = threading.Event()

    def reader():
        while not stop.is_set():
            follower.snapshot()
            shipper.snapshot()

    def acker(name):
        for seq in range(1, 65):
            shipper.ack(name, seq)

    readers = [threading.Thread(target=reader) for __ in range(4)]
    ackers = [
        threading.Thread(target=acker, args=(f"f{i}",)) for i in range(3)
    ]
    with watching(follower, shipper) as san:
        assert san is not None
        for thread in readers + ackers:
            thread.start()
        for frame in frames:
            follower.feed(frame)
        for thread in ackers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        results["replica"] = {
            "instrumented": len(san._instrumented),
            "fields_tracked": len(san._states),
        }
    assert follower.applied_seq == 64
    assert shipper.acks() == {f"f{i}": 64 for i in range(3)}


def main():
    results = {"enabled": True, "findings": []}
    failures = []
    for name, fn in (
        ("metrics", metrics_hammer),
        ("replica", replica_apply_hammer),
    ):
        try:
            fn(results)
        except AssertionError as exc:
            failures.append(f"{name}: {exc}")
            results["findings"].append({"workload": name, "error": str(exc)})
    # a second, deliberate sanity leg: the sanitizer must still *see*
    # races (a detector that can't fire proves nothing)
    sentinel = _SentinelRace()
    barrier = threading.Barrier(4)  # keep all idents alive at once

    def race():
        barrier.wait()
        sentinel.bump_unlocked()

    try:
        with watching(sentinel, force=True, facts=_SENTINEL_FACTS):
            _run_threads(
                [threading.Thread(target=race) for __ in range(4)]
            )
        failures.append("sentinel: seeded race was NOT detected")
    except AssertionError:
        results["sentinel_race_detected"] = True

    results["ok"] = not failures
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"racesan-smoke: wrote {OUT_PATH}")
    for failure in failures:
        print(f"racesan-smoke: FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


class _SentinelRace:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def bump_unlocked(self):
        for __ in range(500):
            self._value += 1


_SENTINEL_FACTS = {"_SentinelRace": {"_value": "_lock"}}


if __name__ == "__main__":
    sys.exit(main())
