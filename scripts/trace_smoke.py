"""Trace-smoke check: a tiny traced serve-replay, schema-validated.

Runs a small workload replay with tracing enabled, writes the Chrome
trace-event JSON (``TRACE_smoke.json``) and the Prometheus text
exposition (``METRICS_smoke.prom``), then validates both:

* the trace file must be valid Chrome trace-event JSON — a
  ``traceEvents`` list whose entries carry the required keys per
  phase type (``M`` metadata, ``X`` complete events with numeric
  ``ts``/``dur``), so Perfetto will load it;
* the Prometheus file must parse line by line against the text
  exposition format (``# TYPE`` comments, ``name[{labels}] value``
  samples with finite values);
* attribution must be lossless: the receipt total equals the global
  IOStats delta field for field, and both replay paths agree.

Exits non-zero on any failure.  Run via ``make trace-smoke``; CI runs
it non-gating and uploads the two artifacts.
"""

import json
import re
import sys

from repro.service.replay import replay

TRACE_PATH = "TRACE_smoke.json"
PROM_PATH = "METRICS_smoke.prom"

_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$"  # sample value
)
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram)$"
)


def check(condition, message):
    if not condition:
        raise AssertionError(message)


def validate_chrome_trace(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    check(isinstance(doc, dict), "trace document must be a JSON object")
    events = doc.get("traceEvents")
    check(isinstance(events, list) and events, "traceEvents must be nonempty")
    slices = 0
    for event in events:
        check(isinstance(event, dict), "every event must be an object")
        check("name" in event and "ph" in event, "events need name and ph")
        check("pid" in event and "tid" in event, "events need pid and tid")
        if event["ph"] == "X":
            slices += 1
            for key in ("ts", "dur"):
                check(
                    isinstance(event[key], (int, float))
                    and event[key] >= 0,
                    f"complete events need numeric {key} >= 0",
                )
            check(isinstance(event.get("args", {}), dict), "args is a dict")
        elif event["ph"] == "M":
            check("args" in event, "metadata events need args")
        else:
            raise AssertionError(f"unexpected event phase {event['ph']!r}")
    check(slices > 0, "trace has no complete ('X') span events")
    other = doc.get("otherData", {})
    check("dropped_spans" in other, "otherData.dropped_spans missing")
    check("orphan_io" in other, "otherData.orphan_io missing")
    return len(events), slices


def validate_prometheus(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    check(text.endswith("\n"), "exposition must end with a newline")
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            check(
                _TYPE_LINE.match(line) is not None,
                f"bad comment line: {line!r}",
            )
            continue
        check(
            _METRIC_LINE.match(line) is not None,
            f"bad sample line: {line!r}",
        )
        samples += 1
    check(samples > 0, "exposition has no samples")
    return samples


def main():
    report = replay(
        shape=(32, 32),
        block_edge=8,
        pool_capacity=32,
        points=8,
        range_sums=4,
        regions=4,
        num_workers=2,
        num_shards=2,
        trace=True,
        trace_path=TRACE_PATH,
    )
    with open(PROM_PATH, "w", encoding="utf-8") as handle:
        handle.write(report["prometheus"])

    check(report["results_match"], "naive and batched answers diverged")
    trace = report["trace"]
    check(
        trace["lossless"],
        "I/O attribution lost counts: "
        f"receipt={trace['receipt']['total']} "
        f"expected={trace['expected_io']}",
    )
    check(trace["dropped_spans"] == 0, "smoke trace should not drop spans")
    check(len(trace["queries"]) > 0, "no per-query receipts produced")

    events, slices = validate_chrome_trace(TRACE_PATH)
    samples = validate_prometheus(PROM_PATH)
    print(
        f"trace-smoke OK: {events} events ({slices} spans) in "
        f"{TRACE_PATH}, {samples} samples in {PROM_PATH}, "
        f"lossless attribution over {trace['spans']} spans"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
