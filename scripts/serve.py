#!/usr/bin/env python
"""Thin launcher for the HTTP serving layer.

Equivalent to ``PYTHONPATH=src python -m repro.server``; accepts the
same flags (``--host``, ``--port``, ``--size``, ``--pool-blocks``,
``--seed``, ``--data-dir``) and prints the demo tenants' API keys at
startup.  ``--data-dir DIR`` persists the coefficient arena to
``DIR/arena.blocks`` (mmap-backed) and reopens it bit-identically on
the next launch.  See docs/serving.md for the API.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.server.__main__ import main

if __name__ == "__main__":
    sys.exit(main())
