#!/usr/bin/env python
"""Thin launcher for the HTTP serving layer.

Equivalent to ``PYTHONPATH=src python -m repro.server``; accepts the
same flags (``--host``, ``--port``, ``--size``, ``--pool-blocks``,
``--seed``) and prints the demo tenants' API keys at startup.  See
docs/serving.md for the API.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.server.__main__ import main

if __name__ == "__main__":
    sys.exit(main())
