"""Regenerate every experiment at full scale and export CSVs.

Usage:  python scripts/regenerate_experiments.py [results_dir] [--fast]

Prints the paper-style tables to stdout (tee it to refresh the numbers
in EXPERIMENTS.md) and writes one CSV per experiment for plotting.
"""

import sys
from pathlib import Path

from repro.experiments import run_all
from repro.experiments.export import export_all


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    fast = "--fast" in sys.argv[1:]
    directory = Path(args[0]) if args else Path("results")
    results = run_all(fast=fast)
    written = export_all(results, directory)
    print(f"wrote {len(written)} CSV files to {directory}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
