# Convenience targets for the SHIFT-SPLIT reproduction.

.PHONY: install test bench bench-smoke trace-smoke fault-smoke serve-smoke obs-smoke chaos-smoke racesan-smoke serve ci lint analyze experiments examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Small-geometry kernel-speed run (non-gating in CI); writes
# BENCH_kernels.json with cached/uncached and serial/parallel numbers.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_kernel_speed.py --smoke

# Tiny traced serve-replay (non-gating in CI); writes TRACE_smoke.json
# (Perfetto-loadable) + METRICS_smoke.prom and validates both formats
# plus lossless I/O attribution.
trace-smoke:
	PYTHONPATH=src python scripts/trace_smoke.py

# Robustness drill (non-gating in CI): crashes a journaled flush at
# every protocol site and proves atomic recovery, then replays the
# service workload under injected read faults through the self-healing
# engine; writes FAULT_smoke.json and fails on any wrong answer.
fault-smoke:
	PYTHONPATH=src python scripts/fault_smoke.py

# HTTP serving smoke (non-gating in CI): drives a live threading WSGI
# server over the demo hub, measures p50/p95 latency + I/O per request
# class, and runs the two-tenant quota-enforcement experiment; writes
# BENCH_http.json and fails if quota isolation does not hold.
serve-smoke:
	PYTHONPATH=src python benchmarks/bench_http_serving.py --smoke

# Telemetry overhead smoke (non-gating in CI): interleaves the same
# aggregate workload across baseline / recorders-on / traced hubs and
# reports p50/p95 with the always-on overhead vs the 5% p95 budget;
# writes BENCH_obs.json.
obs-smoke:
	PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke

# Replication drill (non-gating in CI): ship/replay throughput,
# measured failover time, and a reduced replication chaos matrix with
# acked-write-loss hard-asserted to zero; writes BENCH_replication.json
# and fails if any kill site loses an acknowledged update.
chaos-smoke:
	PYTHONPATH=src python benchmarks/bench_replication.py --smoke

# Lockset race sanitizer smoke (non-gating in CI): runs the 8-thread
# metrics hammer and the replication apply path under REPRO_RACESAN=1
# instrumentation, plus a seeded-race sentinel proving the detector
# can fire; writes RACESAN_smoke.json and fails on any race or
# guard-mismatch finding.
racesan-smoke:
	REPRO_RACESAN=1 PYTHONPATH=src python scripts/racesan_smoke.py

# Interactive: serve the demo hub on localhost:8950 (see docs/serving.md)
serve:
	PYTHONPATH=src python -m repro.server

ci:
	PYTHONPATH=src python -m pytest -x -q

# Strict-tooling island (see pyproject.toml): ruff + mypy over
# src/repro/analysis and src/repro/storage/iostats.py.  Gating in CI,
# where the tools are installed; skipped gracefully on machines
# without them so `make lint` never blocks local work.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "lint: ruff not installed, skipping (CI runs it)"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "lint: mypy not installed, skipping (CI runs it)"; \
	fi

# repro-lint: the project-invariant static analyzer (gating).  Exits
# non-zero on any finding beyond lint_baseline.json and writes the
# full JSON report (findings + static lock-order graph) for CI to
# archive.
analyze:
	PYTHONPATH=src python -m repro.analysis --json analysis_report.json

experiments:
	python scripts/regenerate_experiments.py results

examples:
	for script in examples/*.py; do python $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache results
	rm -f analysis_report.json protocol_report.json RACESAN_smoke.json
