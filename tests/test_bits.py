"""Unit tests for repro.util.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import ceil_div, ceil_log, ilog2, is_power_of_two


class TestIsPowerOfTwo:
    def test_powers_are_accepted(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in [0, -1, -8, 3, 6, 12, 100]:
            assert not is_power_of_two(value)

    def test_non_integers_are_rejected(self):
        assert not is_power_of_two(2.0)
        assert not is_power_of_two("8")

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_bit_count_definition(self, value):
        assert is_power_of_two(value) == (bin(value).count("1") == 1)


class TestIlog2:
    def test_exact_values(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(1024) == 10

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            ilog2(6)
        with pytest.raises(ValueError):
            ilog2(0)

    @given(st.integers(min_value=0, max_value=50))
    def test_roundtrip(self, exponent):
        assert ilog2(1 << exponent) == exponent


class TestCeilDiv:
    def test_exact_and_inexact(self):
        assert ceil_div(8, 4) == 2
        assert ceil_div(9, 4) == 3
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=10**4),
    )
    def test_is_ceiling(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert result * denominator >= numerator
        assert (result - 1) * denominator < numerator


class TestCeilLog:
    def test_small_cases(self):
        assert ceil_log(1, 2) == 0
        assert ceil_log(2, 2) == 1
        assert ceil_log(3, 2) == 2
        assert ceil_log(9, 3) == 2
        assert ceil_log(10, 3) == 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ceil_log(0, 2)
        with pytest.raises(ValueError):
            ceil_log(4, 1)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=2, max_value=10),
    )
    def test_is_smallest_exponent(self, value, base):
        exponent = ceil_log(value, base)
        assert base**exponent >= value
        if exponent:
            assert base ** (exponent - 1) < value
