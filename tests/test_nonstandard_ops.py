"""Tests for non-standard SHIFT-SPLIT application and inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonstandard_ops import (
    apply_chunk_nonstandard,
    extract_region_nonstandard,
    shift_regions_nonstandard,
    shift_split_counts_nonstandard,
    split_contributions_nonstandard,
)
from repro.storage.dense import DenseNonStandardStore
from repro.wavelet.nonstandard import nonstandard_dwt

geometries = st.tuples(
    st.integers(min_value=0, max_value=3),  # m
    st.integers(min_value=0, max_value=2),  # extra levels
    st.integers(min_value=1, max_value=3),  # d
)


class TestChunkedAssembly:
    @given(geometries, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_all_chunks_assemble_full_transform(self, geometry, seed):
        m, extra, ndim = geometry
        if (m + extra) * ndim > 12:  # keep cubes small
            m = 1
            extra = 1
        size = 1 << (m + extra)
        chunk = 1 << m
        data = np.random.default_rng(seed).normal(size=(size,) * ndim)
        store = DenseNonStandardStore(size, ndim)
        grid = size // chunk
        for position in np.ndindex(*(grid,) * ndim):
            selector = tuple(
                slice(g * chunk, (g + 1) * chunk) for g in position
            )
            apply_chunk_nonstandard(store, data[selector], position)
        assert np.allclose(store.to_array(), nonstandard_dwt(data))

    def test_update_mode_accumulates(self):
        rng = np.random.default_rng(11)
        base = rng.normal(size=(16, 16))
        delta = rng.normal(size=(4, 4))
        store = DenseNonStandardStore(16, 2)
        apply_chunk_nonstandard(store, base, (0, 0), fresh=True)
        apply_chunk_nonstandard(store, delta, (3, 1), fresh=False)
        updated = base.copy()
        updated[12:16, 4:8] += delta
        assert np.allclose(store.to_array(), nonstandard_dwt(updated))


class TestShiftRegions:
    def test_region_count(self):
        """m levels x (2^d - 1) masks copy regions."""
        regions = list(shift_regions_nonstandard(32, 8, (0, 0)))
        assert len(regions) == 3 * 3

    def test_regions_cover_all_chunk_details(self):
        chunk_cells = 0
        for __, __, __, chunk_slices in shift_regions_nonstandard(
            32, 8, (1, 2)
        ):
            cells = 1
            for piece in chunk_slices:
                cells *= piece.stop - piece.start
            chunk_cells += cells
        assert chunk_cells == 8 * 8 - 1  # everything but the average

    def test_bad_grid_position_rejected(self):
        with pytest.raises(ValueError):
            list(shift_regions_nonstandard(32, 8, (4, 0)))


class TestSplitContributions:
    def test_count_matches_section_4_1(self):
        """(2^d - 1)(n - m) + 1 contributions."""
        details, scaling = split_contributions_nonstandard(
            64, 8, (0, 0, 0), 1.0
        )
        assert len(details) == 7 * 3
        assert scaling == 1.0 / (8 ** 3)

    def test_magnitudes_decay_per_level(self):
        details, __ = split_contributions_nonstandard(16, 4, (0, 0), 2.0)
        magnitudes = {key.level: abs(delta) for key, delta in details}
        assert np.isclose(magnitudes[3], 2.0 / 4)
        assert np.isclose(magnitudes[4], 2.0 / 16)

    def test_counts_helper(self):
        counts = shift_split_counts_nonstandard(64, 8, 3)
        assert counts["shift"] == 8**3 - 1
        assert counts["split"] == 7 * 3 + 1


class TestExtraction:
    @given(geometries, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_extract_inverts_any_dyadic_region(self, geometry, seed):
        m, extra, ndim = geometry
        if (m + extra) * ndim > 12:
            m = 1
            extra = 1
        size = 1 << (m + extra)
        chunk = 1 << m
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(size,) * ndim)
        store = DenseNonStandardStore(size, ndim)
        apply_chunk_nonstandard(store, data, (0,) * ndim)
        grid = size // chunk
        position = tuple(int(rng.integers(0, grid)) for __ in range(ndim))
        corner = tuple(g * chunk for g in position)
        region = extract_region_nonstandard(store, corner, chunk)
        selector = tuple(slice(c, c + chunk) for c in corner)
        assert np.allclose(region, data[selector])

    def test_extraction_cost_matches_result_6(self):
        """M^d + (2^d - 1) log(N/M) + 1 coefficient reads."""
        rng = np.random.default_rng(13)
        data = rng.normal(size=(64, 64))
        store = DenseNonStandardStore(64, 2)
        apply_chunk_nonstandard(store, data, (0, 0))
        store.stats.reset()
        extract_region_nonstandard(store, (16, 32), 8)
        assert store.stats.coefficient_reads == 8 * 8 - 1 + 3 * 3 + 1

    def test_misaligned_corner_rejected(self):
        store = DenseNonStandardStore(16, 2)
        with pytest.raises(ValueError):
            extract_region_nonstandard(store, (2, 0), 4)
