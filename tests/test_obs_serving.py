"""Serving-path telemetry tests: trace propagation over HTTP, request
logs, the flight recorder, ``/debug/*`` endpoints, tile-heat
accounting and cross-process span shipping.

The serving contract under test: every HTTP response carries a
``Traceparent`` continuing the caller's trace id (or minting one),
every request leaves a structured receipt in the bounded request log,
slow/degraded/faulted data-route receipts survive in the flight
recorder, the ``/debug/*`` endpoints enforce the admin/tenant key
model, heat counters attribute tile touches to ``(tenant, class)``,
and a traced process-pool bulk load stays bit-identical *and*
lossless across the fork boundary.
"""

import io
import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import IO_FIELDS, io_receipt, tracing
from repro.obs.exporters import heat_to_prometheus
from repro.obs.flightrec import FlightRecorder
from repro.obs.heat import HeatRecorder, heat_context
from repro.obs.reqlog import (
    RequestLog,
    make_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.olap.schema import Dimension
from repro.server.demo import build_demo_hub
from repro.server.http import spawn
from repro.server.hub import ServingHub
from repro.storage.tiled import TiledStandardStore
from repro.transform.procpool import transform_standard_procpool

_TRACEPARENT = re.compile(r"^00-[0-9a-f]{32}-[0-9a-f]{16}-[0-9a-f]{2}$")


def _request(base, path, key=None, headers=None, data=None, timeout=10):
    """GET/POST returning ``(status, response headers, parsed body)``."""
    request = urllib.request.Request(base + path, data=data)
    if key is not None:
        request.add_header("X-API-Key", key)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            try:
                body = json.loads(raw)
            except ValueError:  # /metrics is text exposition
                body = raw.decode("utf-8", "replace")
            return response.status, dict(response.headers), body
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            parsed = json.loads(body)
        except ValueError:
            parsed = {"raw": body.decode("utf-8", "replace")}
        return error.code, dict(error.headers), parsed


@pytest.fixture(scope="module")
def served():
    hub = build_demo_hub(seed=23)
    server, thread = spawn(hub)
    host, port = server.server_address
    yield hub, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    hub.close()


class TestTraceparentParsing:
    def test_round_trip(self):
        trace, span = new_trace_id(), new_span_id()
        assert parse_traceparent(make_traceparent(trace, span)) == (
            trace,
            span,
        )

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-span-01",
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "G" * 32 + "-" + "b" * 16 + "-01",  # non-hex
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None

    def test_future_versions_parse_leniently(self):
        header = "42-" + "a" * 32 + "-" + "b" * 16 + "-01"
        assert parse_traceparent(header) == ("a" * 32, "b" * 16)


class TestTraceparentOverHttp:
    def test_response_mints_a_traceparent(self, served):
        __, base = served
        __, headers, __b = _request(base, "/cubes", key="acme-key")
        assert _TRACEPARENT.match(headers["Traceparent"])

    def test_incoming_trace_id_is_continued(self, served):
        __, base = served
        trace, span = new_trace_id(), new_span_id()
        __, headers, __b = _request(
            base,
            "/cubes",
            key="acme-key",
            headers={"traceparent": make_traceparent(trace, span)},
        )
        echoed_trace, echoed_span = parse_traceparent(
            headers["Traceparent"]
        )
        assert echoed_trace == trace
        assert echoed_span != span  # the response span is this request

    def test_distinct_requests_get_distinct_trace_ids(self, served):
        __, base = served
        __, first, __b = _request(base, "/cubes", key="acme-key")
        __, second, __b = _request(base, "/cubes", key="acme-key")
        assert (
            parse_traceparent(first["Traceparent"])[0]
            != parse_traceparent(second["Traceparent"])[0]
        )


class TestRequestLog:
    def test_ring_bounds_and_counts_drops(self):
        log = RequestLog(capacity=4)
        for index in range(10):
            log.record(path=f"/r{index}", tenant="t")
        assert len(log) == 4
        assert log.dropped == 6
        assert [r["path"] for r in log.records()] == [
            "/r6",
            "/r7",
            "/r8",
            "/r9",
        ]

    def test_stream_gets_one_json_line_per_record(self):
        stream = io.StringIO()
        log = RequestLog(capacity=4, stream=stream)
        log.record(path="/a", code=200)
        log.record(path="/b", code=404)
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["path"] for line in lines] == ["/a", "/b"]
        assert all("ts" in json.loads(line) for line in lines)

    def test_http_request_leaves_a_structured_receipt(self, served):
        hub, base = served
        cut = "time:0-31|region:0-31"
        __, headers, __b = _request(
            base, f"/cube/sales/aggregate?cut={cut}", key="acme-key"
        )
        record = hub.request_log.records(tenant="acme")[-1]
        assert record["cube"] == "sales"
        assert record["cut"] == cut
        assert record["status"] == "ok"
        assert record["code"] == 200
        assert record["wall_s"] >= 0.0
        assert set(record["io"]) == set(IO_FIELDS)
        assert record["trace_id"] == parse_traceparent(
            headers["Traceparent"]
        )[0]


class TestFlightRecorder:
    def test_bounded_under_flood(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(500):
            recorder.record(
                {"wall_s": index / 1000.0, "code": 200, "status": "ok"}
            )
        snapshot = recorder.snapshot()
        assert snapshot["seen"] == 500
        assert snapshot["evicted"] == 492
        walls = [r["wall_s"] for r in snapshot["slowest"]]
        # the 8 slowest survive, descending
        assert walls == sorted(walls, reverse=True)
        assert walls == [w / 1000.0 for w in range(499, 491, -1)]

    def test_degraded_and_faulted_classification(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record({"wall_s": 0.1, "code": 206, "status": "degraded"})
        recorder.record({"wall_s": 0.1, "code": 200, "status": "timeout"})
        recorder.record({"wall_s": 0.1, "code": 500, "status": ""})
        recorder.record({"wall_s": 0.1, "code": 200, "status": "error"})
        snapshot = recorder.snapshot()
        assert len(snapshot["degraded"]) == 2
        assert len(snapshot["faulted"]) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_only_data_routes_feed_the_recorder(self, served):
        hub, base = served
        before = hub.flight_recorder.snapshot()["seen"]
        _request(base, "/cubes", key="acme-key")
        _request(base, "/healthz")
        assert hub.flight_recorder.snapshot()["seen"] == before
        _request(
            base,
            "/cube/sales/aggregate?cut=time:0-31|region:0-31",
            key="acme-key",
        )
        assert hub.flight_recorder.snapshot()["seen"] == before + 1


class TestDebugEndpoints:
    @pytest.mark.parametrize(
        "path", ["/debug/queries", "/debug/trace", "/debug/heat"]
    )
    def test_no_key_is_401(self, served, path):
        __, base = served
        code, __, __b = _request(base, path)
        assert code == 401

    @pytest.mark.parametrize(
        "path", ["/debug/queries", "/debug/trace", "/debug/heat"]
    )
    def test_unknown_key_is_401(self, served, path):
        __, base = served
        code, __, __b = _request(base, path, key="not-a-key")
        assert code == 401

    def test_admin_sees_unfiltered_queries(self, served):
        __, base = served
        for cube, key in (("sales", "acme-key"), ("telemetry", "globex-key")):
            _request(
                base,
                f"/cube/{cube}/aggregate?cut=",
                key=key,
            )
        code, __, body = _request(
            base, "/debug/queries", key="demo-admin-key"
        )
        assert code == 200
        tenants = {r.get("tenant") for r in body["recent"]}
        assert {"acme", "globex"} <= tenants
        assert body["flight"]["capacity"] == 64

    def test_tenant_key_sees_only_its_own_queries(self, served):
        __, base = served
        _request(base, "/cube/sales/aggregate?cut=", key="acme-key")
        _request(base, "/cube/telemetry/aggregate?cut=", key="globex-key")
        code, __, body = _request(base, "/debug/queries", key="acme-key")
        assert code == 200
        assert body["recent"]  # has records
        assert {r.get("tenant") for r in body["recent"]} == {"acme"}
        assert {
            r.get("tenant") for r in body["flight"]["slowest"]
        } <= {"acme"}

    def test_trace_needs_the_admin_key(self, served):
        __, base = served
        code, __, __b = _request(base, "/debug/trace", key="acme-key")
        assert code == 403
        code, __, body = _request(
            base, "/debug/trace", key="demo-admin-key"
        )
        assert code == 200
        # no tracer installed on the serving process by default
        assert body == {"enabled": False, "spans": 0, "dropped": 0}

    def test_unknown_debug_route_is_404(self, served):
        __, base = served
        code, __, __b = _request(
            base, "/debug/nonsense", key="demo-admin-key"
        )
        assert code == 404


class TestTileHeat:
    def test_attribution_and_cap(self):
        recorder = HeatRecorder(max_tiles=2)
        with heat_context("acme", "RangeSumQuery"):
            recorder.touch(1, reads=2)
            recorder.touch(2, writes=1)
            recorder.touch(3, reads=1)  # over the per-label cap
        recorder.touch(9, reads=1)  # unattributed
        assert recorder.dropped == 1
        rows = {
            (row["tenant"], row["class"]): row
            for row in recorder.aggregates()
        }
        acme = rows[("acme", "RangeSumQuery")]
        assert (acme["reads"], acme["writes"], acme["tiles"]) == (2, 1, 2)
        assert ("", "") in rows  # the unattributed bucket
        assert recorder.aggregates(tenant="acme") == [acme]

    def test_snapshot_merges_labels_per_block(self):
        recorder = HeatRecorder()
        with heat_context("acme", "query"):
            recorder.touch(5, reads=3)
        with heat_context("acme", "update"):
            recorder.touch(5, writes=2)
        snapshot = recorder.snapshot(top=1)
        (tile,) = snapshot["tiles"]
        assert (tile["block"], tile["reads"], tile["writes"]) == (5, 3, 2)
        assert tile["by"] == {
            "acme/query": [3, 0],
            "acme/update": [0, 2],
        }

    def test_prometheus_export_is_label_bounded(self):
        recorder = HeatRecorder()
        with heat_context("acme", "query"):
            recorder.touch(1, reads=4)
            recorder.touch(2, writes=1)
        text = heat_to_prometheus(recorder.aggregates())
        line = 'repro_tile_heat_reads_total{tenant="acme",class="query"} 4'
        assert line in text
        assert "block" not in text  # no per-block series

    def test_http_queries_heat_the_map(self, served):
        hub, base = served
        _request(
            base,
            "/cube/sales/aggregate?cut=time:0-31|region:0-31",
            key="acme-key",
        )
        code, __, body = _request(
            base, "/debug/heat", key="demo-admin-key"
        )
        assert code == 200
        assert body["enabled"]
        labels = {
            (row["tenant"], row["class"]) for row in body["aggregates"]
        }
        assert ("acme", "RangeSumQuery") in labels
        assert body["tiles"]  # per-block histogram is populated

    def test_tenant_scoped_heat_view(self, served):
        __, base = served
        _request(base, "/cube/telemetry/aggregate?cut=", key="globex-key")
        code, __, body = _request(base, "/debug/heat", key="globex-key")
        assert code == 200
        assert {row["tenant"] for row in body["aggregates"]} == {"globex"}

    def test_updates_are_attributed_to_the_update_class(self, served):
        hub, base = served
        payload = json.dumps(
            {"deltas": [[0.5]], "corner": {"time": 1, "region": 1}}
        ).encode()
        code, __, __b = _request(
            base, "/cube/sales/update", key="acme-key", data=payload
        )
        assert code == 200
        labels = {
            (row["tenant"], row["class"])
            for row in hub.debug_heat()["aggregates"]
        }
        assert ("acme", "update") in labels

    def test_metrics_exposition_carries_heat_counters(self, served):
        __, base = served
        _request(base, "/cube/sales/aggregate?cut=", key="acme-key")
        code, __, body = _request(base, "/metrics")
        assert code == 200
        text = body if isinstance(body, str) else body["raw"]
        assert "repro_tile_heat_reads_total" in text
        assert 'tenant="acme"' in text


class TestHealthzRollup:
    def test_per_tenant_status_and_queue_hwm(self, served):
        __, base = served
        code, __, body = _request(base, "/healthz")
        assert code == 200
        assert body["status"] == "ok"
        for tenant in ("acme", "globex"):
            entry = body["tenants"][tenant]
            assert entry["status"] == "ok"
            assert entry["queue_hwm"] >= 0
            assert entry["cubes"]


class TestArenaTelemetry:
    def test_snapshot_and_metrics_surface_mmap_internals(self, tmp_path):
        hub = ServingHub(data_dir=str(tmp_path), heat_max_tiles=0)
        try:
            hub.add_tenant("t", api_key="k")
            rng = np.random.default_rng(3)
            hub.add_cube(
                "t",
                "c",
                [Dimension("x", 16), Dimension("y", 16)],
                data=rng.random((16, 16)),
            )
            arena = hub.tenant("t").cubes["c"].engine.snapshot()["arena"]
            assert arena["mapped_bytes"] > 0
            assert arena["capacity_blocks"] >= arena["allocated_blocks"] > 0
            assert arena["growths"] >= 0
            text = hub.prometheus()
            for name in (
                "arena_growths",
                "arena_mapped_bytes",
                "arena_msyncs",
                "arena_resize_wait_s",
            ):
                assert f"repro_{name}" in text
        finally:
            hub.close()

    def test_in_memory_hub_has_no_arena_section(self):
        hub = ServingHub(heat_max_tiles=0, flight_capacity=0)
        try:
            hub.add_tenant("t", api_key="k")
            rng = np.random.default_rng(3)
            hub.add_cube(
                "t",
                "c",
                [Dimension("x", 16), Dimension("y", 16)],
                data=rng.random((16, 16)),
            )
            snapshot = hub.tenant("t").cubes["c"].engine.snapshot()
            assert "arena" not in snapshot
            assert "arena_mapped_bytes" not in hub.prometheus()
        finally:
            hub.close()


def _procpool_load(workers):
    """Seeded process-pool bulk load; returns comparable state."""
    rng = np.random.default_rng(11)
    data = rng.standard_normal((32, 32))
    store = TiledStandardStore((32, 32), block_edge=8, pool_capacity=16)
    transform_standard_procpool(store, data, (16, 16), workers=workers)
    store.flush()
    return (
        store.stats.snapshot(),
        store.tile_store.device.dump_blocks().copy(),
        store.tile_store.directory(),
    )


class TestProcpoolSpanShipping:
    """The fork boundary must not break bit-identity or losslessness."""

    def test_traced_procpool_is_bit_identical(self):
        stats_plain, blocks_plain, directory_plain = _procpool_load(2)
        with tracing():
            stats_traced, blocks_traced, directory_traced = _procpool_load(
                2
            )
        assert stats_traced == stats_plain
        assert directory_traced == directory_plain
        np.testing.assert_array_equal(blocks_traced, blocks_plain)

    def test_worker_spans_ship_back_lossless(self):
        with tracing() as tracer:
            stats, __b, __d = _procpool_load(2)
        spans = tracer.spans()
        receipt = io_receipt(spans, tracer.orphan_io)
        for field in IO_FIELDS:
            assert receipt["total"][field] == getattr(stats, field), field
        workers = [s for s in spans if s.name == "procpool.worker"]
        assert sorted(s.attrs["worker"] for s in workers) == [0, 1]
        names = {s.name for s in spans}
        assert {"worker.chunks", "worker.tiles"} <= names
        # shipped spans re-parent under the pool span, not as roots
        pool = [s for s in spans if s.name == "transform.procpool"]
        assert len(pool) == 1
        assert all(s.parent_id == pool[0].span_id for s in workers)
