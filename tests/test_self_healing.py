"""Tests for retry, circuit breaking, degraded reads and engine hygiene."""

import random
import threading

import numpy as np
import pytest

from repro.fault.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.fault.device import FaultRule, FaultyBlockDevice, InjectedIOError
from repro.fault.retry import Retrier, RetryPolicy
from repro.service.engine import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    EngineClosedError,
    AdmissionError,
    QueryEngine,
)
from repro.service.queries import (
    CustomQuery,
    PointQuery,
    RangeSumQuery,
    execute_query_degraded,
    DegradedValue,
    query_weight_bound,
)
from repro.storage.iostats import IOStats
from repro.storage.journal import JournaledDevice
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked


def _store(shape=(16, 16), pool_capacity=64, wrap=None, stats=None):
    data = np.random.default_rng(11).normal(size=shape)
    store = TiledStandardStore(
        shape, block_edge=4, pool_capacity=pool_capacity, stats=stats
    )
    if wrap is not None:
        store.tile_store.wrap_device(wrap)
    transform_standard_chunked(store, data, (8, 8))
    store.flush()
    store.drop_cache()
    return store, data


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_for(a, rng) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_in_band_and_replays(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.5, seed=3)
        a = [policy.delay_for(1, random.Random(3)) for __ in range(5)]
        b = [policy.delay_for(1, random.Random(3)) for __ in range(5)]
        assert a == b
        for delay in a:
            assert 0.005 <= delay <= 0.015

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetrier:
    def test_transient_failure_retried_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedIOError("flaky")
            return "done"

        slept = []
        retrier = Retrier(
            RetryPolicy(max_attempts=4, jitter=0.0, base_delay_s=0.01),
            sleep=slept.append,
        )
        assert retrier.call(flaky) == "done"
        assert retrier.retries == 2
        assert slept == [0.01, 0.02]

    def test_exhaustion_raises_last_error(self):
        retrier = Retrier(
            RetryPolicy(max_attempts=3, base_delay_s=0.0),
            sleep=lambda _: None,
        )
        with pytest.raises(InjectedIOError):
            retrier.call(lambda: (_ for _ in ()).throw(InjectedIOError("x")))
        assert retrier.gave_up == 1
        assert retrier.retries == 2

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def bug():
            calls["n"] += 1
            raise ValueError("bug, not transient")

        retrier = Retrier(RetryPolicy(max_attempts=5), sleep=lambda _: None)
        with pytest.raises(ValueError):
            retrier.call(bug)
        assert calls["n"] == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0, clock=lambda: clock["t"]
        )
        assert breaker.state == STATE_CLOSED
        for __ in range(3):
            assert breaker.allow()
            breaker.on_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()  # shedding
        clock["t"] = 11.0
        assert breaker.allow()  # half-open probe
        assert breaker.state == STATE_HALF_OPEN
        breaker.on_success()
        assert breaker.state == STATE_CLOSED

    def test_half_open_failure_reopens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=lambda: clock["t"]
        )
        breaker.on_failure()
        assert breaker.state == STATE_OPEN
        clock["t"] = 6.0
        assert breaker.allow()
        breaker.on_failure()  # the probe failed
        assert breaker.state == STATE_OPEN
        assert breaker.opens == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        assert breaker.state == STATE_CLOSED


class TestDegradedQueries:
    def test_broken_block_yields_bounded_answer(self):
        stats = IOStats()
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(device)
            return JournaledDevice(faulty["dev"])

        store, data = _store(wrap=wrap, stats=stats)
        # Break a materialised block permanently.
        victim = next(iter(store.tile_store.directory().values()))
        faulty["dev"].broken_blocks.add(victim)
        store.drop_cache()

        query = PointQuery((5, 5))
        outcome = execute_query_degraded(store, query)
        if isinstance(outcome, DegradedValue):
            truth = float(data[5, 5])
            assert outcome.error_bound >= 0.0
            assert np.isfinite(outcome.error_bound)
            assert abs(outcome.value - truth) <= outcome.error_bound + 1e-9
            assert victim in outcome.missing_blocks
        else:
            # The point's root path happened to avoid the broken block;
            # then the answer must simply be exact.
            assert np.isclose(outcome, data[5, 5])

    def test_range_sum_bound_holds(self):
        stats = IOStats()
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(device)
            return JournaledDevice(faulty["dev"])

        store, data = _store(wrap=wrap, stats=stats)
        query = RangeSumQuery((0, 0), (15, 15))
        truth = float(data.sum())
        # Break every block: the degraded answer must still be bounded.
        for block_id in store.tile_store.directory().values():
            faulty["dev"].broken_blocks.add(block_id)
        store.drop_cache()
        outcome = execute_query_degraded(store, query)
        assert isinstance(outcome, DegradedValue)
        assert np.isfinite(outcome.error_bound)
        assert abs(outcome.value - truth) <= outcome.error_bound + 1e-9

    def test_degraded_zeros_never_cached(self):
        """After the fault clears, reads see true data, not the zeros."""
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(device)
            return JournaledDevice(faulty["dev"])

        store, data = _store(wrap=wrap)
        victim = next(iter(store.tile_store.directory().values()))
        faulty["dev"].broken_blocks.add(victim)
        store.drop_cache()
        execute_query_degraded(store, RangeSumQuery((0, 0), (15, 15)))
        faulty["dev"].broken_blocks.clear()  # fault heals
        from repro.service.queries import execute_query

        value = execute_query(store, PointQuery((5, 5)))
        assert np.isclose(value, data[5, 5])

    def test_weight_bounds(self):
        store, __ = _store()
        assert query_weight_bound(store, PointQuery((1, 1))) == 1.0
        bound = query_weight_bound(store, RangeSumQuery((0, 0), (15, 15)))
        assert np.isfinite(bound) and bound >= 1.0
        assert query_weight_bound(
            store, CustomQuery(lambda s: 0)
        ) == float("inf")


class TestSelfHealingEngine:
    def test_transient_faults_retried_to_exact_answers(self):
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(
                device, seed=9, read_error_rate=0.15
            )
            return faulty["dev"]

        store, data = _store(wrap=wrap)
        engine = QueryEngine(
            store,
            num_workers=2,
            retry_policy=RetryPolicy(
                max_attempts=6, base_delay_s=0.0001, seed=1
            ),
            degraded_reads=True,
        )
        try:
            positions = [(i, j) for i in range(0, 16, 3) for j in range(0, 16, 3)]
            results = [engine.run(PointQuery(p)) for p in positions]
        finally:
            engine.close()
        assert faulty["dev"].fault_counts()["read_error"] > 0
        wrong = 0
        for position, result in zip(positions, results):
            truth = float(data[position])
            if result.ok:
                if not np.isclose(result.value, truth, atol=1e-9):
                    wrong += 1
            elif result.degraded:
                if abs(result.value - truth) > result.error_bound + 1e-9:
                    wrong += 1
            else:
                pytest.fail(f"unexpected status {result.status}")
        assert wrong == 0

    def test_persistent_fault_degrades_with_bound(self):
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(device)
            return JournaledDevice(faulty["dev"])

        store, data = _store(wrap=wrap)
        for block_id in store.tile_store.directory().values():
            faulty["dev"].broken_blocks.add(block_id)
        store.drop_cache()
        engine = QueryEngine(
            store,
            num_workers=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            degraded_reads=True,
        )
        try:
            result = engine.run(PointQuery((3, 3)))
        finally:
            engine.close()
        assert result.status == STATUS_DEGRADED
        assert result.error_bound is not None
        assert abs(result.value - data[3, 3]) <= result.error_bound + 1e-9
        assert engine.metrics.counter("queries_degraded").value == 1

    def test_breaker_sheds_after_consecutive_failures(self):
        faulty = {}

        def wrap(device):
            faulty["dev"] = FaultyBlockDevice(device)
            return faulty["dev"]

        store, __ = _store(wrap=wrap)
        for block_id in store.tile_store.directory().values():
            faulty["dev"].broken_blocks.add(block_id)
        store.drop_cache()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0)
        engine = QueryEngine(
            store, num_workers=1, breaker=breaker, degraded_reads=False
        )
        try:
            for __ in range(4):
                result = engine.run(PointQuery((3, 3)))
                assert result.status == STATUS_ERROR
        finally:
            engine.close()
        assert breaker.state == STATE_OPEN
        assert breaker.shed > 0
        snapshot = engine.snapshot()
        assert snapshot["breaker"]["state"] == STATE_OPEN
        assert snapshot["faults"]["read_error"] > 0
        assert engine.metrics.counter("queries_shed").value > 0

    def test_fault_free_resilient_engine_matches_plain(self):
        """Retry + breaker + degraded reads, zero faults: bit-identical
        answers and identical IOStats to the plain engine."""

        def serve(resilient):
            stats = IOStats()
            store, __ = _store(stats=stats)
            kwargs = {}
            if resilient:
                kwargs = {
                    "retry_policy": RetryPolicy(),
                    "breaker": CircuitBreaker(),
                    "degraded_reads": True,
                }
            engine = QueryEngine(store, num_workers=2, **kwargs)
            try:
                queries = [
                    PointQuery((i, j))
                    for i in range(0, 16, 5)
                    for j in range(0, 16, 5)
                ] + [RangeSumQuery((0, 0), (7, 7))]
                batch = engine.execute_batch(queries)
            finally:
                engine.close()
            values = tuple(
                float(np.asarray(r.value).sum()) for r in batch.results
            )
            statuses = tuple(r.status for r in batch.results)
            return values, statuses, stats.snapshot()

        plain_v, plain_s, plain_io = serve(resilient=False)
        res_v, res_s, res_io = serve(resilient=True)
        assert plain_v == res_v
        assert plain_s == res_s == tuple([STATUS_OK] * len(plain_s))
        assert plain_io == res_io


class TestEngineHygiene:
    def test_poisoned_query_never_hangs_or_kills_worker(self):
        store, data = _store()
        engine = QueryEngine(store, num_workers=1)
        try:
            def buggy(_store):
                raise ZeroDivisionError("query bug")

            bad = engine.run(CustomQuery(buggy))
            assert bad.status == STATUS_ERROR
            assert "query bug" in bad.error
            # The sole worker must still be alive and serving.
            good = engine.run(PointQuery((2, 2)))
            assert good.ok and np.isclose(good.value, data[2, 2])
        finally:
            engine.close()

    def test_submit_after_close_raises_typed_error(self):
        store, __ = _store()
        engine = QueryEngine(store, num_workers=1)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(PointQuery((0, 0)))
        with pytest.raises(AdmissionError):  # subclass relationship
            engine.submit(PointQuery((0, 0)))
        with pytest.raises(RuntimeError):  # seed compatibility
            engine.execute_batch([PointQuery((0, 0))])

    def test_close_is_idempotent_and_concurrent_safe(self):
        store, __ = _store()
        engine = QueryEngine(store, num_workers=2)
        submissions = [engine.submit(PointQuery((i, i))) for i in range(8)]
        errors = []

        def closer():
            try:
                engine.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=closer) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.close()  # and once more for idempotence
        assert not errors
        # Every in-flight query got a definite result.
        for submission in submissions:
            result = submission.result(timeout=5.0)
            assert result.status in (STATUS_OK, STATUS_ERROR)
        assert engine.closed


class TestJournalIOStatsDelta:
    def test_journal_delta_is_exactly_groups_plus_records(self):
        """Fault-free runs with the journal enabled keep every seed
        counter identical and add exactly D+1 journal writes per
        group-committed flush of D blocks."""

        def run(journaled):
            stats = IOStats()
            groups = []
            if journaled:
                def wrap(device):
                    journal_device = JournaledDevice(device)
                    groups.append(journal_device)
                    return journal_device

                store, data = _store(stats=stats, wrap=wrap)
            else:
                store, data = _store(stats=stats)
            # A query wave after the load exercises reads too.
            from repro.service.queries import execute_query

            for i in range(0, 16, 4):
                execute_query(store, PointQuery((i, i)))
            store.flush()
            return stats.snapshot(), store

        plain, plain_store = run(journaled=False)
        journaled, journal_store = run(journaled=True)
        for field in (
            "block_reads",
            "block_writes",
            "coefficient_reads",
            "coefficient_writes",
            "cache_hits",
            "cache_misses",
        ):
            assert getattr(plain, field) == getattr(journaled, field), field
        assert plain.journal_writes == 0
        # The bulk load flushed all tiles in one group; the documented
        # delta is (blocks flushed + 1 commit record) per group.
        flushed_blocks = journal_store.tile_store.device.inner.num_blocks
        assert journaled.journal_writes == flushed_blocks + 1
        np.testing.assert_array_equal(
            plain_store.tile_store.device.dump_blocks(),
            journal_store.tile_store.device.dump_blocks(),
        )
