"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the tracer itself (nesting, cross-thread attachment, charge
attribution, the null fast path, the bounded ring buffer), the three
exporters, and the two properties the subsystem must guarantee over
the instrumented library:

* **non-interference** — enabling tracing changes no IOStats counter
  and no stored byte (traced and untraced runs are bit-identical);
* **losslessness** — summing every span's attributed I/O plus the
  tracer's orphan bucket reproduces the global IOStats delta exactly.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.plans import plan_cache_stats
from repro.obs import (
    IO_FIELDS,
    NULL_TRACER,
    Tracer,
    TraceStore,
    charge,
    get_tracer,
    io_receipt,
    query_receipts,
    set_tracer,
    to_chrome_trace,
    to_prometheus,
    tracing,
    zero_io,
)
from repro.service.engine import QueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.queries import PointQuery, RangeSumQuery
from repro.service.replay import replay
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked


def _bulk_load(workers=1):
    """Seeded 2-d bulk load; returns (store, final stats, raw blocks,
    directory) so two runs can be compared bit for bit."""
    rng = np.random.default_rng(7)
    data = rng.standard_normal((32, 32))
    store = TiledStandardStore((32, 32), block_edge=8, pool_capacity=4)
    transform_standard_chunked(store, data, (8, 8), workers=workers)
    store.flush()
    return (
        store,
        store.stats.snapshot(),
        store.tile_store.device.dump_blocks().copy(),
        store.tile_store.directory(),
    )


class TestTracerCore:
    def test_off_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(more=2)
        NULL_TRACER.charge("block_reads", 5)
        charge("block_reads", 5)  # module hook, tracing off
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.current_span() is None

    def test_nesting_parents_and_attrs(self):
        with tracing() as tracer:
            with tracer.span("outer", label="a") as outer:
                with tracer.span("inner") as inner:
                    inner.set(deep=True)
                    assert tracer.current_span() is inner
                assert tracer.current_span() is outer
        spans = {span.name: span for span in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs == {"label": "a"}
        assert spans["inner"].attrs == {"deep": True}
        assert spans["outer"].wall_s >= spans["inner"].wall_s >= 0.0

    def test_tracing_scope_restores_previous(self):
        outer = Tracer()
        set_tracer(outer)
        try:
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_cross_thread_parent_attachment(self):
        with tracing() as tracer:
            with tracer.span("root") as root:
                def work():
                    # Threads start with an empty span context...
                    assert tracer.current_span() is None
                    with tracer.span("child", parent=root):
                        tracer.charge("block_reads")
                thread = threading.Thread(target=work)
                thread.start()
                thread.join()
        spans = {span.name: span for span in tracer.spans()}
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["child"].thread_id != spans["root"].thread_id
        assert spans["child"].io["block_reads"] == 1

    def test_charge_attribution_and_orphans(self):
        with tracing() as tracer:
            charge("block_reads", 2)  # no span open -> orphan bucket
            with tracer.span("op") as span:
                charge("block_writes", 3)
                charge("cache_hits")
        assert tracer.orphan_io["block_reads"] == 2
        assert span.io["block_writes"] == 3
        assert span.io["cache_hits"] == 1
        receipt = io_receipt(tracer.spans(), tracer.orphan_io)
        assert receipt["total"]["block_reads"] == 2
        assert receipt["total"]["block_writes"] == 3
        assert receipt["unattributed"]["block_reads"] == 2

    def test_ring_buffer_bounds_memory(self):
        with tracing(max_spans=8) as tracer:
            for index in range(20):
                with tracer.span("op", index=index):
                    pass
        spans = tracer.spans()
        assert len(spans) == 8
        assert tracer.store.dropped == 12
        # Oldest spans were evicted; the newest survive.
        assert [span.attrs["index"] for span in spans] == list(range(12, 20))

    def test_trace_store_validates_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(max_spans=0)

    def test_concurrent_spans_and_charges(self):
        with tracing() as tracer:
            def work(tid):
                for index in range(50):
                    with tracer.span("op", tid=tid, index=index):
                        tracer.charge("block_reads")
            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        spans = tracer.spans()
        assert len(spans) == 8 * 50
        assert all(span.io["block_reads"] == 1 for span in spans)
        receipt = io_receipt(spans, tracer.orphan_io)
        assert receipt["total"]["block_reads"] == 400


class TestExporters:
    def _traced(self):
        with tracing() as tracer:
            with tracer.span("parent", tile=(1, 2)):
                with tracer.span("child"):
                    charge("block_reads", 4)
            charge("cache_misses")  # orphan
        return tracer

    def test_chrome_trace_schema(self):
        tracer = self._traced()
        doc = to_chrome_trace(
            tracer.spans(),
            orphan_io=tracer.orphan_io,
            dropped=tracer.store.dropped,
        )
        json.dumps(doc)  # must serialise
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["name"] == "process_name"
        assert {e["name"] for e in slices} == {"parent", "child"}
        for event in slices:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
        child = next(e for e in slices if e["name"] == "child")
        assert child["args"]["io.block_reads"] == 4
        parent = next(e for e in slices if e["name"] == "parent")
        assert parent["args"]["tile"] == [1, 2]
        assert doc["otherData"]["orphan_io"]["cache_misses"] == 1
        assert doc["otherData"]["dropped_spans"] == 0

    def test_io_receipt_by_name(self):
        tracer = self._traced()
        receipt = io_receipt(tracer.spans(), tracer.orphan_io)
        assert receipt["spans"] == 2
        assert receipt["by_name"]["child"]["io"]["block_reads"] == 4
        assert receipt["by_name"]["parent"]["io"]["block_reads"] == 0
        assert receipt["total"]["block_reads"] == 4
        assert receipt["total"]["cache_misses"] == 1

    def test_query_receipts_cumulative_io(self):
        with tracing() as tracer:
            with tracer.span("query", kind="PointQuery"):
                charge("cache_hits")
                with tracer.span("pool.fetch", block=3):
                    charge("block_reads")
            with tracer.span("query", kind="RangeSumQuery"):
                charge("cache_hits", 2)
        receipts = query_receipts(tracer.spans())
        assert len(receipts) == 2
        first, second = receipts
        # Descendant pool.fetch I/O rolls up into the query receipt.
        assert first["io"]["block_reads"] == 1
        assert first["io"]["cache_hits"] == 1
        assert first["attrs"]["kind"] == "PointQuery"
        assert second["io"]["block_reads"] == 0
        assert second["io"]["cache_hits"] == 2

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("queries_served").inc(5)
        registry.counter("hits", labels={"shard": 1}).inc(2)
        registry.gauge("queue_depth").set(3)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("latency_s").record(value)
        text = to_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE repro_queries_served counter" in lines
        assert "repro_queries_served 5" in lines
        assert 'repro_hits{shard="1"} 2' in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 3.0" in lines
        assert "# TYPE repro_latency_s summary" in lines
        assert any(
            line.startswith('repro_latency_s{quantile="0.5"}')
            for line in lines
        )
        assert any(line.startswith("repro_latency_s_sum") for line in lines)
        assert "repro_latency_s_count 3" in lines
        assert text.endswith("\n")
        # Every non-comment line is "name[{labels}] value".
        for line in lines:
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part

    def test_prometheus_accepts_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        assert to_prometheus(registry.snapshot()) == to_prometheus(registry)


class TestNonInterference:
    """Enabling tracing must not change what the library computes."""

    def test_traced_bulk_load_bit_identical(self):
        __, stats_plain, blocks_plain, directory_plain = _bulk_load()
        with tracing() as tracer:
            __, stats_traced, blocks_traced, directory_traced = _bulk_load()
        assert stats_traced == stats_plain
        assert directory_traced == directory_plain
        np.testing.assert_array_equal(blocks_traced, blocks_plain)
        assert len(tracer.spans()) > 0  # tracing actually happened

    def test_traced_parallel_bulk_load_bit_identical(self):
        # The ordered pipeline applies store mutations in the serial
        # sequence, so even the block-I/O trace must survive tracing.
        __, stats_plain, blocks_plain, directory_plain = _bulk_load(
            workers=2
        )
        with tracing():
            __, stats_traced, blocks_traced, directory_traced = _bulk_load(
                workers=2
            )
        assert stats_traced == stats_plain
        assert directory_traced == directory_plain
        np.testing.assert_array_equal(blocks_traced, blocks_plain)


class TestLosslessAttribution:
    """span totals + orphan_io == the global IOStats delta, exactly."""

    def test_bulk_load_receipt_matches_stats(self):
        with tracing() as tracer:
            __, stats, __b, __d = _bulk_load()
        receipt = io_receipt(tracer.spans(), tracer.orphan_io)
        for field in IO_FIELDS:
            assert receipt["total"][field] == getattr(stats, field), field

    def test_parallel_bulk_load_receipt_matches_stats(self):
        with tracing() as tracer:
            __, stats, __b, __d = _bulk_load(workers=2)
        receipt = io_receipt(tracer.spans(), tracer.orphan_io)
        for field in IO_FIELDS:
            assert receipt["total"][field] == getattr(stats, field), field

    def test_traced_replay_is_lossless(self):
        report = replay(
            shape=(32, 32),
            points=6,
            range_sums=3,
            regions=3,
            trace=True,
        )
        trace = report["trace"]
        assert trace["lossless"]
        assert trace["dropped_spans"] == 0
        assert trace["receipt"]["total"] == trace["expected_io"]
        # One receipt per naive query plus one per engine query.
        assert len(trace["queries"]) == 2 * report["config"]["queries"]
        assert "prometheus" in report
        assert report["results_match"]

    def test_untraced_replay_matches_traced_iostats(self):
        plain = replay(shape=(32, 32), points=6, range_sums=3, regions=3)
        traced = replay(
            shape=(32, 32), points=6, range_sums=3, regions=3, trace=True
        )
        # Tracing must not perturb a single I/O count.
        assert (
            traced["naive"]["block_reads"] == plain["naive"]["block_reads"]
        )
        assert (
            traced["batched"]["block_reads"]
            == plain["batched"]["block_reads"]
        )


class TestServiceObservability:
    def test_query_spans_nest_under_batch(self):
        store, __, __b, __d = _bulk_load()
        with tracing() as tracer:
            engine = QueryEngine(store, num_workers=2, num_shards=2)
            try:
                batch = engine.execute_batch(
                    [PointQuery((3, 5)), RangeSumQuery((0, 0), (15, 15))]
                )
            finally:
                engine.close()
        assert all(result.ok for result in batch.results)
        spans = {span.name: span for span in tracer.spans()}
        assert "batch" in spans and "batch.plan" in spans
        batch_id = spans["batch"].span_id
        queries = [s for s in tracer.spans() if s.name == "query"]
        assert len(queries) == 2
        # Worker threads attached to the batch span explicitly.
        assert all(q.parent_id == batch_id for q in queries)
        assert all(q.attrs["status"] == "ok" for q in queries)
        assert all("admission_wait_s" in q.attrs for q in queries)

    def test_engine_snapshot_reports_gauges(self):
        store, __, __b, __d = _bulk_load()
        engine = QueryEngine(store, num_workers=2, num_shards=2)
        try:
            engine.run(PointQuery((1, 1)))
            snap = engine.snapshot()
        finally:
            engine.close()
        gauges = snap["gauges"]
        assert gauges["pool_resident_blocks"] >= 0
        assert gauges["pool_dirty_blocks"] >= 0
        assert gauges["pool_pinned_blocks"] == 0
        assert gauges["admission_queue_depth"] == 0
        assert gauges["pool_resident_blocks"] == engine.pool.resident

    def test_plan_cache_stats_shape(self):
        stats = plan_cache_stats()
        assert set(stats) >= {
            "standard_plans", "nonstandard_plans", "enabled",
        }
        for cache in ("standard_plans", "nonstandard_plans"):
            info = stats[cache]
            assert {"hits", "misses", "size", "capacity", "builds",
                    "build_seconds"} <= set(info)
        assert set(stats["enabled"]) == {"plans"}

    def test_zero_io_is_fresh(self):
        first = zero_io()
        first["block_reads"] = 9
        assert zero_io()["block_reads"] == 0
