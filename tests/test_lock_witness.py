"""Runtime lock-order witness vs the static graph.

The static lock-order graph leans on ``# may-acquire:`` declarations
where dispatch is dynamic (the ``getattr``-probed group-commit path);
a wrong declaration would silently hole the deadlock check.  These
tests drive the real concurrent engine — plain and journaled, with
tracing on — under instrumented locks and assert every *observed*
acquisition order is explained by the static graph.
"""

import threading

import numpy as np
import pytest

from repro.analysis.engine import run_analysis
from repro.analysis.witness import (
    DEFAULT_ALIASES,
    InstrumentedLock,
    LockWitness,
    check_consistency,
    instrument_engine,
    instrument_plan_caches,
    instrument_tracer,
)
from repro.obs.tracer import tracing
from repro.service.engine import QueryEngine
from repro.service.replay import build_store, build_workload
from repro.storage.journal import JournaledDevice


def _static_graph():
    return run_analysis().data["lock_graph"]


def _drive(engine, store, queries):
    for position, value in {(1, 2): 3.5, (30, 17): -2.25}.items():
        store.write_point(position, value)
    batch = engine.execute_batch(queries)
    singles = [engine.run(query) for query in queries[:6]]
    return batch, singles


class TestWitnessMechanics:
    def test_instrumented_lock_still_excludes(self):
        witness = LockWitness()
        lock = InstrumentedLock(witness, "T.lock")
        counter = {"n": 0}

        def bump():
            for __ in range(2000):
                with lock:
                    counter["n"] += 1

        threads = [threading.Thread(target=bump) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["n"] == 8000

    def test_nesting_is_recorded_per_thread(self):
        witness = LockWitness()
        outer = InstrumentedLock(witness, "A")
        inner = InstrumentedLock(witness, "B")
        with outer:
            with inner:
                pass
        with inner:
            pass  # no edge: nothing held
        assert witness.edges() == {("A", "B"): 1}

    def test_inconsistent_edge_is_reported(self):
        graph = {"nodes": ["A", "B"], "edges": [{"from": "A", "to": "B"}]}
        assert check_consistency([("A", "B")], graph) == []
        assert check_consistency([("B", "A")], graph) == [("B", "A")]

    def test_aliases_resolve_before_checking(self):
        graph = {"nodes": ["A", "B"], "edges": [{"from": "A", "to": "B"}]}
        aliases = {"A-runtime": ("A",)}
        assert (
            check_consistency([("A-runtime", "B")], graph, aliases=aliases)
            == []
        )

    def test_transitive_orders_are_consistent(self):
        graph = {
            "nodes": ["A", "B", "C"],
            "edges": [{"from": "A", "to": "B"}, {"from": "B", "to": "C"}],
        }
        # observed A->C directly: explained by reachability
        assert check_consistency([("A", "C")], graph) == []


class TestWitnessAgainstEngine:
    @pytest.fixture(scope="class")
    def static_graph(self):
        return _static_graph()

    def _run_engine(self, wrap=None):
        store, data = build_store(
            shape=(32, 32), block_edge=4, pool_capacity=16, seed=5
        )
        if wrap is not None:
            store.tile_store.wrap_device(wrap)
        queries = build_workload(
            store.shape, points=12, range_sums=6, regions=6, seed=3
        )
        witness = LockWitness()
        instrument_plan_caches(witness)
        with tracing() as tracer:
            instrument_tracer(tracer, witness)
            engine = QueryEngine(
                store,
                num_workers=8,
                queue_depth=256,
                num_shards=4,
                pool_capacity=16,
            )
            instrument_engine(engine, witness)
            batch, singles = _drive(engine, store, queries)
            engine.close()
        assert all(r.ok for r in batch.results)
        assert all(r.ok for r in singles)
        return witness

    def test_plain_engine_orders_match_static_graph(self, static_graph):
        witness = self._run_engine()
        observed = witness.edges()
        assert observed  # the run exercised nested locking
        assert (
            check_consistency(observed, static_graph, aliases=DEFAULT_ALIASES)
            == []
        )

    def test_journaled_flush_orders_match_static_graph(self, static_graph):
        """The group-commit path: shard lock -> synchronized-device
        lock -> tracer locks, reached through ``getattr`` probing the
        static analysis cannot follow.  This is exactly what the
        ``# may-acquire:`` declarations claim — verify reality agrees.
        """
        witness = self._run_engine(wrap=JournaledDevice)
        observed = witness.edges()
        io_name = "ShardedBufferPool._io_lock"
        assert ("ShardedBufferPool._locks", io_name) in observed
        # the journaled group commit opens spans under the I/O lock
        assert ("ShardedBufferPool._locks", "TraceStore._lock") in observed
        assert (
            check_consistency(observed, static_graph, aliases=DEFAULT_ALIASES)
            == []
        )

    def test_witness_would_catch_a_missing_static_edge(self, static_graph):
        """Negative control: remove the may-acquire-declared edge from
        the graph and the journaled run's observations must fail."""
        witness = self._run_engine(wrap=JournaledDevice)
        io_aliases = set(DEFAULT_ALIASES["ShardedBufferPool._io_lock"]) | {
            "ShardedBufferPool._io_lock"
        }
        pruned = {
            "nodes": static_graph["nodes"],
            "edges": [
                e
                for e in static_graph["edges"]
                if not (
                    e["from"] == "ShardedBufferPool._locks"
                    and e["to"] in io_aliases
                )
            ],
        }
        bad = check_consistency(
            witness.edges(), pruned, aliases=DEFAULT_ALIASES
        )
        assert bad  # the hole is visible to the witness
