"""Tests for padding helpers and query-workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.workloads import point_workload, range_workload
from repro.util.padding import crop_to_shape, next_power_of_two, pad_to_pow2


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_is_smallest(self, value):
        result = next_power_of_two(value)
        assert result >= value
        assert result & (result - 1) == 0
        assert result // 2 < value


class TestPadding:
    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3)
    )
    @settings(max_examples=30)
    def test_roundtrip(self, shape):
        data = np.random.default_rng(0).normal(size=tuple(shape))
        padded, original = pad_to_pow2(data)
        assert all(
            extent & (extent - 1) == 0 for extent in padded.shape
        )
        assert np.allclose(crop_to_shape(padded, original), data)

    def test_padding_is_zeros(self):
        data = np.ones((3, 5))
        padded, __ = pad_to_pow2(data)
        assert padded.shape == (4, 8)
        assert padded.sum() == 15.0  # only the original cells

    def test_already_pow2_is_a_copy(self):
        data = np.ones((4, 8))
        padded, shape = pad_to_pow2(data)
        padded[0, 0] = 99.0
        assert data[0, 0] == 1.0
        assert shape == (4, 8)

    def test_padded_data_transforms_losslessly(self):
        """The intended pipeline: pad, transform, query, crop."""
        from repro.core.standard_ops import apply_chunk_standard
        from repro.reconstruct.region import reconstruct_box_standard
        from repro.storage.dense import DenseStandardStore

        data = np.random.default_rng(1).normal(size=(6, 11))
        padded, original = pad_to_pow2(data)
        store = DenseStandardStore(padded.shape)
        apply_chunk_standard(store, padded, (0, 0))
        recovered = crop_to_shape(
            reconstruct_box_standard(
                store, (0, 0), padded.shape
            ),
            original,
        )
        assert np.allclose(recovered, data)

    def test_crop_validation(self):
        with pytest.raises(ValueError):
            crop_to_shape(np.zeros((4, 4)), (8, 4))
        with pytest.raises(ValueError):
            crop_to_shape(np.zeros((4, 4)), (4,))


class TestWorkloads:
    def test_point_workload_uniform(self):
        points = list(point_workload((16, 8), 50, seed=1))
        assert len(points) == 50
        assert all(0 <= x < 16 and 0 <= y < 8 for x, y in points)

    def test_point_workload_skew_concentrates(self):
        uniform = list(point_workload((256,), 500, skew=0.0, seed=2))
        skewed = list(point_workload((256,), 500, skew=8.0, seed=2))
        assert np.std([p[0] for p in skewed]) < np.std(
            [p[0] for p in uniform]
        )

    def test_range_workload_bounds_and_selectivity(self):
        boxes = list(range_workload((64, 64), 100, selectivity=0.25, seed=3))
        assert len(boxes) == 100
        widths = []
        for lows, highs in boxes:
            for low, high, extent in zip(lows, highs, (64, 64)):
                assert 0 <= low <= high < extent
                widths.append(high - low + 1)
        assert 8 <= np.mean(widths) <= 32  # around 0.25 * 64

    def test_workloads_are_reproducible(self):
        first = list(range_workload((32,), 10, seed=7))
        second = list(range_workload((32,), 10, seed=7))
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            list(point_workload((8,), -1))
        with pytest.raises(ValueError):
            list(point_workload((8,), 1, skew=-1))
        with pytest.raises(ValueError):
            list(range_workload((8,), 1, selectivity=0.0))
