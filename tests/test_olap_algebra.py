"""Tests for wavelet-domain OLAP algebra (roll-up, slice, dice)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_ops import apply_chunk_standard
from repro.olap.algebra import (
    dice_transform_standard,
    rollup_sum_standard,
    slice_standard,
)
from repro.storage.dense import DenseStandardStore
from repro.storage.tiled import TiledStandardStore
from repro.wavelet.standard import standard_dwt, standard_idwt


def _loaded(shape, seed=0):
    data = np.random.default_rng(seed).normal(size=shape)
    store = DenseStandardStore(shape)
    apply_chunk_standard(store, data, (0,) * len(shape))
    return data, store


class TestRollUp:
    @given(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_rollup_equals_transform_of_summed_data(self, axis, seed):
        data, store = _loaded((8, 16, 4), seed=seed % 50)
        rolled = rollup_sum_standard(store, axis)
        expected = standard_dwt(data.sum(axis=axis))
        assert np.allclose(rolled, expected)

    def test_rollup_io_is_one_hyperplane(self):
        data, store = _loaded((16, 16))
        store.stats.reset()
        rollup_sum_standard(store, 0)
        assert store.stats.coefficient_reads == 16

    def test_rollup_composes(self):
        """Rolling up twice equals summing two axes."""
        data, store = _loaded((8, 8, 8))
        once = rollup_sum_standard(store, 2)
        derived = DenseStandardStore((8, 8))
        derived.set_region(
            [np.arange(8), np.arange(8)], once
        )
        twice = rollup_sum_standard(derived, 1)
        assert np.allclose(
            twice, standard_dwt(data.sum(axis=2).sum(axis=1))
        )

    def test_validation(self):
        __, store = _loaded((8, 8))
        with pytest.raises(ValueError):
            rollup_sum_standard(store, 2)
        one_d = DenseStandardStore((8,))
        with pytest.raises(ValueError):
            rollup_sum_standard(one_d, 0)


class TestSlice:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_slice_equals_transform_of_sliced_data(self, position, seed):
        data, store = _loaded((16, 8), seed=seed % 50)
        sliced = slice_standard(store, 0, position)
        expected = standard_dwt(data[position, :])
        assert np.allclose(sliced, expected)

    def test_slice_middle_axis(self):
        data, store = _loaded((4, 8, 4))
        sliced = slice_standard(store, 1, 5)
        assert np.allclose(sliced, standard_dwt(data[:, 5, :]))

    def test_slice_io_is_logarithmic_hyperplanes(self):
        data, store = _loaded((16, 16))
        store.stats.reset()
        slice_standard(store, 0, 7)
        assert store.stats.coefficient_reads == (4 + 1) * 16

    def test_validation(self):
        __, store = _loaded((8, 8))
        with pytest.raises(ValueError):
            slice_standard(store, 3, 0)
        one_d = DenseStandardStore((8,))
        with pytest.raises(ValueError):
            slice_standard(one_d, 0, 0)


class TestDice:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_dice_is_the_regions_own_transform(self, seed):
        rng = np.random.default_rng(seed)
        data, store = _loaded((16, 32), seed=seed % 50)
        corner = (int(rng.integers(0, 4)) * 4, int(rng.integers(0, 4)) * 8)
        diced = dice_transform_standard(store, corner, (4, 8))
        expected = standard_dwt(
            data[corner[0] : corner[0] + 4, corner[1] : corner[1] + 8]
        )
        assert np.allclose(diced, expected)

    def test_dice_then_invert_matches_extract(self):
        from repro.core.standard_ops import extract_region_standard

        data, store = _loaded((16, 16))
        diced = dice_transform_standard(store, (8, 0), (8, 8))
        assert np.allclose(
            standard_idwt(diced),
            extract_region_standard(store, (8, 0), (8, 8)),
        )

    def test_dice_result_is_restorable(self):
        """A diced transform can seed a new store — wavelet-domain
        data movement end to end."""
        data, store = _loaded((16, 16))
        diced = dice_transform_standard(store, (0, 8), (8, 8))
        small = TiledStandardStore((8, 8), block_edge=4, pool_capacity=8)
        apply_chunk_standard(
            small, diced, (0, 0), chunk_is_transformed=True
        )
        assert np.allclose(small.to_array(), standard_dwt(data[0:8, 8:16]))

    def test_misaligned_rejected(self):
        __, store = _loaded((16, 16))
        with pytest.raises(ValueError):
            dice_transform_standard(store, (2, 0), (4, 4))
