"""Tests for batch updates (Example 2): SHIFT-SPLIT vs naive per-cell."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.core.standard_ops import apply_chunk_standard
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.update.batch import (
    batch_update_nonstandard,
    batch_update_standard,
    naive_update_standard,
)
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt


def _loaded(shape, seed=0):
    data = np.random.default_rng(seed).normal(size=shape)
    store = DenseStandardStore(shape)
    apply_chunk_standard(store, data, (0,) * len(shape))
    return data, store


class TestBatchUpdateStandard:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_matches_retransform(self, seed):
        rng = np.random.default_rng(seed)
        data, store = _loaded((16, 32), seed=seed % 97)
        deltas = rng.normal(size=(4, 8))
        corner = (
            int(rng.integers(0, 4)) * 4,
            int(rng.integers(0, 4)) * 8,
        )
        batch_update_standard(store, deltas, corner)
        updated = data.copy()
        updated[
            corner[0] : corner[0] + 4, corner[1] : corner[1] + 8
        ] += deltas
        assert np.allclose(store.to_array(), standard_dwt(updated))

    def test_naive_produces_the_same_transform(self):
        rng = np.random.default_rng(1)
        data, via_shift_split = _loaded((16, 16))
        __, via_naive = _loaded((16, 16))
        deltas = rng.normal(size=(4, 4))
        batch_update_standard(via_shift_split, deltas, (8, 4))
        naive_update_standard(via_naive, deltas, (8, 4))
        assert np.allclose(
            via_shift_split.to_array(), via_naive.to_array()
        )

    def test_shift_split_is_cheaper_than_naive(self):
        """Example 2's point: O(M̃ + log(N/M̃)) vs O(M̃ log N) per axis."""
        rng = np.random.default_rng(2)
        __, batched = _loaded((64, 64))
        __, naive = _loaded((64, 64))
        deltas = rng.normal(size=(16, 16))
        batched.stats.reset()
        naive.stats.reset()
        batch_update_standard(batched, deltas, (16, 32))
        naive_update_standard(naive, deltas, (16, 32))
        assert (
            batched.stats.coefficient_ios < naive.stats.coefficient_ios / 5
        )

    def test_misaligned_corner_rejected(self):
        __, store = _loaded((16, 16))
        with pytest.raises(ValueError):
            batch_update_standard(store, np.ones((4, 4)), (2, 0))

    def test_zero_cells_skipped_by_naive(self):
        __, store = _loaded((16, 16))
        store.stats.reset()
        naive_update_standard(store, np.zeros((4, 4)), (0, 0))
        assert store.stats.coefficient_ios == 0


class TestBatchUpdateNonStandard:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_matches_retransform(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(16, 16))
        store = DenseNonStandardStore(16, 2)
        apply_chunk_nonstandard(store, data, (0, 0))
        deltas = rng.normal(size=(4, 4))
        corner = (
            int(rng.integers(0, 4)) * 4,
            int(rng.integers(0, 4)) * 4,
        )
        batch_update_nonstandard(store, deltas, corner)
        updated = data.copy()
        updated[
            corner[0] : corner[0] + 4, corner[1] : corner[1] + 4
        ] += deltas
        assert np.allclose(store.to_array(), nonstandard_dwt(updated))

    def test_non_cubic_rejected(self):
        store = DenseNonStandardStore(16, 2)
        with pytest.raises(ValueError):
            batch_update_nonstandard(store, np.ones((4, 8)), (0, 0))

    def test_misaligned_rejected(self):
        store = DenseNonStandardStore(16, 2)
        with pytest.raises(ValueError):
            batch_update_nonstandard(store, np.ones((4, 4)), (0, 2))
