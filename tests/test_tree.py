"""Unit tests for wavelet-tree navigation (Lemma 1 and the crest)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelet.haar1d import haar_dwt
from repro.wavelet.layout import SCALING_INDEX, index_to_detail
from repro.wavelet.tree import WaveletTree


class TestStructure:
    def test_parent_child_inverse(self):
        tree = WaveletTree(32)
        for index in range(1, 32):
            for child in tree.children(index):
                assert tree.parent(child) == index

    def test_root_chain(self):
        tree = WaveletTree(16)
        root_detail = 1  # w_{4,0}
        assert tree.parent(root_detail) == SCALING_INDEX
        assert tree.children(SCALING_INDEX) == (root_detail,)

    def test_scaling_has_no_parent(self):
        with pytest.raises(ValueError):
            WaveletTree(8).parent(SCALING_INDEX)

    def test_leaves_have_no_children(self):
        tree = WaveletTree(8)
        for index in range(4, 8):  # level-1 details
            assert tree.children(index) == ()

    def test_descendant_count(self):
        tree = WaveletTree(16)
        assert tree.descendant_count(SCALING_INDEX) == 15
        assert tree.descendant_count(1) == 15  # w_{4,0}: whole detail tree
        assert tree.descendant_count(2) == 7  # w_{3,0}
        assert tree.descendant_count(8) == 1  # a leaf


class TestRootPath:
    @given(st.integers(min_value=1, max_value=9), st.data())
    @settings(max_examples=40)
    def test_lemma_1_path_length(self, n, data):
        """Lemma 1: any value needs exactly n + 1 coefficients."""
        size = 1 << n
        position = data.draw(st.integers(min_value=0, max_value=size - 1))
        tree = WaveletTree(size)
        path = tree.root_path(position)
        assert len(path) == n + 1
        assert path[0] == SCALING_INDEX
        # Every detail on the path covers the position.
        for index in path[1:]:
            level, k = index_to_detail(n, index)
            assert k == position >> level

    @given(st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=40)
    def test_path_reconstructs_value(self, n, data):
        size = 1 << n
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        vector = rng.normal(size=size)
        position = data.draw(st.integers(min_value=0, max_value=size - 1))
        tree = WaveletTree(size)
        transform = haar_dwt(vector)
        value = sum(
            sign * transform[index]
            for sign, index in zip(
                tree.reconstruction_signs(position), tree.root_path(position)
            )
        )
        assert np.isclose(value, vector[position])

    def test_position_bounds_checked(self):
        tree = WaveletTree(8)
        with pytest.raises(ValueError):
            tree.root_path(8)
        with pytest.raises(ValueError):
            tree.reconstruction_signs(-1)


class TestCrest:
    def test_crest_is_the_open_path(self):
        tree = WaveletTree(16)
        crest = tree.crest(5)
        # Covering details of position 5 at levels 4..1.
        assert crest == [1, 2, 5, 10]

    def test_crest_coefficients_depend_on_future(self):
        """Every crest coefficient's support extends past the position."""
        tree = WaveletTree(32)
        for position in [0, 7, 19, 31]:
            for index in tree.crest(position):
                level, k = index_to_detail(5, index)
                support_end = (k + 1) << level
                assert support_end > position


class TestSubtree:
    def test_full_subtree(self):
        tree = WaveletTree(16)
        nodes = list(tree.subtree(2))  # w_{3,0}
        assert len(nodes) == 7

    def test_height_limited_subtree(self):
        tree = WaveletTree(16)
        assert list(tree.subtree(2, height=1)) == [2]
        assert len(list(tree.subtree(2, height=2))) == 3

    def test_invalid_height_rejected(self):
        with pytest.raises(ValueError):
            list(WaveletTree(8).subtree(1, height=0))
