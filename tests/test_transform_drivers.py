"""Tests for the bulk transformation drivers (Section 5.1, Results 1-2)
and the Vitter et al. baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.vitter import vitter_io_cost, vitter_transform_standard
from repro.util.bits import ilog2
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt


class TestStandardDriver:
    @given(
        st.sampled_from([(16,), (16, 8), (8, 8, 8)]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_direct_transform(self, shape, seed):
        data = np.random.default_rng(seed).normal(size=shape)
        store = DenseStandardStore(shape)
        chunk = tuple(max(2, extent // 4) for extent in shape)
        report = transform_standard_chunked(store, data, chunk)
        assert np.allclose(store.to_array(), standard_dwt(data))
        assert report.chunks == int(
            np.prod([n // m for n, m in zip(shape, chunk)])
        )
        assert report.source_reads == int(np.prod(shape))

    def test_callable_source(self):
        data = np.random.default_rng(1).normal(size=(16, 16))

        def source(grid_position):
            gx, gy = grid_position
            return data[gx * 4 : (gx + 1) * 4, gy * 4 : (gy + 1) * 4]

        store = DenseStandardStore((16, 16))
        transform_standard_chunked(store, source, (4, 4))
        assert np.allclose(store.to_array(), standard_dwt(data))

    def test_io_cost_matches_result_1(self):
        """(N/M)^d (M + log(N/M))^d write-side coefficient touches; the
        SPLIT part is read-modify-write so reads add the split term."""
        shape, chunk = (64, 64), (8, 8)
        data = np.random.default_rng(2).normal(size=shape)
        store = DenseStandardStore(shape)
        report = transform_standard_chunked(store, data, chunk)
        chunks = (64 // 8) ** 2
        per_chunk_total = (8 + 3) ** 2
        assert store.stats.coefficient_writes == chunks * per_chunk_total
        assert report.coefficient_ios >= chunks * per_chunk_total

    def test_bad_order_rejected(self):
        store = DenseStandardStore((8,))
        with pytest.raises(ValueError):
            transform_standard_chunked(
                store, np.zeros(8), (4,), order="diagonal"
            )

    def test_tiled_store_and_dense_store_agree(self):
        data = np.random.default_rng(3).normal(size=(32, 32))
        dense = DenseStandardStore((32, 32))
        tiled = TiledStandardStore((32, 32), block_edge=4, pool_capacity=32)
        transform_standard_chunked(dense, data, (8, 8))
        transform_standard_chunked(tiled, data, (8, 8))
        assert np.allclose(dense.to_array(), tiled.to_array())


class TestNonStandardDriver:
    @given(
        st.sampled_from([(16, 1), (16, 2), (8, 3)]),
        st.sampled_from(["zorder", "rowmajor"]),
        st.booleans(),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_direct_transform(self, geometry, order, buffered, seed):
        size, ndim = geometry
        data = np.random.default_rng(seed).normal(size=(size,) * ndim)
        store = DenseNonStandardStore(size, ndim)
        transform_nonstandard_chunked(
            store, data, 4, order=order, buffer_crest=buffered
        )
        assert np.allclose(store.to_array(), nonstandard_dwt(data))

    def test_zorder_buffer_is_paper_bound(self):
        """With z-order, the crest never exceeds (2^d - 1) log(N/M)."""
        size, chunk, ndim = 64, 4, 2
        data = np.random.default_rng(4).normal(size=(size, size))
        store = DenseNonStandardStore(size, ndim)
        report = transform_nonstandard_chunked(
            store, data, chunk, order="zorder", buffer_crest=True
        )
        bound = ((1 << ndim) - 1) * (ilog2(size) - ilog2(chunk))
        assert report.max_buffer_coefficients <= bound

    def test_buffered_reaches_optimal_io(self):
        """Result 2 with z-order + buffer: store-side writes == N^d."""
        size = 32
        data = np.random.default_rng(5).normal(size=(size, size))
        store = DenseNonStandardStore(size, 2)
        report = transform_nonstandard_chunked(
            store, data, 4, order="zorder", buffer_crest=True
        )
        assert store.stats.coefficient_writes == size * size
        assert store.stats.coefficient_reads == 0
        assert report.coefficient_ios == 2 * size * size

    def test_unbuffered_pays_split_io(self):
        size = 32
        data = np.random.default_rng(6).normal(size=(size, size))
        buffered = DenseNonStandardStore(size, 2)
        unbuffered = DenseNonStandardStore(size, 2)
        transform_nonstandard_chunked(
            buffered, data, 4, buffer_crest=True
        )
        transform_nonstandard_chunked(
            unbuffered, data, 4, order="rowmajor", buffer_crest=False
        )
        assert (
            unbuffered.stats.coefficient_ios
            > buffered.stats.coefficient_ios
        )

    def test_tiled_nonstandard_agrees(self):
        data = np.random.default_rng(7).normal(size=(16, 16))
        tiled = TiledNonStandardStore(16, 2, block_edge=4, pool_capacity=16)
        transform_nonstandard_chunked(tiled, data, 4)
        assert np.allclose(tiled.to_array(), nonstandard_dwt(data))


class TestVitterBaseline:
    def test_produces_the_standard_transform(self):
        data = np.random.default_rng(8).normal(size=(16, 8))
        report = vitter_transform_standard(data)
        assert np.allclose(report.extras["transform"], standard_dwt(data))

    def test_measured_cost_matches_closed_form(self):
        data = np.random.default_rng(9).normal(size=(16, 16))
        report = vitter_transform_standard(data)
        assert report.store_stats.coefficient_ios == vitter_io_cost((16, 16))

    def test_cost_scales_as_n_log_n(self):
        small = vitter_io_cost((64, 64))
        large = vitter_io_cost((128, 128))
        # 4x the cells, 7/6 the levels: ratio between 4 and 5.
        assert 4.0 < large / small < 5.0

    def test_cost_is_memory_independent(self):
        """The baseline takes no memory parameter at all — Figure 11's
        flat line is structural."""
        assert vitter_io_cost((32, 32)) == vitter_io_cost((32, 32))
