"""Tests for the dense, tiled and naive coefficient stores: interface
equivalence, I/O-counting semantics, persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.core.standard_ops import apply_chunk_standard
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.naive import NaiveBlockedStandardStore
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt


class TestDenseStandardCounting:
    def test_set_counts_writes_only(self):
        store = DenseStandardStore((8, 8))
        store.set_region(
            [np.arange(2), np.arange(3)], np.ones((2, 3))
        )
        assert store.stats.coefficient_writes == 6
        assert store.stats.coefficient_reads == 0

    def test_add_counts_read_modify_write(self):
        store = DenseStandardStore((8, 8))
        store.add_region([np.arange(2), np.arange(2)], np.ones((2, 2)))
        assert store.stats.coefficient_reads == 4
        assert store.stats.coefficient_writes == 4

    def test_read_counts_reads(self):
        store = DenseStandardStore((8, 8))
        store.read_region([np.arange(4), np.arange(4)])
        assert store.stats.coefficient_reads == 16

    def test_point_ops(self):
        store = DenseStandardStore((8,))
        store.write_point((3,), 2.0)
        store.add_point((3,), 1.0)
        assert store.read_point((3,)) == 3.0

    def test_rank_mismatch_rejected(self):
        store = DenseStandardStore((8, 8))
        with pytest.raises(ValueError):
            store.read_region([np.arange(2)])


class TestTiledStandardEquivalence:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_random_operation_sequences_match_dense(self, seed):
        rng = np.random.default_rng(seed)
        shape = (16, 8)
        dense = DenseStandardStore(shape)
        tiled = TiledStandardStore(shape, block_edge=4, pool_capacity=4)
        for __ in range(12):
            op = rng.integers(0, 3)
            axes = [
                np.unique(
                    rng.integers(0, extent, size=rng.integers(1, 5))
                )
                for extent in shape
            ]
            values = rng.normal(size=tuple(a.size for a in axes))
            if op == 0:
                dense.set_region(axes, values)
                tiled.set_region(axes, values)
            elif op == 1:
                dense.add_region(axes, values)
                tiled.add_region(axes, values)
            else:
                assert np.allclose(
                    dense.read_region(axes), tiled.read_region(axes)
                )
        assert np.allclose(dense.to_array(), tiled.to_array())

    def test_point_ops_roundtrip(self):
        tiled = TiledStandardStore((16, 16), block_edge=4)
        tiled.write_point((7, 9), 3.5)
        tiled.add_point((7, 9), 0.5)
        assert tiled.read_point((7, 9)) == 4.0

    def test_block_io_is_coarser_than_coefficients(self):
        """Writing a whole subtree region touches far fewer blocks
        than coefficients — the point of tiling."""
        tiled = TiledStandardStore((64,), block_edge=8, pool_capacity=8)
        indices = np.arange(32, 64)  # the leaf level: 32 coefficients
        tiled.set_region([indices], np.ones(32))
        tiled.flush()
        assert tiled.stats.block_writes <= 8

    def test_persistence_through_eviction(self):
        tiled = TiledStandardStore((64,), block_edge=4, pool_capacity=1)
        data = np.random.default_rng(3).normal(size=64)
        hat = standard_dwt(data)
        for index in range(64):
            tiled.write_point((index,), float(hat[index]))
        tiled.flush()
        assert np.allclose(tiled.to_array(), hat)


class TestNaiveBlockedStore:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        shape = (16, 16)
        dense = DenseStandardStore(shape)
        naive = NaiveBlockedStandardStore(shape, block_edge=4)
        for __ in range(8):
            axes = [
                np.unique(rng.integers(0, 16, size=rng.integers(1, 6)))
                for __ in range(2)
            ]
            values = rng.normal(size=tuple(a.size for a in axes))
            dense.set_region(axes, values)
            naive.set_region(axes, values)
        assert np.allclose(dense.to_array(), naive.to_array())

    def test_transform_lands_correctly(self):
        data = np.random.default_rng(5).normal(size=(16, 16))
        naive = NaiveBlockedStandardStore((16, 16), block_edge=4)
        apply_chunk_standard(naive, data, (0, 0))
        naive.flush()
        assert np.allclose(naive.to_array(), standard_dwt(data))

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveBlockedStandardStore((8, 8), block_edge=16)


class TestTiledNonStandardEquivalence:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_chunked_loads_match_dense(self, seed):
        rng = np.random.default_rng(seed)
        size, chunk = 16, 4
        data = rng.normal(size=(size, size))
        dense = DenseNonStandardStore(size, 2)
        tiled = TiledNonStandardStore(size, 2, block_edge=2, pool_capacity=8)
        for position in np.ndindex(size // chunk, size // chunk):
            block = data[
                position[0] * chunk : (position[0] + 1) * chunk,
                position[1] * chunk : (position[1] + 1) * chunk,
            ]
            apply_chunk_nonstandard(dense, block, position)
            apply_chunk_nonstandard(tiled, block, position)
        tiled.flush()
        expected = nonstandard_dwt(data)
        assert np.allclose(dense.to_array(), expected)
        assert np.allclose(tiled.to_array(), expected)

    def test_detail_ops(self):
        tiled = TiledNonStandardStore(8, 2, block_edge=2)
        key = NonStandardKey(2, (1, 0), 3)
        tiled.set_detail(key, 2.0)
        tiled.add_detail(key, 1.0)
        assert tiled.read_detail(key) == 3.0

    def test_scaling_ops(self):
        tiled = TiledNonStandardStore(8, 2, block_edge=2)
        tiled.set_scaling(4.0)
        tiled.add_scaling(-1.0)
        assert tiled.read_scaling() == 3.0

    def test_read_details_region(self):
        tiled = TiledNonStandardStore(16, 2, block_edge=4)
        values = np.arange(6, dtype=np.float64).reshape(2, 3)
        tiled.set_details(2, 1, (1, 0), values)
        read = tiled.read_details(2, 1, (1, 0), (2, 3))
        assert np.allclose(read, values)
        # Unwritten regions read as zero.
        assert np.allclose(tiled.read_details(1, 2, (0, 0), (2, 2)), 0.0)


class TestDuplicateIndexGuard:
    def test_dense_rejects_duplicates(self):
        store = DenseStandardStore((8, 8))
        with pytest.raises(ValueError):
            store.add_region(
                [np.asarray([1, 1]), np.arange(2)], np.ones((2, 2))
            )

    def test_tiled_rejects_duplicates_when_enabled(self):
        store = TiledStandardStore((8, 8), block_edge=2, validate_regions=True)
        with pytest.raises(ValueError):
            store.set_region(
                [np.asarray([3, 3]), np.arange(2)], np.ones((2, 2))
            )

    def test_tiled_per_call_validate_overrides_default(self):
        store = TiledStandardStore((8, 8), block_edge=2)
        with pytest.raises(ValueError):
            store.set_region(
                [np.asarray([3, 3]), np.arange(2)],
                np.ones((2, 2)),
                validate=True,
            )

    def test_tiled_validation_defaults_off(self):
        # Plan-driven traffic is duplicate-free by construction, so the
        # per-call np.unique check is opt-in; duplicated rows collapse
        # silently (last write wins) when it is off.
        store = TiledStandardStore((8, 8), block_edge=2)
        store.set_region(
            [np.asarray([3, 3]), np.arange(2)], np.ones((2, 2))
        )

    def test_tiled_validation_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_REGIONS", "1")
        store = TiledStandardStore((8, 8), block_edge=2)
        with pytest.raises(ValueError):
            store.set_region(
                [np.asarray([3, 3]), np.arange(2)], np.ones((2, 2))
            )

    def test_naive_rejects_duplicates(self):
        store = NaiveBlockedStandardStore((8, 8), block_edge=2)
        with pytest.raises(ValueError):
            store.read_region([np.asarray([0, 0]), np.arange(2)])
