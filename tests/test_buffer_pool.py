"""Unit tests for the write-back LRU buffer pool."""

import numpy as np
import pytest

from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool


def _make(capacity=2, slots=2):
    device = BlockDevice(slots)
    pool = BufferPool(device, capacity)
    return device, pool


class TestCaching:
    def test_repeat_get_hits_cache(self):
        device, pool = _make()
        block = device.allocate()
        device.write_block(block, np.array([1.0, 2.0]))
        device.stats.reset()
        pool.get(block)
        pool.get(block)
        assert device.stats.block_reads == 1
        assert device.stats.cache_hits == 1

    def test_lru_eviction_order(self):
        device, pool = _make(capacity=2)
        blocks = [device.allocate() for __ in range(3)]
        for block in blocks:
            device.write_block(block, np.full(2, float(block)))
        device.stats.reset()
        pool.get(blocks[0])
        pool.get(blocks[1])
        pool.get(blocks[0])  # refresh 0 so 1 is the LRU victim
        pool.get(blocks[2])  # evicts 1
        pool.get(blocks[0])  # still resident: hit
        assert device.stats.block_reads == 3
        pool.get(blocks[1])  # must be re-read
        assert device.stats.block_reads == 4

    def test_clean_eviction_skips_writeback(self):
        device, pool = _make(capacity=1)
        first = device.allocate()
        second = device.allocate()
        device.write_block(first, np.zeros(2))
        device.write_block(second, np.zeros(2))
        device.stats.reset()
        pool.get(first)
        pool.get(second)  # evicts clean `first`
        assert device.stats.block_writes == 0


class TestWriteBack:
    def test_dirty_eviction_writes_back(self):
        device, pool = _make(capacity=1)
        first = device.allocate()
        second = device.allocate()
        data = pool.get(first, for_write=True)
        data[:] = [7.0, 8.0]
        pool.get(second)  # evicts dirty `first`
        assert np.array_equal(device.read_block(first), [7.0, 8.0])

    def test_flush_writes_dirty_blocks_once(self):
        device, pool = _make()
        block = device.allocate()
        data = pool.get(block, for_write=True)
        data[0] = 5.0
        device.stats.reset()
        pool.flush()
        pool.flush()  # second flush: nothing dirty
        assert device.stats.block_writes == 1
        assert device.read_block(block)[0] == 5.0

    def test_flush_single_block(self):
        device, pool = _make()
        a = device.allocate()
        b = device.allocate()
        pool.get(a, for_write=True)[0] = 1.0
        pool.get(b, for_write=True)[0] = 2.0
        device.stats.reset()
        pool.flush(a)
        assert device.stats.block_writes == 1

    def test_mark_dirty_after_plain_get(self):
        device, pool = _make()
        block = device.allocate()
        data = pool.get(block)
        data[1] = 9.0
        pool.mark_dirty(block)
        pool.flush()
        assert device.read_block(block)[1] == 9.0

    def test_mark_dirty_requires_residency(self):
        device, pool = _make()
        block = device.allocate()
        with pytest.raises(KeyError):
            pool.mark_dirty(block)

    def test_drop_all_flushes_and_clears(self):
        device, pool = _make()
        block = device.allocate()
        pool.get(block, for_write=True)[0] = 3.0
        pool.drop_all()
        assert pool.resident == 0
        assert device.read_block(block)[0] == 3.0


class TestCreate:
    def test_create_charges_no_read(self):
        device, pool = _make()
        block = device.allocate()
        device.stats.reset()
        data = pool.create(block)
        assert device.stats.block_reads == 0
        assert np.array_equal(data, np.zeros(2))

    def test_create_is_dirty(self):
        device, pool = _make(capacity=1)
        first = device.allocate()
        second = device.allocate()
        data = pool.create(first)
        data[0] = 4.0
        pool.get(second)  # evict
        assert device.read_block(first)[0] == 4.0

    def test_create_rejects_resident_block(self):
        device, pool = _make()
        block = device.allocate()
        pool.create(block)
        with pytest.raises(KeyError):
            pool.create(block)


class TestMissAccounting:
    def test_fault_counts_a_cache_miss(self):
        device, pool = _make()
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        device.stats.reset()
        pool.get(block)
        pool.get(block)
        assert device.stats.cache_misses == 1
        assert device.stats.cache_hits == 1
        assert pool.misses == 1 and pool.hits == 1

    def test_hit_rate_property(self):
        device, pool = _make()
        assert device.stats.hit_rate == 0.0  # no lookups yet
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        device.stats.reset()
        pool.get(block)  # miss
        pool.get(block)  # hit
        pool.get(block)  # hit
        assert device.stats.hit_rate == pytest.approx(2 / 3)
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_misses_survive_snapshot_and_delta(self):
        device, pool = _make()
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        device.stats.reset()
        before = device.stats.snapshot()
        pool.get(block)
        delta = device.stats.delta_since(before)
        assert delta.cache_misses == 1
        assert before.cache_misses == 0

    def test_create_is_not_a_miss(self):
        device, pool = _make()
        block = device.allocate()
        device.stats.reset()
        pool.create(block)
        assert device.stats.cache_misses == 0

    def test_eviction_counter(self):
        device, pool = _make(capacity=1)
        blocks = [device.allocate() for __ in range(3)]
        for block in blocks:
            device.write_block(block, np.zeros(2))
        for block in blocks:
            pool.get(block)
        assert pool.evictions == 2


class TestForWriteHitRegression:
    """A hit via ``for_write=True`` must refresh LRU order *and* mark
    the frame dirty (ISSUE satellite audit)."""

    def test_for_write_hit_refreshes_lru_order(self):
        device, pool = _make(capacity=2)
        a, b, c = (device.allocate() for __ in range(3))
        for block in (a, b, c):
            device.write_block(block, np.zeros(2))
        device.stats.reset()
        pool.get(a)
        pool.get(b)
        pool.get(a, for_write=True)  # hit: must move `a` to MRU
        pool.get(c)  # evicts `b`, not the refreshed `a`
        reads_before = device.stats.block_reads
        pool.get(a)  # still resident
        assert device.stats.block_reads == reads_before
        pool.get(b)  # was evicted, must re-read
        assert device.stats.block_reads == reads_before + 1

    def test_for_write_hit_marks_dirty(self):
        device, pool = _make(capacity=2)
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        pool.get(block)  # resident and clean
        data = pool.get(block, for_write=True)  # hit: must set dirty
        data[0] = 11.0
        pool.flush()
        assert device.read_block(block)[0] == 11.0


class TestEdgeCases:
    def test_dirty_created_block_written_back_exactly_once(self):
        device, pool = _make(capacity=1)
        first = device.allocate()
        second = device.allocate()
        data = pool.create(first)
        data[:] = [6.0, 7.0]
        device.stats.reset()
        pool.get(second)  # evicts the dirty created block
        assert device.stats.block_writes == 1
        assert np.array_equal(device.read_block(first), [6.0, 7.0])
        # A later flush has nothing left to write for it.
        pool.flush()
        assert device.stats.block_writes == 1

    def test_flush_of_non_resident_block_is_noop(self):
        device, pool = _make()
        block = device.allocate()
        device.stats.reset()
        pool.flush(block)  # never resident: no error, no I/O
        assert device.stats.block_writes == 0

    def test_capacity_one_thrashing_reads_back_correctly(self):
        device, pool = _make(capacity=1)
        blocks = [device.allocate() for __ in range(3)]
        for round_value in range(3):
            for block in blocks:
                data = pool.get(block, for_write=True)
                data[0] = block * 10.0 + round_value
        pool.flush()
        for block in blocks:
            assert device.read_block(block)[0] == block * 10.0 + 2


class TestPinning:
    def test_pinned_block_is_not_evicted(self):
        device, pool = _make(capacity=1)
        first = device.allocate()
        second = device.allocate()
        device.write_block(first, np.full(2, 1.0))
        device.write_block(second, np.full(2, 2.0))
        pool.get(first, pin=True)
        pool.get(second)  # cannot evict pinned `first`: overflows
        assert pool.resident == 2
        pool.unpin(first)  # overflow shrinks once the pin drops
        assert pool.resident == 1

    def test_pin_requires_residency(self):
        device, pool = _make()
        block = device.allocate()
        with pytest.raises(KeyError):
            pool.pin(block)

    def test_unpin_unpinned_raises(self):
        device, pool = _make()
        block = device.allocate()
        pool.get(block)
        with pytest.raises(ValueError):
            pool.unpin(block)

    def test_pinned_count(self):
        device, pool = _make()
        a = device.allocate()
        b = device.allocate()
        pool.get(a, pin=True)
        pool.get(b)
        assert pool.pinned == 1


class TestValidation:
    def test_capacity_must_be_positive(self):
        device = BlockDevice(2)
        with pytest.raises(ValueError):
            BufferPool(device, 0)
