"""Unit tests for the top-K coefficient tracker."""

from repro.streams.topk import TopKTracker


class TestRetention:
    def test_keeps_largest_by_significance(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 1.0, norm=1.0)
        tracker.offer("b", 5.0, norm=1.0)
        tracker.offer("c", 3.0, norm=1.0)
        assert set(tracker.items()) == {"b", "c"}

    def test_norm_weights_the_ranking(self):
        tracker = TopKTracker(1)
        tracker.offer("small_value_big_norm", 1.0, norm=10.0)
        tracker.offer("big_value_small_norm", 5.0, norm=1.0)
        assert set(tracker.items()) == {"small_value_big_norm"}

    def test_sign_is_ignored_for_ranking_but_value_kept(self):
        tracker = TopKTracker(1)
        tracker.offer("neg", -9.0)
        tracker.offer("pos", 2.0)
        assert tracker.items() == {"neg": -9.0}

    def test_k_zero_keeps_nothing(self):
        tracker = TopKTracker(0)
        assert not tracker.offer("x", 100.0)
        assert tracker.items() == {}

    def test_under_capacity_keeps_everything(self):
        tracker = TopKTracker(10)
        for index in range(5):
            tracker.offer(index, float(index))
        assert len(tracker) == 5


class TestOrderingAndStats:
    def test_ordered_is_descending(self):
        tracker = TopKTracker(3)
        for key, value in [("a", 2.0), ("b", 9.0), ("c", 4.0)]:
            tracker.offer(key, value)
        keys = [key for key, __, __ in tracker.ordered()]
        assert keys == ["b", "c", "a"]

    def test_threshold(self):
        tracker = TopKTracker(2)
        assert tracker.threshold() == 0.0
        tracker.offer("a", 3.0)
        assert tracker.threshold() == 0.0  # not yet full
        tracker.offer("b", 5.0)
        assert tracker.threshold() == 3.0

    def test_first_arrival_wins_ties(self):
        tracker = TopKTracker(1)
        assert tracker.offer("first", 2.0)
        assert not tracker.offer("second", 2.0)
        assert set(tracker.items()) == {"first"}

    def test_offer_counter(self):
        tracker = TopKTracker(1)
        tracker.offer("a", 1.0)
        tracker.offer("b", 2.0)
        assert tracker.offers == 2

    def test_negative_k_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            TopKTracker(-1)
