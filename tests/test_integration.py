"""End-to-end integration: a full maintenance lifecycle on one dataset.

Bulk-load a tiled transform with SHIFT-SPLIT, query it, append to it,
extract regions from it, and keep a stream synopsis of the same data —
verifying every stage against ground truth computed directly.
"""

import numpy as np

from repro.append.appender import StandardAppender
from repro.datasets.synthetic import precipitation_cube, temperature_cube
from repro.reconstruct.point import point_query_standard
from repro.reconstruct.rangesum import range_sum_standard
from repro.reconstruct.region import reconstruct_box_standard
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.streams.stream1d import StreamSynopsis1D
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.wavelet.haar1d import haar_dwt
from repro.wavelet.layout import index_level
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt


class TestTemperatureLifecycle:
    def test_load_query_extract(self):
        cube = temperature_cube((8, 8, 4, 16), seed=42)
        store = TiledStandardStore(
            cube.shape, block_edge=4, pool_capacity=128
        )
        report = transform_standard_chunked(store, cube, (4, 4, 4, 4))
        assert report.chunks == 2 * 2 * 1 * 4
        store.flush()
        assert np.allclose(store.to_array(), standard_dwt(cube))

        # Point queries.
        rng = np.random.default_rng(0)
        for __ in range(10):
            position = tuple(
                int(rng.integers(0, extent)) for extent in cube.shape
            )
            assert np.isclose(
                point_query_standard(store, position), cube[position]
            )

        # An OLAP range-sum: average temperature over a lat/lon window.
        value = range_sum_standard(store, (2, 2, 0, 0), (5, 5, 3, 15))
        assert np.isclose(value, cube[2:6, 2:6, 0:4, 0:16].sum())

        # Partial reconstruction of an arbitrary window.
        window = reconstruct_box_standard(
            store, (1, 2, 0, 3), (6, 7, 3, 11)
        )
        assert np.allclose(window, cube[1:6, 2:7, 0:3, 3:11])


class TestPrecipitationAppendLifecycle:
    def test_monthly_appends_match_from_scratch(self):
        months = 5
        cube = precipitation_cube(months, seed=7)
        appender = StandardAppender(
            (8, 8, 32),
            grow_axis=2,
            store_factory=lambda shape, stats: TiledStandardStore(
                shape, block_edge=4, pool_capacity=64, stats=stats
            ),
        )
        for month in range(months):
            appender.append(cube[..., month * 32 : (month + 1) * 32])
        domain_t = appender.domain_shape[2]
        padded = np.zeros((8, 8, domain_t))
        padded[..., : months * 32] = cube
        assert np.allclose(appender.to_array(), standard_dwt(padded))

        # The appended store answers queries over the union of months.
        store = appender.store
        total = range_sum_standard(
            store, (0, 0, 0), (7, 7, months * 32 - 1)
        )
        assert np.isclose(total, cube.sum())


class TestNonStandardLifecycle:
    def test_load_and_verify(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(32, 32))
        store = TiledNonStandardStore(32, 2, block_edge=4, pool_capacity=64)
        transform_nonstandard_chunked(store, data, 8, order="zorder")
        store.flush()
        assert np.allclose(store.to_array(), nonstandard_dwt(data))


class TestStreamAgainstBulk:
    def test_stream_synopsis_matches_bulk_topk(self):
        """The streaming top-K equals the offline top-K of the same
        series (ties aside) — stream and bulk paths agree."""
        size, k = 512, 24
        series = temperature_cube((2, 2, 2, size // 8), seed=3).ravel()[
            :size
        ]
        synopsis = StreamSynopsis1D(size, k=k, buffer_size=32)
        synopsis.extend(series)
        offline = haar_dwt(series)
        n = 9
        significances = np.asarray(
            [
                abs(offline[index]) * 2.0 ** (index_level(n, index) / 2.0)
                for index in range(size)
            ]
        )
        best = set(np.argsort(-significances)[:k])
        got = set(synopsis.synopsis().keys())
        assert len(best & got) >= k - 2
