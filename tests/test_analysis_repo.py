"""The repo itself passes repro-lint, and the CLI gates correctly.

The acceptance contract for the analysis PR: ``make analyze`` (the
CLI against the shipped baseline) exits 0 on this repository, exits
non-zero on every known-bad fixture, and the shipped
``lint_baseline.json`` is *empty* — real findings were fixed or
suppressed in code with reasons, never grandfathered.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.cli import main
from repro.analysis.engine import run_analysis
from repro.analysis.findings import Finding

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "lint"
BAD_FIXTURES = sorted((FIXTURES / "bad").glob("*.py"))


class TestRepoIsClean:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis()

    def test_no_findings(self, report):
        assert [f.render() for f in report.findings] == []

    def test_shipped_baseline_is_empty(self):
        baseline = load_baseline(REPO / "lint_baseline.json")
        assert baseline.total == 0

    def test_lock_graph_is_acyclic(self, report):
        assert not [f for f in report.findings if f.rule == "REPRO-L002"]
        graph = report.data["lock_graph"]
        assert graph["nodes"]  # non-trivial: locks were found

    def test_lock_graph_covers_service_topology(self, report):
        """The known engine ordering must be present in the graph."""
        edges = {
            (e["from"], e["to"])
            for e in report.data["lock_graph"]["edges"]
        }
        expected = {
            ("QueryEngine._batch_lock", "ShardedBufferPool._locks"),
            ("ShardedBufferPool._locks", "_ShardPool._io_lock"),
            ("ShardedBufferPool._locks", "_SynchronizedDevice._lock"),
            ("_ShardPool._io_lock", "Tracer._orphan_lock"),
            ("_SynchronizedDevice._lock", "TraceStore._lock"),
        }
        assert expected <= edges

    def test_guard_annotations_are_in_force(self, report):
        """The rules must be live, not vacuously green: the model sees
        the in-tree ``# guarded-by:`` declarations."""
        from repro.analysis.model import build_model
        from repro.analysis.source import load_source_tree

        files = load_source_tree(REPO / "src" / "repro", prefix="src/repro")
        model = build_model(files)
        guarded_classes = [
            cls.name for cls in model.classes.values() if cls.guarded
        ]
        assert {
            "CircuitBreaker",
            "Counter",
            "FailoverController",
            "FollowerEngine",
            "Gauge",
            "Histogram",
            "JournalShipper",
            "QueryEngine",
            "TraceStore",
            "Tracer",
            "_PlanLRU",
        } <= set(guarded_classes)

    def test_protocol_specs_are_live(self, report):
        """The protocol rules must anchor on real code, not pass
        vacuously: the serving/persist/replication stacks contain
        anchors for every spec."""
        specs = {s["rule"]: s for s in report.data["protocols"]["specs"]}
        assert set(specs) == {
            "REPRO-P001",
            "REPRO-P002",
            "REPRO-P003",
            "REPRO-P004",
        }
        for spec in specs.values():
            assert spec["anchors"] > 0, spec
            assert spec["violations"] == 0, spec


class TestCLIGating:
    def test_repo_gate_exits_zero(self, capsys):
        assert main([]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "fixture", BAD_FIXTURES, ids=[p.stem for p in BAD_FIXTURES]
    )
    def test_each_bad_fixture_fails_the_gate(self, fixture, tmp_path, capsys):
        solo = tmp_path / "solo"
        solo.mkdir()
        shutil.copy(fixture, solo / fixture.name)
        assert main(["--root", str(solo), "--no-baseline"]) == 1
        assert "REPRO-" in capsys.readouterr().out

    def test_missing_root_is_an_error_not_a_pass(self, tmp_path, capsys):
        """A typo'd --root must never green-light the gate vacuously."""
        assert main(["--root", str(tmp_path / "nope")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["--root", str(empty)]) == 2

    def test_json_report_contains_findings_and_graph(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert (
            main(
                [
                    "--root",
                    str(FIXTURES / "bad"),
                    "--no-baseline",
                    "--json",
                    str(out),
                ]
            )
            == 1
        )
        payload = json.loads(out.read_text())
        assert payload["files_analyzed"] == 13
        assert {f["rule"] for f in payload["findings"]} == {
            "REPRO-L001",
            "REPRO-L002",
            "REPRO-L003",
            "REPRO-I001",
            "REPRO-F001",
            "REPRO-T001",
            "REPRO-P001",
            "REPRO-P002",
            "REPRO-P003",
            "REPRO-P004",
            "REPRO-R001",
        }
        assert payload["lock_graph"]["edges"]
        assert payload["protocols"]["specs"]

    def test_baseline_ratchets(self, tmp_path, capsys):
        """A baselined finding is tolerated; a fresh one still fails."""
        solo = tmp_path / "solo"
        solo.mkdir()
        shutil.copy(FIXTURES / "bad" / "fault.py", solo / "fault.py")
        baseline_path = tmp_path / "baseline.json"

        report = run_analysis(root=solo)
        save_baseline(baseline_path, report.findings)
        assert (
            main(["--root", str(solo), "--baseline", str(baseline_path)])
            == 0
        )

        # a new defect beyond the baseline fails the gate
        shutil.copy(FIXTURES / "bad" / "guarded.py", solo / "guarded.py")
        assert (
            main(["--root", str(solo), "--baseline", str(baseline_path)])
            == 1
        )
        out = capsys.readouterr().out
        assert "REPRO-L001" in out
        assert "REPRO-F001" not in out  # baselined, not re-reported

    def test_write_baseline_prints_diff_summary(self, tmp_path, capsys):
        solo = tmp_path / "solo"
        solo.mkdir()
        shutil.copy(FIXTURES / "bad" / "fault.py", solo / "fault.py")
        baseline_path = tmp_path / "baseline.json"
        args = ["--root", str(solo), "--baseline", str(baseline_path)]
        assert main(args + ["--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "+4 added, -0 removed" in out
        assert out.count("  + ") == 4
        # fixing the defects shrinks the baseline; the diff says so
        shutil.copy(FIXTURES / "good" / "fault.py", solo / "fault.py")
        assert main(args + ["--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "+0 added, -4 removed" in out
        assert out.count("  - ") == 4

    def test_strict_baseline_flags_fixed_entries(self, tmp_path, capsys):
        solo = tmp_path / "solo"
        solo.mkdir()
        shutil.copy(FIXTURES / "good" / "fault.py", solo / "fault.py")
        baseline_path = tmp_path / "baseline.json"
        stale = Finding(
            file="fault.py",
            line=1,
            rule="REPRO-F001",
            name="flag-hygiene",
            message="long gone",
        )
        save_baseline(baseline_path, [stale])
        args = ["--root", str(solo), "--baseline", str(baseline_path)]
        assert main(args) == 0  # lenient by default
        assert main(args + ["--strict-baseline"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out
