"""Tests for the experiment-harness utilities (table formatting, CSV
export, transform reports)."""

import csv

import pytest

from repro.experiments.common import format_table, print_experiment
from repro.experiments.export import export_all, write_csv
from repro.storage.iostats import IOStats
from repro.transform.report import TransformReport


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [
            {"name": "alpha", "value": 1},
            {"name": "b", "value": 12345},
        ]
        table = format_table(rows, ["name", "value"])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "12345" in lines[3]
        # All rows padded to the same width.
        assert len({len(line.rstrip()) for line in lines[:2]}) <= 2

    def test_missing_columns_render_empty(self):
        table = format_table([{"a": 1}], ["a", "b"])
        assert "b" in table

    def test_empty_rows(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_print_experiment_includes_banner(self, capsys):
        print_experiment("My Title", [{"a": 1}], ["a"], note="a note")
        out = capsys.readouterr().out
        assert "My Title" in out
        assert "a note" in out


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"x": 1, "y": "a"},
            {"x": 2, "y": "b", "z": 3.5},
        ]
        path = write_csv(rows, tmp_path / "out.csv")
        with open(path) as handle:
            read = list(csv.DictReader(handle))
        assert read[0]["x"] == "1"
        assert read[1]["z"] == "3.5"
        assert read[0]["z"] == ""  # union of columns

    def test_creates_directories(self, tmp_path):
        path = write_csv([{"a": 1}], tmp_path / "deep" / "dir" / "f.csv")
        assert path.exists()

    def test_export_all(self, tmp_path):
        written = export_all(
            {"one": [{"a": 1}], "two": [{"b": 2}]}, tmp_path
        )
        assert sorted(p.name for p in written) == ["one.csv", "two.csv"]

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "f.csv")


class TestTransformReport:
    def test_totals(self):
        report = TransformReport(
            chunks=3,
            source_reads=100,
            store_stats=IOStats(
                coefficient_reads=10,
                coefficient_writes=20,
                block_reads=4,
                block_writes=5,
            ),
        )
        assert report.coefficient_ios == 130
        assert report.block_ios == 9

    def test_defaults(self):
        report = TransformReport()
        assert report.chunks == 0
        assert report.coefficient_ios == 0
        assert report.extras == {}
