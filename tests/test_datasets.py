"""Tests for the synthetic dataset and stream generators."""

import numpy as np
import pytest

from repro.datasets.streams import (
    bursty_stream,
    random_walk_stream,
    slab_stream,
)
from repro.datasets.synthetic import (
    precipitation_cube,
    precipitation_months,
    random_cube,
    sparse_cube,
    temperature_cube,
    zipf_cube,
)


class TestTemperature:
    def test_shape_and_determinism(self):
        cube = temperature_cube((8, 8, 4, 16), seed=1)
        assert cube.shape == (8, 8, 4, 16)
        assert np.array_equal(cube, temperature_cube((8, 8, 4, 16), seed=1))

    def test_values_look_like_kelvin(self):
        cube = temperature_cube((8, 8, 4, 16))
        assert 150 < cube.mean() < 350

    def test_altitude_lapse(self):
        cube = temperature_cube((8, 8, 8, 16))
        by_altitude = cube.mean(axis=(0, 1, 3))
        assert by_altitude[0] > by_altitude[-1]

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            temperature_cube((8, 8, 8))


class TestPrecipitation:
    def test_monthly_geometry(self):
        slabs = list(precipitation_months(3))
        assert len(slabs) == 3
        assert slabs[0].shape == (8, 8, 32)

    def test_non_negative_and_bursty(self):
        cube = precipitation_cube(6)
        assert cube.min() >= 0.0
        assert (cube == 0).mean() > 0.2  # plenty of dry samples

    def test_cube_assembles_months(self):
        cube = precipitation_cube(4, seed=2)
        slabs = list(precipitation_months(4, seed=2))
        assert np.array_equal(cube[..., 32:64], slabs[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            list(precipitation_months(0))


class TestOtherCubes:
    def test_zipf_is_heavy_tailed(self):
        cube = zipf_cube((32, 32))
        magnitudes = np.sort(np.abs(cube).ravel())[::-1]
        top_energy = (magnitudes[:32] ** 2).sum()
        assert top_energy > 0.5 * (magnitudes**2).sum()

    def test_sparse_density(self):
        cube = sparse_cube((64, 64), density=0.05)
        assert np.isclose((cube != 0).mean(), 0.05, atol=0.01)

    def test_random_cube_shape(self):
        assert random_cube((4, 8)).shape == (4, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_cube((8,), alpha=0.0)
        with pytest.raises(ValueError):
            sparse_cube((8,), density=0.0)


class TestStreams:
    def test_random_walk_is_cumulative(self):
        stream = random_walk_stream(128, seed=3)
        assert stream.shape == (128,)
        increments = np.diff(stream)
        assert np.std(increments) < np.std(stream)

    def test_bursty_has_outliers(self):
        stream = bursty_stream(4096)
        assert np.abs(stream).max() > 10 * np.abs(stream).std()

    def test_slab_stream_shapes(self):
        slabs = list(slab_stream((4, 4), 5))
        assert len(slabs) == 5
        assert all(slab.shape == (4, 4) for slab in slabs)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walk_stream(0)
        with pytest.raises(ValueError):
            bursty_stream(8, burst_probability=0.0)
        with pytest.raises(ValueError):
            list(slab_stream((4,), 0))
