"""Unit and property tests for the non-standard form and its quadtree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelet.keys import NonStandardKey, nonstandard_keys_of_node
from repro.wavelet.nonstandard import (
    nonstandard_basis_norm,
    nonstandard_dwt,
    nonstandard_idwt,
    nonstandard_scaling_norm,
    require_cubic,
)
from repro.wavelet.quadtree import NonStandardTree


class TestRoundTrip:
    @given(
        st.sampled_from([2, 4, 8, 16]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, edge, ndim, seed):
        data = np.random.default_rng(seed).normal(size=(edge,) * ndim)
        assert np.allclose(nonstandard_idwt(nonstandard_dwt(data)), data)

    def test_one_dimensional_case_matches_haar(self):
        from repro.wavelet.haar1d import haar_dwt

        data = np.random.default_rng(0).normal(size=16)
        assert np.allclose(nonstandard_dwt(data), haar_dwt(data))

    def test_rejects_non_cubic(self):
        with pytest.raises(ValueError):
            nonstandard_dwt(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            require_cubic((4, 8))


class TestKeys:
    def test_positions_are_a_bijection(self):
        """Every cell of the Mallat array is either the scaling slot or
        exactly one detail key's position."""
        edge, ndim = 8, 2
        n = 3
        seen = {(0, 0)}
        for level in range(1, n + 1):
            width = edge >> level
            for node in np.ndindex(*(width,) * ndim):
                for key in nonstandard_keys_of_node(level, tuple(node)):
                    position = key.position(edge)
                    assert position not in seen
                    seen.add(position)
        assert len(seen) == edge**ndim

    def test_key_validation(self):
        with pytest.raises(ValueError):
            NonStandardKey(0, (0, 0), 1)
        with pytest.raises(ValueError):
            NonStandardKey(1, (0, 0), 0)
        with pytest.raises(ValueError):
            NonStandardKey(1, (0, 0), 4)
        with pytest.raises(ValueError):
            NonStandardKey(1, (-1, 0), 1)

    def test_support_slices(self):
        key = NonStandardKey(2, (1, 3), 1)
        assert key.support_slices() == (slice(4, 8), slice(12, 16))

    def test_parent_node(self):
        assert NonStandardKey(1, (5, 2), 3).parent_node() == (2, 1)

    def test_basis_norm_matches_explicit_basis(self):
        edge, ndim = 8, 2
        rng = np.random.default_rng(1)
        for __ in range(10):
            level = int(rng.integers(1, 4))
            width = edge >> level
            node = tuple(int(rng.integers(0, width)) for __ in range(ndim))
            mask = int(rng.integers(1, 4))
            key = NonStandardKey(level, node, mask)
            coeffs = np.zeros((edge,) * ndim)
            coeffs[key.position(edge)] = 1.0
            basis_function = nonstandard_idwt(coeffs)
            assert np.isclose(
                np.linalg.norm(basis_function), nonstandard_basis_norm(key)
            )

    def test_scaling_norm(self):
        coeffs = np.zeros((8, 8))
        coeffs[0, 0] = 1.0
        assert np.isclose(
            np.linalg.norm(nonstandard_idwt(coeffs)),
            nonstandard_scaling_norm(8, 2),
        )


class TestQuadtree:
    def test_parent_child_inverse(self):
        tree = NonStandardTree(16, 2)
        node = (2, (1, 3))
        for child in tree.children(node):
            assert tree.parent(child) == node

    def test_children_count_is_branching(self):
        tree = NonStandardTree(16, 3)
        assert len(tree.children((2, (0, 0, 0)))) == 8
        assert tree.children((1, (0, 0, 0))) == []

    def test_root_has_no_parent(self):
        tree = NonStandardTree(8, 2)
        with pytest.raises(ValueError):
            tree.parent((3, (0, 0)))

    def test_root_path_keys_count(self):
        """(2^d - 1) * n detail keys per point (plus the average)."""
        tree = NonStandardTree(16, 2)
        keys = tree.root_path_keys((5, 11))
        assert len(keys) == 3 * 4

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_point_reconstruction(self, x, y, seed):
        data = np.random.default_rng(seed).normal(size=(16, 16))
        hat = nonstandard_dwt(data)
        tree = NonStandardTree(16, 2)
        value = hat[0, 0]
        for key in tree.root_path_keys((x, y)):
            value += tree.reconstruction_weight(key, (x, y)) * hat[
                key.position(16)
            ]
        assert np.isclose(value, data[x, y])

    def test_reconstruction_weight_outside_support_is_zero(self):
        tree = NonStandardTree(16, 2)
        key = NonStandardKey(2, (0, 0), 1)
        assert tree.reconstruction_weight(key, (9, 1)) == 0.0

    def test_node_of_point_bounds(self):
        tree = NonStandardTree(8, 2)
        with pytest.raises(ValueError):
            tree.node_of_point((8, 0), 1)

    def test_subtree_nodes(self):
        tree = NonStandardTree(8, 2)
        nodes = list(tree.subtree_nodes((2, (0, 1))))
        assert len(nodes) == 1 + 4
        limited = list(tree.subtree_nodes((2, (0, 1)), height=1))
        assert limited == [(2, (0, 1))]
