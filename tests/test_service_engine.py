"""Tests for the concurrent query engine.

Covers the serving acceptance criteria: concurrent execution over one
sharded pool matches sequential ground truth, dirty blocks survive
``close()`` (verified against the device, not the cache), the bounded
admission queue rejects promptly, and expired deadlines produce
timeout errors rather than hangs.
"""

import threading

import numpy as np
import pytest

from repro.service.engine import AdmissionError, QueryEngine
from repro.service.queries import (
    CustomQuery,
    PointQuery,
    RangeSumQuery,
    RegionQuery,
    execute_query,
)
from repro.service.replay import build_store, build_workload, run_naive


def _mixed_workload(shape, seed=3):
    return build_workload(
        shape, points=16, range_sums=8, regions=8, seed=seed
    )


def _values_equal(left, right):
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.allclose(left, right, atol=1e-9)
    return np.isclose(left, right, atol=1e-9)


class TestConcurrentCorrectness:
    def test_eight_threads_match_sequential_and_flush_survives_close(self):
        store, data = build_store(
            shape=(32, 32), block_edge=4, pool_capacity=16, seed=5
        )
        queries = _mixed_workload(store.shape)

        engine = QueryEngine(
            store,
            num_workers=8,
            queue_depth=256,
            num_shards=4,
            pool_capacity=16,
        )
        # Dirty the pool through the engine's sharded path: the writes
        # must reach the device by close(), not die in the cache.
        # (write_point stores raw coefficients, so pick detail slots
        # whose value round-trips directly.)
        writes = {(1, 2): 123.5, (30, 17): -7.25, (16, 16): 0.125}
        for position, value in writes.items():
            store.write_point(position, value)

        # Sequential ground truth from a second, untouched engine-free
        # execution path: a fresh store loaded with identical content.
        reference, __ = build_store(
            shape=(32, 32), block_edge=4, pool_capacity=16, seed=5
        )
        for position, value in writes.items():
            reference.write_point(position, value)
        expected = [execute_query(reference, query) for query in queries]

        results = [None] * len(queries)
        barrier = threading.Barrier(8)

        def client(thread_index):
            barrier.wait()  # all eight threads fire at once
            for i in range(thread_index, len(queries), 8):
                results[i] = engine.run(queries[i])

        threads = [
            threading.Thread(target=client, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.close()

        for expected_value, result in zip(expected, results):
            assert result.ok, result.error
            assert _values_equal(expected_value, result.value)

        # Flush verification against the *device*: locate each written
        # coefficient's block and read it raw, bypassing every cache.
        for position, value in writes.items():
            key, slot = store.tiling.locate(position)
            block_id = store.tile_store.block_of(key)
            assert block_id is not None
            assert store.tile_store.device.read_block(block_id)[slot] == value

    def test_batched_execution_matches_sequential(self):
        store, __ = build_store(
            shape=(32, 32), block_edge=4, pool_capacity=64, seed=6
        )
        queries = _mixed_workload(store.shape, seed=7)
        expected = run_naive(store, queries)["values"]
        store.drop_cache()
        store.stats.reset()
        with QueryEngine(store, num_workers=8, num_shards=4) as engine:
            batch = engine.execute_batch(queries)
        assert batch.plan.dedup_ratio > 1.0
        # Each unique materialised tile was read exactly once.
        assert batch.block_reads == batch.plan.num_unique_tiles
        for expected_value, result in zip(expected, batch.results):
            assert result.ok
            assert _values_equal(expected_value, result.value)


class TestAdmissionControl:
    def test_queue_beyond_capacity_rejects_promptly(self):
        store, __ = build_store(shape=(16, 16), block_edge=4, seed=1)
        release = threading.Event()
        started = threading.Event()

        def blocker(_store):
            started.set()
            release.wait(timeout=10.0)
            return 0.0

        engine = QueryEngine(store, num_workers=1, queue_depth=2)
        try:
            engine.submit(CustomQuery(blocker))
            assert started.wait(timeout=5.0)  # worker is now occupied
            engine.submit(PointQuery((0, 0)))
            engine.submit(PointQuery((1, 1)))  # queue now full
            with pytest.raises(AdmissionError):
                engine.submit(PointQuery((2, 2)))
            assert engine.metrics.counter("queries_rejected").value == 1
        finally:
            release.set()
            engine.close()
        # Admitted queries still completed during the drain.
        assert engine.metrics.counter("queries_served").value == 3

    def test_expired_deadline_returns_timeout_not_hang(self):
        store, __ = build_store(shape=(16, 16), block_edge=4, seed=2)
        release = threading.Event()
        started = threading.Event()

        def blocker(_store):
            started.set()
            release.wait(timeout=10.0)
            return 0.0

        engine = QueryEngine(store, num_workers=1, queue_depth=8)
        try:
            engine.submit(CustomQuery(blocker))
            assert started.wait(timeout=5.0)
            # Deadline expires while the query waits behind the blocker.
            doomed = engine.submit(PointQuery((3, 3)), timeout=0.0)
            release.set()
            result = doomed.result(timeout=5.0)
            assert result.status == "timeout"
            assert result.value is None
            assert "deadline" in result.error
            assert engine.metrics.counter("queries_timed_out").value == 1
        finally:
            release.set()
            engine.close()

    def test_default_timeout_applies(self):
        store, __ = build_store(shape=(16, 16), block_edge=4, seed=2)
        engine = QueryEngine(
            store, num_workers=1, queue_depth=8, default_timeout=0.0
        )
        try:
            result = engine.run(PointQuery((0, 0)))
            assert result.status == "timeout"
        finally:
            engine.close()


class TestLifecycle:
    def test_submit_after_close_refused(self):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        engine = QueryEngine(store, num_workers=2)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.submit(PointQuery((0, 0)))
        with pytest.raises(RuntimeError):
            engine.execute_batch([PointQuery((0, 0))])

    def test_close_is_idempotent(self):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        engine = QueryEngine(store, num_workers=2)
        engine.close()
        engine.close()

    def test_close_drains_pending_work(self):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        engine = QueryEngine(store, num_workers=1, queue_depth=32)
        submissions = [
            engine.submit(PointQuery((i % 16, i % 16))) for i in range(20)
        ]
        engine.close()
        assert all(sub.done() for sub in submissions)
        assert all(sub.result().ok for sub in submissions)

    def test_query_error_is_contained(self):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        with QueryEngine(store, num_workers=2) as engine:
            bad = engine.run(PointQuery((999, 999)))
            good = engine.run(RangeSumQuery((0, 0), (7, 7)))
        assert bad.status == "error"
        assert bad.error
        assert good.ok
        assert engine.metrics.counter("query_errors").value == 1


class TestObservability:
    def test_snapshot_reports_serving_metrics(self):
        store, __ = build_store(shape=(32, 32), block_edge=4)
        with QueryEngine(store, num_workers=4, num_shards=4) as engine:
            engine.execute_batch(_mixed_workload(store.shape, seed=9))
        snap = engine.snapshot()
        counters = snap["counters"]
        assert counters["queries_served"] == 32
        assert counters["batches_planned"] == 1
        assert snap["planner_dedup_ratio"] > 1.0
        assert snap["histograms"]["query_latency_s"]["count"] == 32
        assert snap["pool"]["num_shards"] == 4
        assert snap["pool"]["hits"] > 0

    def test_engine_replaces_store_pool_with_sharded(self):
        from repro.service.pool import ShardedBufferPool

        store, __ = build_store(shape=(16, 16), block_edge=4)
        engine = QueryEngine(store, num_workers=1, num_shards=2)
        try:
            assert isinstance(store.tile_store.pool, ShardedBufferPool)
            assert store.tile_store.pool is engine.pool
        finally:
            engine.close()


class TestQuotaAndQueueHwm:
    """The per-tenant admission quota and the HWM satellite."""

    def _blocked_engine(self, max_inflight):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        engine = QueryEngine(
            store,
            num_workers=1,
            queue_depth=8,
            max_inflight=max_inflight,
        )
        gate = threading.Event()
        blocker = engine.submit(CustomQuery(lambda s: gate.wait(5)))
        return engine, gate, blocker

    def test_submit_beyond_quota_raises_quota_error(self):
        from repro.service.engine import QuotaError

        engine, gate, blocker = self._blocked_engine(max_inflight=2)
        try:
            second = engine.submit(PointQuery((0, 0)))
            with pytest.raises(QuotaError):
                engine.submit(PointQuery((1, 1)))
            # QuotaError is an AdmissionError: generic handlers keep
            # treating it as backpressure.
            assert issubclass(QuotaError, AdmissionError)
            assert engine.metrics.counter("queries_throttled").value == 1
            gate.set()
            assert blocker.result(5).ok
            assert second.result(5).ok
            # completed work releases the quota
            assert engine.run(PointQuery((2, 2))).ok
        finally:
            gate.set()
            engine.close()

    def test_batch_reserves_quota_upfront(self):
        from repro.service.engine import QuotaError

        store, __ = build_store(shape=(16, 16), block_edge=4)
        with QueryEngine(store, num_workers=2, max_inflight=3) as engine:
            with pytest.raises(QuotaError):
                engine.execute_batch(
                    [PointQuery((i, i)) for i in range(4)]
                )
            # the failed batch must not leak reservations
            batch = engine.execute_batch(
                [PointQuery((i, i)) for i in range(3)]
            )
            assert all(result.ok for result in batch.results)

    def test_snapshot_reports_queue_hwm_and_inflight(self):
        engine, gate, blocker = self._blocked_engine(max_inflight=8)
        try:
            for i in range(3):
                engine.submit(PointQuery((i, i)))
            snap = engine.snapshot()
            assert snap["admission_queue_hwm"] >= 2
            assert snap["queries_inflight"] >= 3
            assert snap["gauges"]["admission_queue_hwm"] >= 2
            gate.set()
            blocker.result(5)
        finally:
            gate.set()
            engine.close()
        snap = engine.snapshot()
        assert snap["queries_inflight"] == 0
        assert snap["admission_queue_hwm"] >= 2  # high-water sticks

    def test_labeled_metrics_and_dedup_ratio(self):
        store, __ = build_store(shape=(32, 32), block_edge=4)
        with QueryEngine(
            store,
            num_workers=2,
            metric_labels={"tenant": "acme"},
        ) as engine:
            engine.execute_batch(_mixed_workload(store.shape, seed=11))
            snap = engine.snapshot()
        assert snap["counters"]['queries_served{tenant="acme"}'] == 32
        # the dedup ratio must find the labeled series, not the bare name
        assert snap["planner_dedup_ratio"] > 1.0


class TestDeadlineDegradedReads:
    """Expired deadlines answer from resident blocks with sound bounds."""

    def _guarded_engine(self):
        from repro.service.deadline import DeadlineGuardDevice
        from repro.storage.journal import JournaledDevice

        store, data = build_store(
            shape=(32, 32), block_edge=4, pool_capacity=16, seed=13
        )
        store.tile_store.wrap_device(JournaledDevice)
        store.tile_store.wrap_device(DeadlineGuardDevice)
        engine = QueryEngine(
            store,
            num_workers=2,
            pool_capacity=16,
            degrade_on_deadline=True,
        )
        return engine, data

    def test_expired_deadline_cold_cache_degrades_with_bound(self):
        engine, data = self._guarded_engine()
        try:
            result = engine.run(RangeSumQuery((0, 0), (31, 31)), timeout=0.0)
            assert result.status == "degraded"
            assert result.error_bound is not None
            assert 0.0 < result.error_bound < float("inf")
            truth = float(data.sum())
            assert abs(result.value - truth) <= result.error_bound
            assert (
                engine.metrics.counter("queries_deadline_degraded").value
                == 1
            )
        finally:
            engine.close()

    def test_expired_deadline_warm_cache_is_full_fidelity(self):
        engine, data = self._guarded_engine()
        try:
            query = RangeSumQuery((0, 7), (7, 15))
            warm = engine.run(query)  # faults the blocks in
            assert warm.ok
            again = engine.run(query, timeout=0.0)
            # every needed block is resident: the cache-only pass is
            # exact, so the answer is served ok rather than degraded
            assert again.ok
            assert again.value == warm.value
        finally:
            engine.close()

    def test_without_guard_expired_deadline_still_times_out(self):
        store, __ = build_store(shape=(16, 16), block_edge=4)
        with QueryEngine(
            store, num_workers=1, degrade_on_deadline=True
        ) as engine:
            result = engine.run(PointQuery((0, 0)), timeout=0.0)
        assert result.status == "timeout"
