"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import _EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(_EXPERIMENTS)


class TestRun:
    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_runs_stream_space(self, capsys):
        assert main(["run", "stream-space"]) == 0
        assert "Results 3-5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeReplay:
    def test_replays_a_small_workload_and_prints_json(self, capsys):
        assert (
            main(
                [
                    "serve-replay",
                    "--size", "32",
                    "--block-edge", "4",
                    "--points", "8",
                    "--range-sums", "4",
                    "--regions", "4",
                    "--workers", "2",
                    "--shards", "2",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["results_match"]
        assert report["config"]["queries"] == 16
        assert report["batched"]["dedup_ratio"] > 1.0
        assert (
            report["batched"]["block_reads"] <= report["naive"]["block_reads"]
        )
        assert "queries_served" in report["metrics"]["counters"]
