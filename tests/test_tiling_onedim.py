"""Unit and property tests for the 1-d subtree tiling (Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiling.onedim import OneDimTiling
from repro.wavelet.layout import detail_index, support_of_index

tiling_parameters = st.tuples(
    st.integers(min_value=1, max_value=10),  # n
    st.integers(min_value=1, max_value=4),  # b
).filter(lambda pair: pair[1] <= pair[0])


class TestBandGeometry:
    def test_bottom_aligned_bands(self):
        tiling = OneDimTiling(32, 4)  # n=5, b=2
        assert tiling.num_bands == 3
        assert tiling.band_of_level(1) == 0
        assert tiling.band_of_level(2) == 0
        assert tiling.band_of_level(3) == 1
        assert tiling.band_of_level(5) == 2

    def test_top_band_may_be_short(self):
        tiling = OneDimTiling(32, 4)
        assert tiling.band_height(0) == 2
        assert tiling.band_height(2) == 1  # only level 5
        assert tiling.band_root_level(2) == 5

    def test_tiles_in_band(self):
        tiling = OneDimTiling(32, 4)
        assert tiling.tiles_in_band(0) == 8  # roots at level 2
        assert tiling.tiles_in_band(1) == 2
        assert tiling.tiles_in_band(2) == 1
        assert tiling.num_tiles == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            OneDimTiling(32, 1)
        with pytest.raises(ValueError):
            OneDimTiling(8, 16)
        with pytest.raises(ValueError):
            OneDimTiling(32, 4).band_of_level(6)


class TestLocation:
    @given(tiling_parameters, st.data())
    @settings(max_examples=50)
    def test_every_coefficient_has_unique_slot(self, parameters, data):
        n, b = parameters
        tiling = OneDimTiling(1 << n, 1 << b)
        seen = {}
        for level in range(1, n + 1):
            for position in range(1 << (n - level)):
                key = (
                    tiling.tile_of_detail(level, position),
                    tiling.slot_of_detail(level, position),
                )
                assert key not in seen
                seen[key] = (level, position)
                # Slots stay within the block (slot 0 is the scaling).
                assert 1 <= key[1] < (1 << b)

    @given(tiling_parameters, st.data())
    @settings(max_examples=50)
    def test_vectorised_matches_scalar(self, parameters, data):
        n, b = parameters
        size = 1 << n
        tiling = OneDimTiling(size, 1 << b)
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=1,
                max_size=20,
            )
        )
        bands, roots, slots = tiling.locate_indices(
            np.asarray(indices, dtype=np.int64)
        )
        for position, index in enumerate(indices):
            tile, slot = tiling.locate_index(index)
            assert (bands[position], roots[position]) == tile
            assert slots[position] == slot

    def test_scaling_lives_in_top_tile(self):
        tiling = OneDimTiling(32, 4)
        tile, slot = tiling.locate_index(0)
        assert tile == (tiling.num_bands - 1, 0)
        assert slot == 0

    def test_out_of_range_rejected(self):
        tiling = OneDimTiling(16, 4)
        with pytest.raises(ValueError):
            tiling.locate_indices(np.asarray([16]))


class TestTileEnumeration:
    @given(tiling_parameters)
    @settings(max_examples=30)
    def test_details_of_tile_inverts_location(self, parameters):
        n, b = parameters
        tiling = OneDimTiling(1 << n, 1 << b)
        for band in range(tiling.num_bands):
            for root in range(tiling.tiles_in_band(band)):
                tile = (band, root)
                for level, position, slot in tiling.details_of_tile(tile):
                    assert tiling.tile_of_detail(level, position) == tile
                    assert tiling.slot_of_detail(level, position) == slot

    def test_flat_indices_of_tile(self):
        tiling = OneDimTiling(16, 4)
        indices = tiling.flat_indices_of_tile((0, 2))
        # Subtree rooted at w_{2,2}: details w_{2,2}, w_{1,4}, w_{1,5}.
        assert set(indices) == {
            detail_index(4, 2, 2),
            detail_index(4, 1, 4),
            detail_index(4, 1, 5),
        }

    def test_scaling_of_tile(self):
        tiling = OneDimTiling(16, 4)
        assert tiling.scaling_of_tile((0, 3)) == (2, 3)


class TestAccessPatterns:
    @given(tiling_parameters, st.data())
    @settings(max_examples=40)
    def test_root_path_needs_one_tile_per_band(self, parameters, data):
        n, b = parameters
        size = 1 << n
        tiling = OneDimTiling(size, 1 << b)
        position = data.draw(st.integers(min_value=0, max_value=size - 1))
        tiles = tiling.tiles_on_root_path(position)
        assert len(tiles) == tiling.num_bands
        # The root-path details of the position all live in these tiles.
        tile_set = set(tiles)
        for level in range(1, n + 1):
            assert tiling.tile_of_detail(level, position >> level) in tile_set

    @given(tiling_parameters, st.data())
    @settings(max_examples=40)
    def test_tiles_of_subtree_matches_bruteforce(self, parameters, data):
        n, b = parameters
        size = 1 << n
        tiling = OneDimTiling(size, 1 << b)
        level = data.draw(st.integers(min_value=1, max_value=n))
        position = data.draw(
            st.integers(min_value=0, max_value=(1 << (n - level)) - 1)
        )
        expected = set()
        for sub_level in range(1, level + 1):
            shift = level - sub_level
            for k in range(position << shift, (position + 1) << shift):
                expected.add(tiling.tile_of_detail(sub_level, k))
        assert set(tiling.tiles_of_subtree(level, position)) == expected

    def test_subtree_tile_count_tracks_m_over_b(self):
        """Section 4.2: SHIFT touches about M/B tiles."""
        tiling = OneDimTiling(1 << 12, 1 << 3)
        tiles = tiling.tiles_of_subtree(9, 0)  # M = 512, B = 8
        assert len(tiles) == 64 + 8 + 1  # geometric M/B series


class TestSupportAlignment:
    @given(tiling_parameters, st.data())
    @settings(max_examples=30)
    def test_tile_scaling_covers_all_members(self, parameters, data):
        """The slot-0 scaling's support contains every detail in the
        tile — the invariant that makes in-tile reconstruction work."""
        n, b = parameters
        tiling = OneDimTiling(1 << n, 1 << b)
        band = data.draw(
            st.integers(min_value=0, max_value=tiling.num_bands - 1)
        )
        root = data.draw(
            st.integers(
                min_value=0, max_value=tiling.tiles_in_band(band) - 1
            )
        )
        level, position = tiling.scaling_of_tile((band, root))
        start, stop = position << level, (position + 1) << level
        for member_level, member_position, __ in tiling.details_of_tile(
            (band, root)
        ):
            mstart, mstop = support_of_index(
                n, detail_index(n, member_level, member_position)
            )
            assert start <= mstart and mstop <= stop


class TestLogarithmicUtilisation:
    """Section 3's guarantee: whenever a tile is fetched for a
    root-path access, at least ``band height`` of its coefficients are
    useful — the best possible without redundancy [10]."""

    @given(tiling_parameters, st.data())
    @settings(max_examples=40)
    def test_full_bands_contribute_b_coefficients(self, parameters, data):
        n, b = parameters
        size = 1 << n
        tiling = OneDimTiling(size, 1 << b)
        position = data.draw(st.integers(min_value=0, max_value=size - 1))
        # Useful coefficients = the root-path details inside each tile.
        per_tile = {}
        for level in range(1, n + 1):
            tile = tiling.tile_of_detail(level, position >> level)
            per_tile[tile] = per_tile.get(tile, 0) + 1
        for tile, useful in per_tile.items():
            band = tile[0]
            assert useful == tiling.band_height(band)
            # Full bands deliver the promised b coefficients.
            if tiling.band_height(band) == b:
                assert useful == b
