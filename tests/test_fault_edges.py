"""Clock-edge and determinism tests for the fault-tolerance plumbing.

Replication failover leans on :class:`CircuitBreaker` transitions (the
health probe treats an open breaker as unhealthy) and on
:class:`RetryPolicy` backoff under injected faults, so their timing
edges get dedicated coverage: half-open probe admission under
concurrency, re-trip timer restarts, and bit-exact jitter replay under
a fixed seed.
"""

import random
import threading

import pytest

from repro.fault.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.fault.retry import Retrier, RetryPolicy


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _tripped_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("reset_timeout_s", 5.0)
    breaker = CircuitBreaker(clock=clock, **kwargs)
    for __ in range(kwargs["failure_threshold"]):
        breaker.on_failure()
    assert breaker.state == STATE_OPEN
    return breaker


class TestHalfOpenEdges:
    def test_half_open_admits_exactly_the_probe_budget(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=2)
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN
        # Two concurrent probes pass, the third is shed — even though
        # none of them has reported an outcome yet.
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["shed"] == 1

    def test_probe_failure_re_trips_and_restarts_the_timeout(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(5.0)
        assert breaker.allow()  # the half-open probe
        clock.advance(4.9)  # almost a full timeout later, probe fails
        breaker.on_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.snapshot()["opens"] == 2
        # The timeout restarted at the re-trip, not at the first trip:
        # 4.9s after the original open is NOT enough anymore.
        clock.advance(0.2)
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        clock.advance(4.9)  # now a full timeout since the re-trip
        assert breaker.state == STATE_HALF_OPEN

    def test_failure_during_concurrent_probes_re_trips_immediately(self):
        # One probe failing while another is still in flight must slam
        # the breaker shut — the straggler's leftover admission must
        # not survive into the next half-open window.
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=2)
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.allow()
        breaker.on_failure()  # first probe fails; second still running
        assert breaker.state == STATE_OPEN
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN
        # Fresh window: the full probe budget is available again.
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()

    def test_straggler_success_after_re_trip_closes_the_breaker(self):
        # Current (documented) semantics: on_success always closes.  A
        # probe that eventually succeeds proves the device answers, so
        # closing is safe even if a sibling probe failed meanwhile.
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=2)
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == STATE_OPEN
        breaker.on_success()  # the straggler comes back happy
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_half_open_transition_is_observed_by_every_entry_point(self):
        # state, allow() and snapshot() must all apply the timeout
        # check — a reader must never see a stale "open" after the
        # window elapsed.
        for entry in ("state", "allow", "snapshot"):
            clock = FakeClock()
            breaker = _tripped_breaker(clock)
            clock.advance(5.0)
            if entry == "state":
                assert breaker.state == STATE_HALF_OPEN
            elif entry == "allow":
                assert breaker.allow()
            else:
                assert breaker.snapshot()["state"] == STATE_HALF_OPEN

    def test_concurrent_probe_admission_is_race_free(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock, half_open_probes=3)
        clock.advance(5.0)
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(1)

        threads = [threading.Thread(target=probe) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 3  # exactly the budget, despite the race

    def test_zero_reset_timeout_goes_half_open_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=0.0, clock=clock
        )
        breaker.on_failure()
        assert breaker.state == STATE_HALF_OPEN


class TestJitterDeterminism:
    def test_same_seed_replays_the_exact_delay_sequence(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay_s=0.01, seed=1234
        )

        def delays():
            rng = random.Random(policy.seed)
            return [policy.delay_for(a, rng) for a in range(1, 8)]

        first, second = delays(), delays()
        assert first == second  # bit-exact, not approx
        assert len(set(first)) > 1  # and actually jittered

    def test_retrier_sleep_sequence_is_deterministic_under_seed(self):
        def run():
            slept = []
            retrier = Retrier(
                RetryPolicy(
                    max_attempts=5, base_delay_s=0.01, seed=99
                ),
                sleep=slept.append,
            )
            with pytest.raises(IOError):
                retrier.call(self._always_fail)
            return slept

        assert run() == run()

    @staticmethod
    def _always_fail():
        raise IOError("down")

    def test_jitter_stays_within_the_documented_band(self):
        policy = RetryPolicy(
            max_attempts=4,
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=10.0,
            jitter=0.5,
            seed=7,
        )
        rng = random.Random(policy.seed)
        for attempt in range(1, 50):
            raw = min(
                policy.max_delay_s,
                policy.base_delay_s * policy.multiplier ** (attempt - 1),
            )
            delay = policy.delay_for(attempt, rng)
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_zero_jitter_is_exactly_the_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=0.05,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert [policy.delay_for(a, rng) for a in (1, 2, 3, 4, 5)] == [
            0.01,
            0.02,
            0.04,
            0.05,
            0.05,
        ]

    def test_different_seeds_diverge(self):
        policy_a = RetryPolicy(max_attempts=4, base_delay_s=0.01, seed=1)
        policy_b = RetryPolicy(max_attempts=4, base_delay_s=0.01, seed=2)
        rng_a = random.Random(policy_a.seed)
        rng_b = random.Random(policy_b.seed)
        sequence_a = [policy_a.delay_for(a, rng_a) for a in (1, 2, 3)]
        sequence_b = [policy_b.delay_for(a, rng_b) for a in (1, 2, 3)]
        assert sequence_a != sequence_b
