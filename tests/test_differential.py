"""Differential and fuzz tests: every storage/maintenance path must
agree with an independent reference implementation under randomized
operation sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.append.appender import StandardAppender
from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.dense import DenseStandardStore
from repro.storage.tile_store import TileStore
from repro.storage.tiled import TiledStandardStore
from repro.wavelet.standard import standard_dwt


class TestBufferPoolAgainstUncachedDevice:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_cached_and_uncached_contents_agree(self, seed):
        """Random read/write/flush sequences through a tiny pool yield
        exactly the contents a direct (uncached) device would hold."""
        rng = np.random.default_rng(seed)
        slots = 3
        device = BlockDevice(slots)
        pool = BufferPool(device, capacity=2)
        reference = {}
        blocks = [device.allocate() for __ in range(6)]
        for __ in range(60):
            action = rng.integers(0, 3)
            block = int(rng.choice(blocks))
            if action == 0:  # write through the pool
                values = rng.normal(size=slots)
                data = pool.get(block, for_write=True)
                data[:] = values
                reference[block] = values.copy()
            elif action == 1:  # read through the pool
                expected = reference.get(block, np.zeros(slots))
                assert np.allclose(pool.get(block), expected)
            else:
                pool.flush()
        pool.drop_all()
        for block in blocks:
            expected = reference.get(block, np.zeros(slots))
            assert np.allclose(device.read_block(block), expected)


class TestTileStoreAgainstDict:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_slot_operations_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        store = TileStore(block_slots=4, pool_capacity=2)
        reference = {}
        keys = ["a", "b", "c", ("nested", 1), ("nested", 2)]
        for __ in range(80):
            action = rng.integers(0, 3)
            key = keys[rng.integers(0, len(keys))]
            slot = int(rng.integers(0, 4))
            if action == 0:
                value = float(rng.normal())
                store.write_slot(key, slot, value)
                reference[(key, slot)] = value
            elif action == 1:
                delta = float(rng.normal())
                store.add_to_slot(key, slot, delta)
                reference[(key, slot)] = (
                    reference.get((key, slot), 0.0) + delta
                )
            else:
                expected = reference.get((key, slot), 0.0)
                assert np.isclose(store.read_slot(key, slot), expected)
        for (key, slot), expected in reference.items():
            assert np.isclose(store.read_slot(key, slot), expected)


class TestAppenderAgainstFromScratch:
    @given(
        st.integers(min_value=1, max_value=12),
        st.sampled_from([(2, 4), (4, 8), (8, 4)]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_slab_count_and_shape(self, slabs, slab_shape, seed):
        rng = np.random.default_rng(seed)
        appender = StandardAppender(
            slab_shape,
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        pieces = [rng.normal(size=slab_shape) for __ in range(slabs)]
        for piece in pieces:
            appender.append(piece)
        thickness = slab_shape[1]
        extent = appender.domain_shape[1]
        full = np.zeros((slab_shape[0], extent))
        for index, piece in enumerate(pieces):
            full[:, index * thickness : (index + 1) * thickness] = piece
        assert np.allclose(appender.to_array(), standard_dwt(full))


class TestTiledStoreUnderPoolPressure:
    @given(
        st.sampled_from([1, 2, 7]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_tiny_pools_never_lose_data(self, capacity, seed):
        """Correctness must not depend on the pool size — only I/O
        counts may change."""
        from repro.transform.chunked import transform_standard_chunked

        data = np.random.default_rng(seed).normal(size=(32, 32))
        store = TiledStandardStore(
            (32, 32), block_edge=4, pool_capacity=capacity
        )
        transform_standard_chunked(store, data, (8, 8))
        assert np.allclose(store.to_array(), standard_dwt(data))

    def test_smaller_pools_cost_more_io(self):
        from repro.transform.chunked import transform_standard_chunked

        data = np.random.default_rng(3).normal(size=(64, 64))
        costs = {}
        for capacity in (1, 64):
            store = TiledStandardStore(
                (64, 64), block_edge=8, pool_capacity=capacity
            )
            transform_standard_chunked(store, data, (8, 8))
            costs[capacity] = store.stats.block_ios
        assert costs[1] > costs[64]
