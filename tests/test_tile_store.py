"""Unit tests for the keyed tile store."""

import numpy as np

from repro.storage.tile_store import TileStore


class TestLazyAllocation:
    def test_fresh_tile_costs_no_read(self):
        store = TileStore(block_slots=4)
        data = store.tile(("band", 0))
        assert np.array_equal(data, np.zeros(4))
        assert store.stats.block_reads == 0
        assert store.num_tiles == 1

    def test_peek_does_not_allocate(self):
        store = TileStore(block_slots=4)
        assert store.peek("nope") is None
        assert store.num_tiles == 0
        assert store.stats.block_ios == 0

    def test_contains_and_keys(self):
        store = TileStore(block_slots=2)
        store.tile("a")
        assert "a" in store
        assert "b" not in store
        assert list(store.keys()) == ["a"]


class TestSlotOps:
    def test_slot_roundtrip(self):
        store = TileStore(block_slots=4)
        store.write_slot("t", 2, 5.5)
        assert store.read_slot("t", 2) == 5.5

    def test_missing_tile_reads_zero_without_io(self):
        store = TileStore(block_slots=4)
        assert store.read_slot("absent", 1) == 0.0
        assert store.stats.block_ios == 0

    def test_add_to_slot(self):
        store = TileStore(block_slots=4)
        store.add_to_slot("t", 0, 1.5)
        store.add_to_slot("t", 0, 2.5)
        assert store.read_slot("t", 0) == 4.0


class TestPersistence:
    def test_eviction_and_reload(self):
        store = TileStore(block_slots=2, pool_capacity=1)
        store.write_slot("first", 0, 1.0)
        store.write_slot("second", 0, 2.0)  # evicts "first" (dirty)
        store.write_slot("third", 0, 3.0)  # evicts "second"
        assert store.read_slot("first", 0) == 1.0
        assert store.read_slot("second", 0) == 2.0
        assert store.read_slot("third", 0) == 3.0

    def test_flush_then_cold_read(self):
        store = TileStore(block_slots=2, pool_capacity=4)
        store.write_slot("t", 1, 7.0)
        store.drop_cache()
        before = store.stats.snapshot()
        assert store.read_slot("t", 1) == 7.0
        assert store.stats.delta_since(before).block_reads == 1

    def test_io_accounting_read_modify_write(self):
        store = TileStore(block_slots=2, pool_capacity=1)
        store.write_slot("a", 0, 1.0)
        store.flush()
        store.drop_cache()
        before = store.stats.snapshot()
        store.add_to_slot("a", 0, 1.0)  # cold: read
        store.flush()  # write back
        delta = store.stats.delta_since(before)
        assert delta.block_reads == 1
        assert delta.block_writes == 1
