"""Tests for appending and domain expansion (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.append.appender import StandardAppender
from repro.append.expansion import expand_standard_axis, expansion_axis_map
from repro.storage.dense import DenseStandardStore
from repro.storage.tiled import TiledStandardStore
from repro.wavelet.standard import standard_dwt


class TestExpansionAxisMap:
    def test_old_average_splits_in_half(self):
        sources, weights, targets = expansion_axis_map(8)
        assert list(sources[:2]) == [0, 0]
        assert list(weights[:2]) == [0.5, 0.5]
        assert list(targets[:2]) == [0, 1]

    def test_details_keep_level_identity(self):
        from repro.wavelet.layout import index_to_detail

        extent = 16
        sources, weights, targets = expansion_axis_map(extent)
        for source, weight, target in zip(
            sources[2:], weights[2:], targets[2:]
        ):
            assert weight == 1.0
            level_old, k_old = index_to_detail(4, int(source))
            level_new, k_new = index_to_detail(5, int(target))
            assert (level_old, k_old) == (level_new, k_new)

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_expansion_equals_zero_padded_transform(self, n, seed):
        """Expanding â must equal DWT of the data zero-padded to 2N."""
        size = 1 << n
        data = np.random.default_rng(seed).normal(size=size)
        old = standard_dwt(data)
        sources, weights, targets = expansion_axis_map(size)
        expanded = np.zeros(2 * size)
        expanded[targets] = old[sources] * weights
        padded = np.zeros(2 * size)
        padded[:size] = data
        assert np.allclose(expanded, standard_dwt(padded))

    def test_multidimensional_expansion(self):
        data = np.random.default_rng(1).normal(size=(8, 16))
        old = DenseStandardStore((8, 16))
        old.set_region(
            [np.arange(8), np.arange(16)], standard_dwt(data)
        )
        new = DenseStandardStore((8, 32))
        expand_standard_axis(old, new, axis=1)
        padded = np.zeros((8, 32))
        padded[:, :16] = data
        assert np.allclose(new.to_array(), standard_dwt(padded))

    def test_shape_mismatch_rejected(self):
        old = DenseStandardStore((8, 8))
        new = DenseStandardStore((8, 8))
        with pytest.raises(ValueError):
            expand_standard_axis(old, new, axis=0)


class TestAppender:
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_appended_transform_equals_from_scratch(self, slabs, seed):
        rng = np.random.default_rng(seed)
        appender = StandardAppender(
            (4, 4),
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        pieces = [rng.normal(size=(4, 4)) for __ in range(slabs)]
        for piece in pieces:
            appender.append(piece)
        domain_t = appender.domain_shape[1]
        full = np.zeros((4, domain_t))
        for index, piece in enumerate(pieces):
            full[:, index * 4 : (index + 1) * 4] = piece
        assert np.allclose(appender.to_array(), standard_dwt(full))
        assert appender.logical_extent == slabs * 4

    def test_expansion_happens_at_powers_of_two(self):
        appender = StandardAppender(
            (2, 4),
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        expansions = []
        for index in range(8):
            record = appender.append(np.ones((2, 4)))
            if record.expanded:
                expansions.append(index)
        # Domain: 4 -> 8 at slab 1, -> 16 at 2, -> 32 at 4.
        assert expansions == [1, 2, 4]

    def test_expansion_cost_dwarfs_steady_appends(self):
        """Figure 13's jumps: expansion I/O >> steady-state I/O."""
        appender = StandardAppender(
            (4, 8),
            grow_axis=1,
            store_factory=lambda shape, stats: TiledStandardStore(
                shape, block_edge=4, pool_capacity=16, stats=stats
            ),
        )
        rng = np.random.default_rng(3)
        records = [
            appender.append(rng.normal(size=(4, 8))) for __ in range(16)
        ]
        steady = [r.io_delta.block_ios for r in records if not r.expanded]
        jumps = [r.io_delta.block_ios for r in records if r.expanded]
        assert jumps and steady
        assert max(jumps) > max(steady)

    def test_tiled_append_matches_dense(self):
        rng = np.random.default_rng(4)
        pieces = [rng.normal(size=(4, 8)) for __ in range(5)]
        dense = StandardAppender(
            (4, 8),
            1,
            lambda shape, stats: DenseStandardStore(shape, stats=stats),
        )
        tiled = StandardAppender(
            (4, 8),
            1,
            lambda shape, stats: TiledStandardStore(
                shape, block_edge=4, pool_capacity=16, stats=stats
            ),
        )
        for piece in pieces:
            dense.append(piece)
            tiled.append(piece)
        assert np.allclose(dense.to_array(), tiled.to_array())

    def test_wrong_slab_shape_rejected(self):
        appender = StandardAppender(
            (4, 4),
            1,
            lambda shape, stats: DenseStandardStore(shape, stats=stats),
        )
        with pytest.raises(ValueError):
            appender.append(np.zeros((4, 8)))

    def test_bad_grow_axis_rejected(self):
        with pytest.raises(ValueError):
            StandardAppender(
                (4, 4),
                2,
                lambda shape, stats: DenseStandardStore(shape, stats=stats),
            )


class TestAppendBlock:
    def test_growth_in_a_non_time_dimension(self):
        """The paper's 'possibly on other measure dimensions': a block
        beyond the current extent of ANY axis triggers expansion
        there."""
        rng = np.random.default_rng(11)
        appender = StandardAppender(
            (4, 4),
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        base = rng.normal(size=(4, 4))
        right = rng.normal(size=(4, 4))
        below = rng.normal(size=(4, 4))
        appender.append_block(base, (0, 0))
        appender.append_block(right, (0, 1))  # grows axis 1
        appender.append_block(below, (1, 0))  # grows axis 0
        full = np.zeros((8, 8))
        full[0:4, 0:4] = base
        full[0:4, 4:8] = right
        full[4:8, 0:4] = below
        assert appender.domain_shape == (8, 8)
        assert np.allclose(appender.to_array(), standard_dwt(full))

    def test_far_position_expands_repeatedly(self):
        appender = StandardAppender(
            (2, 2),
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        appender.append_block(np.ones((2, 2)), (0, 0))
        record = appender.append_block(np.ones((2, 2)), (0, 7))
        assert record.expanded
        assert appender.domain_shape == (2, 16)

    def test_invalid_position_rejected(self):
        appender = StandardAppender(
            (2, 2),
            grow_axis=1,
            store_factory=lambda shape, stats: DenseStandardStore(
                shape, stats=stats
            ),
        )
        with pytest.raises(ValueError):
            appender.append_block(np.ones((2, 2)), (0, -1))
        with pytest.raises(ValueError):
            appender.append_block(np.ones((2, 2)), (0,))
        with pytest.raises(ValueError):
            appender.append_block(np.ones((2, 4)), (0, 0))
