"""Crash-matrix proof of flush atomicity.

The harness runs a deterministic job (bulk load, then an update batch)
whose flushes go through a :class:`JournaledDevice` with a
:class:`CrashPlan` attached.  Phase one surveys the flush protocol's
crash sites; phase two reruns the identical job once per site, killing
the "process" there, then simulates a restart: only the raw device
content and the journal bytes survive, recovery replays or discards,
and the recovered store must be *bit-identical* to either the
pre-flush or the post-flush fault-free state — never anything in
between — with a clean checksum scan.  When the crash lost the flush
(pre-flush state), redoing the whole deterministic job from scratch
must land exactly on the fault-free final state.
"""

import numpy as np
import pytest

from repro.fault.crash import CrashPlan, InjectedCrash
from repro.storage.journal import JournaledDevice, WriteAheadJournal
from repro.storage.mmap_device import MmapBlockDevice
from repro.storage.tiled import TiledStandardStore
from repro.update.batch import batch_update_standard
from repro.wavelet.standard import standard_dwt

SHAPE = (16, 16)
BLOCK_EDGE = 4
DELTAS = np.linspace(-1.0, 1.0, 16).reshape(4, 4)
DELTA_OFFSET = (4, 8)


def _data():
    return np.random.default_rng(7).normal(size=SHAPE)


@pytest.fixture(params=["memory", "mmap"])
def make_device(request, tmp_path):
    """Raw-arena factory: the whole matrix must hold on both the
    simulated in-memory device and the file-backed mmap device."""
    if request.param == "memory":
        return lambda: None
    counter = iter(range(10**6))
    return lambda: MmapBlockDevice(
        tmp_path / f"arena-{next(counter)}.blocks",
        block_slots=BLOCK_EDGE * BLOCK_EDGE,
    )


def _load(store):
    """Bulk-load the standard transform of the data into ``store``.

    Writes land in the buffer pool only (its capacity exceeds the tile
    count), so the subsequent explicit flush is the single journaled
    group commit the crash plan protects.
    """
    coefficients = standard_dwt(_data())
    for position in np.ndindex(*SHAPE):
        store.write_point(position, float(coefficients[position]))


def _build_store(make_device):
    """A journaled tiled store; returns (store, journaled_device)."""
    store = TiledStandardStore(
        SHAPE,
        block_edge=BLOCK_EDGE,
        pool_capacity=256,
        device=make_device(),
    )
    holder = {}

    def wrap(device):
        holder["journaled"] = JournaledDevice(device)
        return holder["journaled"]

    store.tile_store.wrap_device(wrap)
    return store, holder["journaled"]


def _job(make_device, phases, crash=None, holder=None):
    """Run the deterministic job through ``phases`` flush phases.

    Phase 1: bulk-load + flush.  Phase 2: update batch + flush.  The
    crash plan (if any) is attached only around the *last* phase's
    flush — earlier phases are setup and must complete.  ``holder``
    (if given) receives the journaled device as soon as it exists, so
    a crashed run's surviving artifacts are reachable.
    """
    store, device = _build_store(make_device)
    if holder is not None:
        holder["device"] = device
    _load(store)
    if phases == 1:
        device.crash = crash
    store.flush()
    device.crash = None
    if phases == 2:
        batch_update_standard(store, DELTAS, DELTA_OFFSET)
        device.crash = crash
        store.flush()
        device.crash = None
    return store, device


def _goldens(make_device, phases):
    """Fault-free device images just before and just after the
    crash-protected flush of the given phase."""
    store, device = _build_store(make_device)
    _load(store)
    if phases == 2:
        store.flush()
        batch_update_standard(store, DELTAS, DELTA_OFFSET)
    pre = device.dump_blocks()
    __, device = _job(make_device, phases)
    post = device.dump_blocks()
    return pre, post


def _run_matrix(make_device, phases):
    survey = CrashPlan()
    _job(make_device, phases, crash=survey)
    assert survey.count > 0
    golden_pre, golden_post = _goldens(make_device, phases)
    assert not np.array_equal(golden_pre, golden_post)

    seen_states = set()
    for site in range(survey.count):
        plan = CrashPlan(armed=site)
        holder = {}
        with pytest.raises(InjectedCrash):
            _job(make_device, phases, crash=plan, holder=holder)
        assert plan.fired_at == survey.site_names[site]

        # -- simulated restart: only disk + journal bytes survive -----
        # The crashed process's memory (store object, buffer pool,
        # tile directory, checksum map) is abandoned; the durability
        # layer is rebuilt over the raw device and the journal image.
        raw = holder["device"].inner
        journal_bytes = holder["device"].journal.to_bytes()
        recovered = JournaledDevice(
            raw, journal=WriteAheadJournal.from_bytes(journal_bytes)
        )
        report = recovered.recover()
        assert report.clean, (
            f"site {site} ({survey.site_names[site]}): checksum failures "
            f"{report.corrupt_blocks} survived recovery"
        )
        final = recovered.dump_blocks()
        is_pre = np.array_equal(final, golden_pre)
        is_post = np.array_equal(final, golden_post)
        assert is_pre or is_post, (
            f"site {site} ({survey.site_names[site]}): recovered state is "
            f"neither the pre-flush nor the post-flush image — atomicity "
            f"violated"
        )
        seen_states.add("pre" if is_pre else "post")
        if is_pre:
            # The flush was lost wholesale; the deterministic job redone
            # from scratch must reproduce the fault-free final state.
            __, redo_device = _job(make_device, phases)
            np.testing.assert_array_equal(
                redo_device.dump_blocks(), golden_post
            )
    # The matrix only proves atomicity if it actually exercised both
    # outcomes: early sites must lose the flush, late sites keep it.
    assert seen_states == {"pre", "post"}


class TestCrashSites:
    def test_survey_names_every_protocol_step(self, make_device):
        survey = CrashPlan()
        _job(make_device, 1, crash=survey)
        names = set(survey.site_names)
        assert "journal.data.torn" in names
        assert "journal.data.appended" in names
        assert "journal.commit.torn" in names
        assert "journal.commit.appended" in names
        assert "group.committed" in names
        assert "apply.torn" in names
        assert "apply.applied" in names
        assert "checkpoint.done" in names


class TestBulkLoadCrashMatrix:
    def test_every_site_recovers_atomically(self, make_device):
        _run_matrix(make_device, phases=1)


class TestUpdateBatchCrashMatrix:
    def test_every_site_recovers_atomically(self, make_device):
        _run_matrix(make_device, phases=2)
