"""Tests for the OLAP facade (named dimensions, domain-unit queries)."""

import numpy as np
import pytest

from repro.olap.cube import WaveletCube
from repro.olap.schema import Dimension


class TestDimension:
    def test_default_mapping_is_identity(self):
        dim = Dimension("x", 8)
        assert dim.to_cell(3.5) == 3
        assert dim.cell_width == 1.0

    def test_affine_mapping(self):
        latitude = Dimension("lat", 16, low=-90.0, high=90.0)
        assert latitude.cell_width == 11.25
        assert latitude.to_cell(-90.0) == 0
        assert latitude.to_cell(89.9) == 15
        assert latitude.to_cell_range(0.0, 45.0) == (8, 12)

    def test_clamping(self):
        dim = Dimension("x", 8)
        assert dim.to_cell(-5.0) == 0
        assert dim.to_cell(100.0) == 7

    def test_cell_value_roundtrip(self):
        dim = Dimension("t", 32, low=0.0, high=64.0)
        for cell in (0, 13, 31):
            assert dim.to_cell(dim.cell_value(cell)) == cell

    def test_validation(self):
        with pytest.raises(ValueError):
            Dimension("", 8)
        with pytest.raises(ValueError):
            Dimension("x", 6)
        with pytest.raises(ValueError):
            Dimension("x", 8, low=5.0, high=5.0)
        with pytest.raises(ValueError):
            Dimension("x", 8).to_cell_range(4.0, 1.0)
        with pytest.raises(ValueError):
            Dimension("x", 8).cell_value(8)


@pytest.fixture(scope="module")
def loaded_cube():
    rng = np.random.default_rng(0)
    data = rng.normal(loc=20.0, size=(16, 16, 32))
    cube = WaveletCube(
        [
            Dimension("lat", 16, low=-90.0, high=90.0),
            Dimension("lon", 16, low=0.0, high=360.0),
            Dimension("day", 32),
        ],
        block_edge=4,
        pool_blocks=128,
    )
    cube.load(data)
    return data, cube


class TestFixedCube:
    def test_full_sum(self, loaded_cube):
        data, cube = loaded_cube
        assert np.isclose(cube.sum(), data.sum())

    def test_partial_range_in_domain_units(self, loaded_cube):
        data, cube = loaded_cube
        # lat 0..90 == cells 8..15, lon 0..90 == cells 0..4.
        value = cube.sum(lat=(0.0, 89.9), lon=(0.0, 89.9))
        expected = data[8:16, 0:4, :].sum()
        assert np.isclose(value, expected)

    def test_average_and_count(self, loaded_cube):
        data, cube = loaded_cube
        count = cube.count(day=(0, 7))
        assert count == 16 * 16 * 8
        assert np.isclose(
            cube.average(day=(0, 7)), data[:, :, 0:8].mean()
        )

    def test_point_lookup(self, loaded_cube):
        data, cube = loaded_cube
        value = cube.value_at(lat=-90.0, lon=0.0, day=5.0)
        assert np.isclose(value, data[0, 0, 5])

    def test_window_reconstruction(self, loaded_cube):
        data, cube = loaded_cube
        window = cube.window(lat=(0.0, 89.9), day=(4, 11))
        assert np.allclose(window, data[8:16, :, 4:12])

    def test_unknown_dimension_rejected(self, loaded_cube):
        __, cube = loaded_cube
        with pytest.raises(KeyError):
            cube.sum(altitude=(0, 1))
        with pytest.raises(KeyError):
            cube.value_at(lat=0.0, lon=0.0)  # missing 'day'

    def test_double_load_rejected(self, loaded_cube):
        __, cube = loaded_cube
        with pytest.raises(RuntimeError):
            cube.load(np.zeros((16, 16, 32)))

    def test_query_before_load_rejected(self):
        cube = WaveletCube([Dimension("x", 8)])
        with pytest.raises(RuntimeError):
            cube.sum()

    def test_shape_mismatch_rejected(self):
        cube = WaveletCube([Dimension("x", 8)])
        with pytest.raises(ValueError):
            cube.load(np.zeros(16))


class TestGrowingCube:
    def test_appends_then_queries(self):
        rng = np.random.default_rng(1)
        cube = WaveletCube(
            [
                Dimension("site", 4),
                Dimension("hour", 8),  # slab thickness
            ],
            block_edge=2,
            grow_dimension="hour",
        )
        slabs = [rng.normal(size=(4, 8)) for __ in range(3)]
        for slab in slabs:
            cube.append(slab)
        total = sum(float(slab.sum()) for slab in slabs)
        assert np.isclose(cube.sum(hour=(0, 23)), total)
        assert np.isclose(
            cube.value_at(site=2, hour=13), slabs[1][2, 5]
        )

    def test_load_rejected_on_growing_cube(self):
        cube = WaveletCube(
            [Dimension("x", 4), Dimension("t", 4)], grow_dimension="t"
        )
        with pytest.raises(RuntimeError):
            cube.load(np.zeros((4, 4)))

    def test_append_rejected_on_fixed_cube(self):
        cube = WaveletCube([Dimension("x", 4)])
        with pytest.raises(RuntimeError):
            cube.append(np.zeros(4))

    def test_unknown_grow_dimension_rejected(self):
        with pytest.raises(ValueError):
            WaveletCube(
                [Dimension("x", 4)], grow_dimension="t"
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            WaveletCube([Dimension("x", 4), Dimension("x", 8)])


class TestCubeUpdate:
    def test_update_changes_queries(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(8, 8))
        cube = WaveletCube(
            [Dimension("x", 8), Dimension("y", 8)], block_edge=2
        )
        cube.load(data)
        deltas = np.full((4, 4), 2.0)
        cube.update(deltas, x=4, y=0)
        expected = data.copy()
        expected[4:8, 0:4] += 2.0
        assert np.isclose(cube.sum(), expected.sum())
        assert np.isclose(cube.value_at(x=5, y=2), expected[5, 2])

    def test_update_requires_all_corners(self):
        cube = WaveletCube([Dimension("x", 8), Dimension("y", 8)], block_edge=2)
        cube.load(np.zeros((8, 8)))
        with pytest.raises(KeyError):
            cube.update(np.ones((2, 2)), x=0)

    def test_misaligned_update_rejected(self):
        cube = WaveletCube([Dimension("x", 8)], block_edge=2)
        cube.load(np.zeros(8))
        with pytest.raises(ValueError):
            cube.update(np.ones(4), x=2)


class TestNonStandardCube:
    def test_full_lifecycle(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(16, 16))
        cube = WaveletCube(
            [Dimension("x", 16), Dimension("y", 16)],
            block_edge=4,
            form="nonstandard",
        )
        cube.load(data)
        assert cube.form == "nonstandard"
        assert cube.shape == (16, 16)
        assert np.isclose(cube.sum(), data.sum())
        assert np.isclose(
            cube.sum(x=(2, 9), y=(4, 13)), data[2:10, 4:14].sum()
        )
        assert np.isclose(cube.value_at(x=5, y=11), data[5, 11])
        window = cube.window(x=(1, 6))
        assert np.allclose(window, data[1:7, :])
        cube.update(np.ones((4, 4)), x=4, y=8)
        expected = data.copy()
        expected[4:8, 8:12] += 1.0
        assert np.isclose(cube.sum(), expected.sum())

    def test_non_cubic_rejected(self):
        with pytest.raises(ValueError):
            WaveletCube(
                [Dimension("x", 8), Dimension("y", 16)],
                form="nonstandard",
            )

    def test_growing_nonstandard_rejected(self):
        with pytest.raises(ValueError):
            WaveletCube(
                [Dimension("x", 8), Dimension("t", 8)],
                form="nonstandard",
                grow_dimension="t",
            )

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            WaveletCube([Dimension("x", 8)], form="fancy")
