"""Tests for the multidimensional stream synopses (Results 4-5)."""

import numpy as np
import pytest

from repro.streams.streamnd import (
    NonStandardStreamSynopsis,
    StandardStreamSynopsis,
)
from repro.wavelet.standard import standard_dwt


class TestStandardStream:
    def test_full_k_recovers_the_cube(self):
        fixed, time_domain = (4, 8), 16
        rng = np.random.default_rng(0)
        cube = rng.normal(size=fixed + (time_domain,))
        synopsis = StandardStreamSynopsis(
            fixed, time_domain, k=cube.size, time_buffer=4
        )
        for t in range(time_domain):
            synopsis.push_slab(cube[..., t])
        assert np.allclose(synopsis.estimate(), cube)

    def test_finalised_match_offline_transform(self):
        fixed, time_domain = (4, 4), 8
        cube = np.random.default_rng(1).normal(size=fixed + (time_domain,))
        synopsis = StandardStreamSynopsis(
            fixed, time_domain, k=cube.size, time_buffer=2
        )
        for t in range(time_domain):
            synopsis.push_slab(cube[..., t])
        offline = standard_dwt(cube)
        for key, value in synopsis.synopsis().items():
            assert np.isclose(value, offline[key]), key

    def test_memory_is_result_4_bound(self):
        """Live memory <= M*N^{d-1} + N^{d-1}(log(T/M) + 1)."""
        fixed, time_domain, buffer = (4, 4), 64, 4
        synopsis = StandardStreamSynopsis(
            fixed, time_domain, k=8, time_buffer=buffer
        )
        rng = np.random.default_rng(2)
        for __ in range(time_domain):
            synopsis.push_slab(rng.normal(size=fixed))
        fixed_cells = 16
        bound = buffer * fixed_cells + fixed_cells * ((6 - 2) + 1)
        assert synopsis.max_live_coefficients <= bound

    def test_slab_shape_enforced(self):
        synopsis = StandardStreamSynopsis((4, 4), 8, k=4)
        with pytest.raises(ValueError):
            synopsis.push_slab(np.zeros((4, 8)))

    def test_time_domain_exhaustion(self):
        synopsis = StandardStreamSynopsis((2,), 2, k=4)
        synopsis.push_slab(np.zeros(2))
        synopsis.push_slab(np.zeros(2))
        with pytest.raises(ValueError):
            synopsis.push_slab(np.zeros(2))


class TestNonStandardStream:
    def _feed(self, synopsis, strip, edge, chunk_edge):
        cubes = strip.shape[-1] // edge
        for cube_index in range(cubes):
            block = strip[..., cube_index * edge : (cube_index + 1) * edge]
            for grid in synopsis.expected_chunk_order():
                selector = tuple(
                    slice(g * chunk_edge, (g + 1) * chunk_edge) for g in grid
                )
                synopsis.push_chunk(block[selector])

    def test_full_k_recovers_the_stream(self):
        edge, ndim, time_domain, chunk_edge = 8, 2, 32, 2
        strip = np.random.default_rng(3).normal(size=(edge, time_domain))
        synopsis = NonStandardStreamSynopsis(
            edge, ndim, time_domain, k=strip.size, chunk_edge=chunk_edge
        )
        self._feed(synopsis, strip, edge, chunk_edge)
        assert np.allclose(synopsis.estimate(), strip)

    def test_memory_is_result_5_bound(self):
        """Live coefficients (beyond chunk & K) stay within
        (2^d - 1) log(N/M) + log(T/N) + O(1)."""
        edge, ndim, time_domain, chunk_edge = 16, 2, 64, 2
        strip = np.random.default_rng(4).normal(size=(edge, time_domain))
        synopsis = NonStandardStreamSynopsis(
            edge, ndim, time_domain, k=16, chunk_edge=chunk_edge
        )
        self._feed(synopsis, strip, edge, chunk_edge)
        bound = 3 * (4 - 1) + 2 + 2  # (2^d-1)(n-m) + log(T/N) + slack
        assert synopsis.max_live_coefficients <= bound

    def test_chunk_shape_enforced(self):
        synopsis = NonStandardStreamSynopsis(8, 2, 16, k=4, chunk_edge=2)
        with pytest.raises(ValueError):
            synopsis.push_chunk(np.zeros((4, 4)))

    def test_chunks_per_cube(self):
        synopsis = NonStandardStreamSynopsis(8, 2, 16, k=4, chunk_edge=2)
        assert synopsis.chunks_per_cube == 16

    def test_time_domain_must_be_cube_multiple(self):
        with pytest.raises(ValueError):
            NonStandardStreamSynopsis(8, 2, 20, k=4, chunk_edge=2)


class TestValidation:
    def test_non_power_of_two_fixed_shape_rejected(self):
        with pytest.raises(ValueError):
            StandardStreamSynopsis((3, 4), 8, k=4)

    def test_bad_time_buffer_rejected(self):
        with pytest.raises(ValueError):
            StandardStreamSynopsis((4,), 8, k=4, time_buffer=16)

    def test_chunk_edge_exceeding_cube_rejected(self):
        with pytest.raises(ValueError):
            NonStandardStreamSynopsis(8, 2, 16, k=4, chunk_edge=16)
