"""Smoke and shape tests for the experiment harness: each experiment
runs at a small scale and must reproduce the paper's *qualitative*
claims (who wins, what trends hold)."""

import numpy as np
import pytest

from repro.experiments import (
    ablation_tiling,
    ablation_zorder,
    fig11,
    fig12,
    fig13,
    reconstruct_exp,
    stream_buffer,
    stream_space,
    table1,
    table2,
)


class TestFig11:
    def test_paper_shape(self):
        rows = fig11.run_fig11(edge=16, memory_edges=(4, 8))
        # Vitter is flat in memory.
        vitter = {row["vitter_io"] for row in rows}
        assert len(vitter) == 1
        for row in rows:
            # In the paper's plotted regime SHIFT-SPLIT beats Vitter.
            assert row["shift_split_standard_io"] < row["vitter_io"]
            assert (
                row["shift_split_nonstandard_io"]
                < row["shift_split_standard_io"]
            )
        # Standard improves with memory.
        assert (
            rows[-1]["shift_split_standard_io"]
            < rows[0]["shift_split_standard_io"]
        )


class TestFig12:
    def test_paper_shape(self):
        rows = fig12.run_fig12(
            dataset_edges=(64, 128), tile_edges=(8, 16)
        )
        by_key = {
            (row["dataset_edge"], row["tile_edge"]): row for row in rows
        }
        # Larger tiles cost fewer blocks.
        assert (
            by_key[(128, 16)]["standard_block_io"]
            < by_key[(128, 8)]["standard_block_io"]
        )
        # Larger datasets cost more blocks.
        assert (
            by_key[(128, 8)]["standard_block_io"]
            > by_key[(64, 8)]["standard_block_io"]
        )
        # Non-standard never needs more blocks than standard.
        for row in rows:
            assert row["nonstandard_block_io"] <= row["standard_block_io"]


class TestFig13:
    def test_paper_shape(self):
        rows = fig13.run_fig13(months=9, tile_edges=(2, 8))
        jumps = {
            row["tile_edge"]: []
            for row in rows
        }
        steady = {row["tile_edge"]: [] for row in rows}
        for row in rows:
            (jumps if row["expanded"] else steady)[row["tile_edge"]].append(
                row["block_io"]
            )
        # Expansions are the spikes.
        for tile_edge in jumps:
            assert max(jumps[tile_edge]) > max(steady[tile_edge])
        # Larger tiles damp the spikes.
        assert max(jumps[8]) < max(jumps[2])


class TestTables:
    def test_table1_measured_close_to_formula(self):
        rows = table1.run_table1(configs=((1024, 64, 8, 1), (256, 16, 4, 2)))
        for row in rows:
            assert row["std_shift"] >= row["std_shift_formula"]
            # Geometric-series slack only: within 2x of the formula.
            assert row["std_shift"] <= 2 * row["std_shift_formula"] + 2
            assert row["ns_split"] <= row["ns_split_formula"] + 1

    def test_table2_ratios_are_stable(self):
        rows = table2.run_table2(edges=(64, 128))
        for column in ("vitter_ratio", "std_ratio", "ns_ratio"):
            values = [row[column] for row in rows]
            assert max(values) / min(values) < 1.2


class TestStreamExperiments:
    def test_buffer_sweep_matches_formula(self):
        rows = stream_buffer.run_stream_buffer(
            domain_log2=12, buffer_sizes=(1, 16, 256)
        )
        for row in rows:
            assert row["crest_updates_per_item"] == row["formula"]
            assert row["live_memory_coefficients"] <= row["memory_bound"]
        assert (
            rows[-1]["crest_updates_per_item"]
            < rows[0]["crest_updates_per_item"]
        )

    def test_space_bounds_hold(self):
        rows = stream_space.run_stream_space()
        for row in rows:
            assert row["measured_live"] <= row["bound"], row["result"]


class TestReconstructExperiment:
    def test_shift_split_beats_naive(self):
        rows = reconstruct_exp.run_reconstruct(
            edge=64, region_edges=(4, 16)
        )
        for row in rows:
            assert row["std_shift_split_io"] == row["std_formula"]
            assert row["ns_shift_split_io"] == row["ns_formula"]
            assert row["std_shift_split_io"] < row["pointwise_io"]
            assert row["std_shift_split_io"] < row["full_reconstruction_io"]


class TestAblations:
    def test_tiling_beats_naive_blocking(self):
        rows = ablation_tiling.run_ablation_tiling(edge=64, block_edge=4)
        tiled, scalings, naive = rows
        assert (
            tiled["point_blocks_per_query"]
            < naive["point_blocks_per_query"]
        )
        assert scalings["point_blocks_per_query"] == 1.0

    def test_zorder_minimises_buffer(self):
        rows = ablation_zorder.run_ablation_zorder(edge=32, chunk_edge=4)
        by_name = {row["configuration"]: row for row in rows}
        zorder = by_name["zorder + crest buffer"]
        rowmajor = by_name["rowmajor + crest buffer"]
        unbuffered = by_name["rowmajor, no buffer"]
        assert zorder["crest_buffer_peak"] < rowmajor["crest_buffer_peak"]
        assert zorder["coefficient_io"] == rowmajor["coefficient_io"]
        assert unbuffered["coefficient_io"] > zorder["coefficient_io"]
