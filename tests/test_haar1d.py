"""Unit and property tests for the 1-d Haar transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelet.haar1d import (
    detail_basis_norm,
    haar_dwt,
    haar_dwt_ortho,
    haar_idwt,
    haar_idwt_ortho,
    haar_step,
    haar_unstep,
    scaling_basis_norm,
)

power_of_two_vectors = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=1 << n,
        max_size=1 << n,
    )
)


class TestPaperExample:
    def test_section_2_1_running_example(self):
        """DWT({3,5,7,5}) = {5,-1,-1,1} — the paper's worked example."""
        result = haar_dwt([3.0, 5.0, 7.0, 5.0])
        assert np.allclose(result, [5.0, -1.0, -1.0, 1.0])

    def test_first_level_averages_and_differences(self):
        partial = haar_dwt([3.0, 5.0, 7.0, 5.0], levels=1)
        assert np.allclose(partial, [4.0, 6.0, -1.0, 1.0])


class TestRoundTrips:
    @given(power_of_two_vectors)
    @settings(max_examples=50)
    def test_unnormalised_roundtrip(self, values):
        data = np.asarray(values)
        assert np.allclose(haar_idwt(haar_dwt(data)), data, atol=1e-6)

    @given(power_of_two_vectors)
    @settings(max_examples=50)
    def test_ortho_roundtrip(self, values):
        data = np.asarray(values)
        assert np.allclose(haar_idwt_ortho(haar_dwt_ortho(data)), data, atol=1e-6)

    def test_partial_levels_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=32)
        for levels in range(6):
            assert np.allclose(
                haar_idwt(haar_dwt(data, levels=levels), levels=levels), data
            )

    def test_batched_last_axis(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 5, 16))
        transformed = haar_dwt(data)
        assert transformed.shape == data.shape
        for i in range(3):
            for j in range(5):
                assert np.allclose(transformed[i, j], haar_dwt(data[i, j]))


class TestInvariants:
    @given(power_of_two_vectors)
    @settings(max_examples=50)
    def test_ortho_preserves_energy(self, values):
        data = np.asarray(values)
        assert np.isclose(
            np.linalg.norm(haar_dwt_ortho(data)),
            np.linalg.norm(data),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(power_of_two_vectors)
    @settings(max_examples=50)
    def test_first_coefficient_is_mean(self, values):
        data = np.asarray(values)
        assert np.isclose(haar_dwt(data)[0], data.mean(), atol=1e-6)

    def test_linearity(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(2, 64))
        assert np.allclose(
            haar_dwt(2.0 * a - 3.0 * b), 2.0 * haar_dwt(a) - 3.0 * haar_dwt(b)
        )

    def test_conventions_relate_by_basis_norms(self):
        """ortho coefficient = unnormalised coefficient * basis norm."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=16)
        n = 4
        plain = haar_dwt(data)
        ortho = haar_dwt_ortho(data)
        assert np.isclose(ortho[0], plain[0] * scaling_basis_norm(n))
        for level in range(1, n + 1):
            width = 1 << (n - level)
            for k in range(width):
                assert np.isclose(
                    ortho[width + k],
                    plain[width + k] * detail_basis_norm(level),
                )


class TestStepHelpers:
    def test_step_then_unstep(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(4, 10))
        averages, details = haar_step(data)
        assert np.allclose(haar_unstep(averages, details), data)

    def test_step_rejects_odd_length(self):
        with pytest.raises(ValueError):
            haar_step(np.zeros(5))

    def test_unstep_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            haar_unstep(np.zeros(4), np.zeros(3))


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            haar_dwt(np.zeros(6))

    def test_bad_levels_rejected(self):
        with pytest.raises(ValueError):
            haar_dwt(np.zeros(8), levels=4)
        with pytest.raises(ValueError):
            haar_idwt(np.zeros(8), levels=-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            haar_dwt([])

    def test_basis_norm_validation(self):
        with pytest.raises(ValueError):
            detail_basis_norm(0)
        with pytest.raises(ValueError):
            scaling_basis_norm(-1)
