"""Tests for store persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.reconstruct.point import point_query_standard
from repro.storage.persist import (
    PersistFormatError,
    load_nonstandard_store,
    load_standard_store,
    save_nonstandard_store,
    save_standard_store,
)
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import transform_standard_chunked
from repro.wavelet.nonstandard import nonstandard_dwt


class TestStandardRoundTrip:
    def test_transform_survives(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(32, 16))
        store = TiledStandardStore((32, 16), block_edge=4, pool_capacity=64)
        transform_standard_chunked(store, data, (8, 8))
        path = tmp_path / "cube.npz"
        save_standard_store(store, path)

        reopened = load_standard_store(path, pool_capacity=16)
        assert np.allclose(reopened.to_array(), store.to_array())
        # And it answers queries.
        assert np.isclose(
            point_query_standard(reopened, (13, 7)), data[13, 7]
        )

    def test_reopened_store_counts_fresh_io(self, tmp_path):
        data = np.random.default_rng(1).normal(size=(16, 16))
        store = TiledStandardStore((16, 16), block_edge=4, pool_capacity=64)
        transform_standard_chunked(store, data, (8, 8))
        path = tmp_path / "cube.npz"
        save_standard_store(store, path)
        reopened = load_standard_store(path)
        assert reopened.stats.block_ios == 0  # loading is uncounted
        point_query_standard(reopened, (5, 5))
        assert reopened.stats.block_reads > 0

    def test_reopened_store_accepts_updates(self, tmp_path):
        from repro.update.batch import batch_update_standard
        from repro.wavelet.standard import standard_dwt

        data = np.random.default_rng(2).normal(size=(16, 16))
        store = TiledStandardStore((16, 16), block_edge=4, pool_capacity=64)
        transform_standard_chunked(store, data, (8, 8))
        path = tmp_path / "cube.npz"
        save_standard_store(store, path)
        reopened = load_standard_store(path, pool_capacity=64)
        deltas = np.ones((4, 4))
        batch_update_standard(reopened, deltas, (4, 8))
        reopened.flush()
        updated = data.copy()
        updated[4:8, 8:12] += 1.0
        assert np.allclose(reopened.to_array(), standard_dwt(updated))


class TestNonStandardRoundTrip:
    def test_transform_survives(self, tmp_path):
        data = np.random.default_rng(3).normal(size=(16, 16))
        store = TiledNonStandardStore(16, 2, block_edge=2, pool_capacity=64)
        apply_chunk_nonstandard(store, data, (0, 0))
        path = tmp_path / "ns.npz"
        save_nonstandard_store(store, path)
        reopened = load_nonstandard_store(path)
        assert np.allclose(reopened.to_array(), nonstandard_dwt(data))


class TestValidation:
    def test_kind_mismatch_rejected(self, tmp_path):
        store = TiledStandardStore((8, 8), block_edge=2)
        store.write_point((1, 1), 1.0)
        path = tmp_path / "cube.npz"
        save_standard_store(store, path)
        with pytest.raises(ValueError):
            load_nonstandard_store(path)


class TestHardening:
    """Version 2 files: checksum, version gate, restricted unpickler."""

    def _saved(self, tmp_path):
        data = np.random.default_rng(4).normal(size=(16, 16))
        store = TiledStandardStore((16, 16), block_edge=4, pool_capacity=64)
        transform_standard_chunked(store, data, (8, 8))
        path = tmp_path / "cube.npz"
        save_standard_store(store, path)
        return path

    def test_truncated_file_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistFormatError):
            load_standard_store(path)

    def test_not_an_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(PersistFormatError):
            load_standard_store(path)

    def test_bit_rot_fails_checksum(self, tmp_path):
        import io
        import zipfile

        path = self._saved(tmp_path)
        # Rewrite the blocks member with one perturbed value; the
        # archive stays structurally valid so only the content
        # checksum can catch it.
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        members["blocks"] = members["blocks"].copy()
        members["blocks"].flat[7] += 1e-6
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        path.write_bytes(buffer.getvalue())
        with pytest.raises(PersistFormatError, match="checksum"):
            load_standard_store(path)

    def test_unsupported_version_rejected(self, tmp_path):
        import io

        path = self._saved(tmp_path)
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        members["format_version"] = np.asarray([99])
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        path.write_bytes(buffer.getvalue())
        with pytest.raises(PersistFormatError, match="version"):
            load_standard_store(path)

    def test_missing_section_rejected(self, tmp_path):
        import io

        path = self._saved(tmp_path)
        with np.load(path) as archive:
            members = {
                name: archive[name]
                for name in archive.files
                if name != "directory"
            }
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        path.write_bytes(buffer.getvalue())
        with pytest.raises(PersistFormatError, match="missing"):
            load_standard_store(path)

    def test_disallowed_pickle_global_rejected(self, tmp_path):
        """A store file carrying executable pickle payloads is data
        smuggling code; the restricted unpickler must refuse it."""
        import io
        import pickle
        import zlib

        from repro.storage.persist import _content_checksum

        path = self._saved(tmp_path)
        with np.load(path) as archive:
            members = {name: archive[name] for name in archive.files}
        evil = pickle.dumps(getattr(zlib, "crc32"))  # any non-allowlisted global
        members["meta"] = np.frombuffer(evil, dtype=np.uint8)
        # Recompute the checksum so only the unpickler stands in the way.
        members["checksum"] = np.asarray(
            [
                _content_checksum(
                    members["blocks"],
                    evil,
                    members["directory"].tobytes(),
                )
            ],
            dtype=np.uint64,
        )
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        path.write_bytes(buffer.getvalue())
        with pytest.raises(PersistFormatError, match="disallowed"):
            load_standard_store(path)

    def test_version_1_file_still_loads(self, tmp_path):
        """Old files without a checksum stay readable (no silent
        re-interpretation, just no integrity check to run)."""
        import io

        path = self._saved(tmp_path)
        truth = load_standard_store(path).to_array()
        with np.load(path) as archive:
            members = {
                name: archive[name]
                for name in archive.files
                if name != "checksum"
            }
        members["format_version"] = np.asarray([1])
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        path.write_bytes(buffer.getvalue())
        reopened = load_standard_store(path)
        assert np.allclose(reopened.to_array(), truth)
