"""Process-parallel scatter pool: bit-identity, I/O parity, error paths.

The acceptance contract of :func:`transform_standard_procpool`:

* **Bit-identity** — raw device blocks, tile directory and decoded
  array all equal the serial cached load, for any worker count, on
  both device backends.
* **I/O parity** — block reads and writes equal a serial cached load
  whose pool holds the entire tile footprint (0 reads; each tile
  written exactly once).  Ownership partitioning is what makes this
  possible: no tile is ever touched by two workers, so nothing is
  read back, re-merged, or written twice.
* **Fail-fast validation** — wrapped devices, pre-populated stores and
  un-forkable configurations raise :class:`ProcPoolError` before any
  worker starts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plans import use_plans
from repro.storage.dense import DenseStandardStore
from repro.storage.journal import JournaledDevice
from repro.storage.mmap_device import MmapBlockDevice
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked
from repro.transform.procpool import (
    ProcPoolError,
    build_scatter_schedule,
    partition_ownership,
    transform_standard_procpool,
)

BLOCK_IO_FIELDS = ("block_reads", "block_writes", "journal_writes")


def _block_io(stats):
    return {field: getattr(stats, field) for field in BLOCK_IO_FIELDS}


def _serial_reference(shape, block_edge, data, chunk, **kwargs):
    """Serial cached load with the pool covering the whole footprint —
    the I/O-parity baseline (0 reads, one write per tile)."""
    store = TiledStandardStore(
        shape, block_edge=block_edge, pool_capacity=4096
    )
    transform_standard_chunked(store, data, chunk, **kwargs)
    store.flush()
    return store


def _procpool_store(shape, block_edge, data, chunk, device=None, **kwargs):
    store = TiledStandardStore(
        shape, block_edge=block_edge, pool_capacity=4096, device=device
    )
    transform_standard_procpool(store, data, chunk, **kwargs)
    return store


def _assert_same_store(reference, candidate):
    assert (
        candidate.tile_store.directory()
        == reference.tile_store.directory()
    )
    np.testing.assert_array_equal(
        candidate.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity check)
        reference.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity check)
    )
    np.testing.assert_array_equal(
        candidate.to_array(), reference.to_array()
    )


class TestBitIdentityAndParity:
    @settings(max_examples=6, deadline=None)
    @given(
        ndim=st.integers(1, 2),
        workers=st.integers(1, 3),
        seed=st.integers(0, 10**6),
    )
    def test_matches_serial_cached_bit_for_bit(self, ndim, workers, seed):
        shape = (32,) * ndim
        chunk = (8,) * ndim
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(shape)

        reference = _serial_reference(shape, 4, data, chunk)
        pooled = _procpool_store(
            shape, 4, data, chunk, workers=workers
        )
        _assert_same_store(reference, pooled)
        assert _block_io(pooled.stats) == _block_io(reference.stats)

    def test_block_io_is_write_once_read_never(self):
        shape, chunk = (64, 64), (16, 16)
        data = np.random.default_rng(2).standard_normal(shape)
        pooled = _procpool_store(shape, 8, data, chunk, workers=2)
        num_tiles = pooled.tile_store.num_tiles
        assert num_tiles > 0
        assert _block_io(pooled.stats) == {
            "block_reads": 0,
            "block_writes": num_tiles,
            "journal_writes": 0,
        }

    def test_zorder_traversal_matches_too(self):
        shape, chunk = (32, 32), (8, 8)
        data = np.random.default_rng(5).standard_normal(shape)
        reference = _serial_reference(
            shape, 4, data, chunk, order="zorder"
        )
        pooled = _procpool_store(
            shape, 4, data, chunk, order="zorder", workers=3
        )
        _assert_same_store(reference, pooled)

    def test_sparse_skip_matches_serial(self):
        shape, chunk = (64, 64), (16, 16)
        data = np.zeros(shape)
        data[:16, 32:48] = np.random.default_rng(9).standard_normal(
            (16, 16)
        )
        reference = _serial_reference(
            shape, 8, data, chunk, skip_zero_chunks=True
        )
        pooled = _procpool_store(
            shape, 8, data, chunk, skip_zero_chunks=True, workers=2
        )
        _assert_same_store(reference, pooled)
        assert _block_io(pooled.stats) == _block_io(reference.stats)

    def test_report_accounting_matches_serial(self):
        shape, chunk = (32, 32), (8, 8)
        data = np.random.default_rng(13).standard_normal(shape)
        serial_store = TiledStandardStore(
            shape, block_edge=4, pool_capacity=4096
        )
        serial = transform_standard_chunked(serial_store, data, chunk)
        pooled_store = TiledStandardStore(
            shape, block_edge=4, pool_capacity=4096
        )
        pooled = transform_standard_procpool(
            pooled_store, data, chunk, workers=2
        )
        assert pooled.chunks == serial.chunks
        assert pooled.source_reads == serial.source_reads
        assert pooled.extras["mode"] == "procpool"
        assert pooled.extras["workers"] == 2


class TestMmapBackend:
    def test_mmap_load_matches_memory_serial(self, tmp_path):
        shape, chunk = (32, 32), (8, 8)
        data = np.random.default_rng(21).standard_normal(shape)
        reference = _serial_reference(shape, 4, data, chunk)
        device = MmapBlockDevice(
            tmp_path / "arena.blocks", block_slots=16
        )
        pooled = _procpool_store(
            shape, 4, data, chunk, device=device, workers=2
        )
        _assert_same_store(reference, pooled)
        assert _block_io(pooled.stats) == _block_io(reference.stats)
        device.close()

    def test_mmap_load_survives_reopen(self, tmp_path):
        shape, chunk = (32, 32), (8, 8)
        data = np.random.default_rng(22).standard_normal(shape)
        path = tmp_path / "arena.blocks"
        device = MmapBlockDevice(path, block_slots=16)
        pooled = _procpool_store(
            shape, 4, data, chunk, device=device, workers=2
        )
        image = pooled.tile_store.device.dump_blocks()  # lint: uncounted (bit-identity check)
        device.close()
        with MmapBlockDevice(path) as reopened:
            np.testing.assert_array_equal(
                reopened.dump_blocks(),  # lint: uncounted (bit-identity check)
                image,
            )


class TestOwnershipPartitioning:
    def test_ranges_are_disjoint_and_cover_all_tiles(self):
        shape, chunk = (64, 64), (16, 16)
        data = np.random.default_rng(3).standard_normal(shape)
        store = TiledStandardStore(
            shape, block_edge=8, pool_capacity=4096
        )
        positions = [
            tuple(position)
            for position in np.ndindex(*(s // c for s, c in zip(shape, chunk)))
        ]
        schedule = build_scatter_schedule(
            tuple(shape), tuple(chunk), store.tiling, "rowmajor", positions
        )
        for workers in (1, 2, 3, 5):
            ownership = partition_ownership(
                schedule, store.tiling, workers
            )
            seen = np.concatenate([owned for owned in ownership])
            assert len(seen) == len(set(seen.tolist()))
            assert sorted(seen.tolist()) == list(
                range(schedule.num_tiles)
            )


class TestErrorPaths:
    def _fresh(self):
        return TiledStandardStore((16, 16), block_edge=4)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            transform_standard_procpool(
                self._fresh(), np.zeros((16, 16)), (8, 8), workers=0
            )

    def test_requires_tiled_store(self):
        with pytest.raises(ProcPoolError, match="tiled standard store"):
            transform_standard_procpool(
                DenseStandardStore((16, 16)), np.zeros((16, 16)), (8, 8)
            )

    def test_refuses_wrapped_devices(self):
        store = self._fresh()
        store.tile_store.wrap_device(JournaledDevice)
        with pytest.raises(ProcPoolError, match="JournaledDevice"):
            transform_standard_procpool(
                store, np.zeros((16, 16)), (8, 8)
            )

    def test_refuses_pre_populated_stores(self):
        store = self._fresh()
        store.write_point((0, 0), 1.0)
        store.flush()
        with pytest.raises(ProcPoolError, match="fresh"):
            transform_standard_procpool(
                store, np.zeros((16, 16)), (8, 8)
            )

    def test_refuses_skip_zero_with_callable_source(self):
        def getter(grid_position):
            return np.zeros((8, 8))

        with pytest.raises(ProcPoolError, match="callable"):
            transform_standard_procpool(
                self._fresh(), getter, (8, 8), skip_zero_chunks=True
            )

    def test_requires_plan_path(self):
        with use_plans(False):
            with pytest.raises(ProcPoolError, match="plans"):
                transform_standard_procpool(
                    self._fresh(), np.zeros((16, 16)), (8, 8)
                )

    def test_worker_failure_rolls_back_directory(self):
        # Blocks are pre-allocated and the directory restored before
        # the workers run; when a worker fails, the half-loaded store
        # must not masquerade as populated: the directory is cleared
        # and the error says the orphaned blocks need a fresh store.
        def getter(grid_position):
            raise RuntimeError("injected source failure")

        store = self._fresh()
        with pytest.raises(ProcPoolError, match="orphaned"):
            transform_standard_procpool(store, getter, (8, 8), workers=2)
        assert store.tile_store.num_tiles == 0
        # The allocation cursor cannot roll back — that is exactly why
        # the error demands a fresh store/device for the retry.
        assert store.tile_store.device.num_blocks > 0
