"""Unit and property tests for Morton (z-order) helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.morton import (
    morton_decode,
    morton_encode,
    rowmajor_chunks,
    zorder_chunks,
)


class TestMortonCodes:
    def test_known_2d_values(self):
        # Classic 2-d Morton: (x=1, y=0) -> 1, (0,1) -> 2, (1,1) -> 3.
        assert morton_encode((0, 0)) == 0
        assert morton_encode((1, 0)) == 1
        assert morton_encode((0, 1)) == 2
        assert morton_encode((1, 1)) == 3
        assert morton_encode((2, 0)) == 4

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**15), min_size=1, max_size=4
        )
    )
    def test_roundtrip(self, coords):
        code = morton_encode(coords)
        assert morton_decode(code, len(coords)) == tuple(coords)

    def test_encode_rejects_empty(self):
        with pytest.raises(ValueError):
            morton_encode(())

    def test_decode_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            morton_decode(5, 0)

    @given(
        st.integers(min_value=0, max_value=2**12),
        st.integers(min_value=0, max_value=2**12),
    )
    def test_2d_codes_order_subcubes(self, x, y):
        """All cells of a dyadic subcube come before any cell of a
        later sibling subcube — the property the crest buffer needs."""
        code = morton_encode((x, y))
        # The top-level quadrant index is the leading bit pair.
        quadrant = (x >= 2**12, y >= 2**12)
        __ = quadrant  # geometry checked by construction below
        assert morton_decode(code, 2) == (x, y)


class TestChunkWalks:
    def test_zorder_square(self):
        cells = list(zorder_chunks((2, 2)))
        assert cells == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_zorder_visits_everything_once(self):
        cells = list(zorder_chunks((4, 8)))
        assert len(cells) == 32
        assert len(set(cells)) == 32
        assert all(0 <= x < 4 and 0 <= y < 8 for x, y in cells)

    def test_zorder_completes_subcubes_in_order(self):
        """In z-order, once a 2x2 subcube's last cell is visited no
        earlier subcube cell appears later (finalisation safety)."""
        cells = list(zorder_chunks((4, 4)))
        last_seen = {}
        for step, (x, y) in enumerate(cells):
            last_seen[(x // 2, y // 2)] = step
        # Each subcube's 4 cells occupy 4 consecutive steps.
        firsts = {}
        for step, (x, y) in enumerate(cells):
            firsts.setdefault((x // 2, y // 2), step)
        for key in firsts:
            assert last_seen[key] - firsts[key] == 3

    def test_rowmajor_order(self):
        cells = list(rowmajor_chunks((2, 3)))
        assert cells == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_three_dimensional_walks_cover(self):
        zcells = set(zorder_chunks((2, 4, 2)))
        rcells = set(rowmajor_chunks((2, 4, 2)))
        assert zcells == rcells
        assert len(zcells) == 16

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            list(zorder_chunks(()))
        with pytest.raises(ValueError):
            list(zorder_chunks((0, 2)))
        with pytest.raises(ValueError):
            list(rowmajor_chunks((2, -1)))
