"""Tests for offline best-K synopses and error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopsis.compress import (
    best_k_nonstandard,
    best_k_standard,
    nonstandard_significance,
    standard_significance,
)
from repro.synopsis.error import max_abs_error, relative_l2_error, sse
from repro.wavelet.nonstandard import nonstandard_idwt
from repro.wavelet.standard import standard_idwt


class TestSignificanceWeights:
    def test_standard_weights_match_basis_norms(self):
        from repro.wavelet.standard import standard_basis_norm

        shape = (8, 16)
        weights = standard_significance(shape)
        rng = np.random.default_rng(0)
        for __ in range(20):
            position = tuple(
                int(rng.integers(0, extent)) for extent in shape
            )
            assert np.isclose(
                weights[position], standard_basis_norm(shape, position)
            )

    def test_nonstandard_weights_match_explicit_basis(self):
        size, ndim = 8, 2
        weights = nonstandard_significance(size, ndim)
        for position in [(0, 0), (1, 0), (4, 4), (7, 3), (2, 6)]:
            coeffs = np.zeros((size,) * ndim)
            coeffs[position] = 1.0
            assert np.isclose(
                weights[position],
                np.linalg.norm(nonstandard_idwt(coeffs)),
            )


class TestBestK:
    @given(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_standard_is_l2_optimal_among_transform_subsets(self, k, seed):
        """No other K-subset of coefficients reconstructs better
        (checked against random competitor subsets)."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(8, 8))
        sparse, estimate = best_k_standard(data, k)
        assert int((sparse != 0).sum()) <= k
        best_error = sse(estimate, data)
        from repro.wavelet.standard import standard_dwt

        hat = standard_dwt(data)
        for __ in range(5):
            competitor = np.zeros_like(hat)
            chosen = rng.choice(hat.size, size=min(k, hat.size), replace=False)
            competitor.ravel()[chosen] = hat.ravel()[chosen]
            assert (
                sse(standard_idwt(competitor), data) >= best_error - 1e-9
            )

    def test_full_k_is_exact(self):
        data = np.random.default_rng(1).normal(size=(16, 16))
        __, std = best_k_standard(data, data.size)
        __, ns = best_k_nonstandard(data, data.size)
        assert np.allclose(std, data)
        assert np.allclose(ns, data)

    def test_error_decreases_with_k(self):
        data = np.random.default_rng(2).normal(size=(16, 16)) + 3.0
        errors = [
            relative_l2_error(best_k_standard(data, k)[1], data)
            for k in (1, 8, 64, 256)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_k_zero_gives_zero_estimate(self):
        data = np.ones((8, 8))
        sparse, estimate = best_k_standard(data, 0)
        assert not sparse.any()
        assert not estimate.any()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            best_k_standard(np.ones((4, 4)), -1)
        with pytest.raises(ValueError):
            best_k_nonstandard(np.ones((4, 4)), -1)

    def test_matches_streaming_topk(self):
        """Offline best-K equals the streaming synopsis of the same
        data (the streaming machinery's reference)."""
        from repro.streams.stream1d import StreamSynopsis1D
        from repro.wavelet.haar1d import haar_dwt

        data = np.random.default_rng(3).normal(size=128)
        k = 10
        sparse, __ = best_k_standard(data, k)
        offline_keys = set(np.nonzero(sparse)[0])
        synopsis = StreamSynopsis1D(128, k=k, buffer_size=8)
        synopsis.extend(data)
        streaming_keys = set(synopsis.synopsis().keys())
        assert len(offline_keys & streaming_keys) >= k - 1  # ties


class TestErrorMetrics:
    def test_sse(self):
        assert sse([1.0, 2.0], [1.0, 4.0]) == 4.0

    def test_relative_l2(self):
        assert relative_l2_error([0.0, 0.0], [3.0, 4.0]) == 1.0
        assert relative_l2_error([3.0, 4.0], [3.0, 4.0]) == 0.0
        assert relative_l2_error([0.0], [0.0]) == 0.0
        assert relative_l2_error([1.0], [0.0]) == float("inf")

    def test_max_abs(self):
        assert max_abs_error([1.0, -5.0], [2.0, 0.0]) == 5.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            relative_l2_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            max_abs_error([1.0], [1.0, 2.0])


class TestThreshold:
    def test_error_equals_dropped_significance_energy(self):
        """SSE of the thresholded reconstruction == sum of squared
        dropped significances (orthogonality made concrete)."""
        from repro.synopsis.compress import (
            standard_significance,
            threshold_standard,
        )
        from repro.wavelet.standard import standard_dwt

        data = np.random.default_rng(7).normal(size=(16, 16))
        epsilon = 2.0
        sparse, estimate, kept = threshold_standard(data, epsilon)
        hat = standard_dwt(data)
        significance = np.abs(hat) * standard_significance(data.shape)
        dropped = significance[significance < epsilon]
        assert np.isclose(sse(estimate, data), float((dropped**2).sum()))
        assert kept == int((significance >= epsilon).sum())

    def test_zero_epsilon_keeps_everything(self):
        from repro.synopsis.compress import threshold_standard

        data = np.random.default_rng(8).normal(size=(8, 8))
        __, estimate, kept = threshold_standard(data, 0.0)
        assert np.allclose(estimate, data)
        assert kept == data.size

    def test_negative_epsilon_rejected(self):
        from repro.synopsis.compress import threshold_standard

        with pytest.raises(ValueError):
            threshold_standard(np.ones((4, 4)), -1.0)
