"""Tests for the chunk-organised source file."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.chunkfile import ChunkedDataFile
from repro.storage.dense import DenseStandardStore
from repro.transform.chunked import transform_standard_chunked
from repro.wavelet.standard import standard_dwt


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_from_array_roundtrip(self, seed):
        data = np.random.default_rng(seed).normal(size=(16, 24))
        chunked = ChunkedDataFile.from_array(data, (4, 8))
        assert chunked.data_shape == (16, 24)
        assert np.allclose(chunked.to_array(), data)

    def test_chunk_level_access(self):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        chunked = ChunkedDataFile.from_array(data, (4, 4))
        assert np.allclose(chunked.read_chunk((1, 0)), data[4:8, 0:4])

    def test_overwrite_chunk(self):
        chunked = ChunkedDataFile((2, 2), (2, 2))
        chunked.write_chunk((0, 1), np.ones((2, 2)))
        chunked.write_chunk((0, 1), np.full((2, 2), 7.0))
        assert np.allclose(chunked.read_chunk((0, 1)), 7.0)


class TestSparseness:
    def test_zero_chunks_are_not_materialised(self):
        data = np.zeros((16, 16))
        data[0:4, 0:4] = 1.0
        chunked = ChunkedDataFile.from_array(data, (4, 4))
        assert chunked.occupied_chunks == 1
        assert list(chunked.occupied()) == [(0, 0)]

    def test_absent_chunk_reads_zero_for_free(self):
        chunked = ChunkedDataFile((4, 4), (2, 2))
        before = chunked.stats.snapshot()
        block = chunked.read_chunk((3, 3))
        assert not block.any()
        assert chunked.stats.delta_since(before).block_ios == 0

    def test_disk_footprint_tracks_occupancy(self):
        dense = ChunkedDataFile.from_array(
            np.ones((16, 16)), (4, 4)
        )
        sparse_data = np.zeros((16, 16))
        sparse_data[0, 0] = 1.0
        sparse = ChunkedDataFile.from_array(sparse_data, (4, 4))
        assert (
            sparse.stats.block_writes < dense.stats.block_writes
        )


class TestAsSource:
    def test_drives_the_bulk_transform(self):
        data = np.random.default_rng(0).normal(size=(32, 32))
        chunked = ChunkedDataFile.from_array(data, (8, 8))
        chunked.stats.reset()
        store = DenseStandardStore((32, 32))
        transform_standard_chunked(
            store, chunked.as_chunk_source(), (8, 8)
        )
        assert np.allclose(store.to_array(), standard_dwt(data))
        # Every occupied chunk was read exactly once.
        assert chunked.stats.block_reads == 16

    def test_sparse_end_to_end(self):
        data = np.zeros((32, 32))
        data[8:16, 16:24] = np.random.default_rng(1).normal(size=(8, 8))
        chunked = ChunkedDataFile.from_array(data, (8, 8))
        chunked.stats.reset()
        store = DenseStandardStore((32, 32))
        report = transform_standard_chunked(
            store,
            chunked.as_chunk_source(),
            (8, 8),
            skip_zero_chunks=True,
        )
        assert np.allclose(store.to_array(), standard_dwt(data))
        assert report.chunks == 1
        assert report.extras["skipped_chunks"] == 15


class TestValidation:
    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            ChunkedDataFile((0, 2), (2, 2))
        with pytest.raises(ValueError):
            ChunkedDataFile((2,), (2, 2))

    def test_bad_chunk_shape_rejected(self):
        chunked = ChunkedDataFile((2, 2), (2, 2))
        with pytest.raises(ValueError):
            chunked.write_chunk((0, 0), np.ones((2, 4)))

    def test_out_of_grid_rejected(self):
        chunked = ChunkedDataFile((2, 2), (2, 2))
        with pytest.raises(ValueError):
            chunked.read_chunk((2, 0))

    def test_from_array_alignment_checked(self):
        with pytest.raises(ValueError):
            ChunkedDataFile.from_array(np.ones((10, 8)), (4, 4))
