"""Unit tests for the standard cross-product and non-standard quadtree
tilings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiling.nonstandard import NonStandardTiling
from repro.tiling.standard import StandardTiling
from repro.wavelet.keys import NonStandardKey


class TestStandardTiling:
    def test_block_slots(self):
        tiling = StandardTiling((32, 16), 4)
        assert tiling.block_slots == 16
        assert tiling.ndim == 2

    def test_num_tiles_is_per_dim_product(self):
        tiling = StandardTiling((32, 16), 4)
        assert (
            tiling.num_tiles
            == tiling.dim(0).num_tiles * tiling.dim(1).num_tiles
        )

    def test_locate_composes_per_dim(self):
        tiling = StandardTiling((16, 16), 4)
        key, slot = tiling.locate((5, 0))
        part0, slot0 = tiling.dim(0).locate_index(5)
        part1, slot1 = tiling.dim(1).locate_index(0)
        assert key == (part0, part1)
        assert slot == slot0 * 4 + slot1

    def test_locate_uniqueness(self):
        tiling = StandardTiling((8, 8), 2)
        seen = set()
        for position in np.ndindex(8, 8):
            key = tiling.locate(position)
            assert key not in seen
            seen.add(key)

    def test_rank_checked(self):
        tiling = StandardTiling((8, 8), 2)
        with pytest.raises(ValueError):
            tiling.locate((1,))

    def test_cross_product_tile_count_matches_bruteforce(self):
        tiling = StandardTiling((32, 32), 4)
        rng = np.random.default_rng(0)
        for __ in range(10):
            axes = [
                np.unique(rng.integers(0, 32, size=rng.integers(1, 10)))
                for __ in range(2)
            ]
            expected = {
                (
                    tiling.dim(0).locate_index(int(x))[0],
                    tiling.dim(1).locate_index(int(y))[0],
                )
                for x in axes[0]
                for y in axes[1]
            }
            assert tiling.tiles_of_cross_product(axes) == len(expected)

    def test_root_path_tiles_cross_product(self):
        tiling = StandardTiling((16, 16), 4)
        tiles = tiling.tiles_on_root_path((5, 9))
        per_dim = tiling.dim(0).num_bands
        assert len(tiles) == per_dim * per_dim


class TestNonStandardTiling:
    def test_block_slots_match_quadtree_arithmetic(self):
        """D^b = B^d coefficients per tile."""
        tiling = NonStandardTiling(32, 3, 4)
        assert tiling.block_slots == 64
        assert tiling.branching == 8

    def test_locate_key_uniqueness_and_coverage(self):
        """Every detail key maps to a unique (tile, slot); slots stay
        within the block."""
        tiling = NonStandardTiling(8, 2, 2)
        seen = set()
        for level in range(1, 4):
            width = 8 >> level
            for node in np.ndindex(width, width):
                for mask in range(1, 4):
                    key = NonStandardKey(level, tuple(node), mask)
                    tile, slot = tiling.locate_key(key)
                    assert 1 <= slot < tiling.block_slots
                    assert (tile, slot) not in seen
                    seen.add((tile, slot))
        assert len(seen) == 8 * 8 - 1

    def test_scaling_location(self):
        tiling = NonStandardTiling(16, 2, 4)
        tile, slot = tiling.locate_scaling()
        assert slot == 0
        assert tile[0] == tiling.num_bands - 1

    def test_keys_of_tile_inverts_locate(self):
        tiling = NonStandardTiling(16, 2, 4)
        for band in range(tiling.num_bands):
            side = 16 >> tiling.band_root_level(band)
            for root in np.ndindex(side, side):
                tile = (band, tuple(root))
                for key in tiling.keys_of_tile(tile):
                    located, __ = tiling.locate_key(key)
                    assert located == tile

    def test_tiles_of_subtree_matches_bruteforce(self):
        tiling = NonStandardTiling(16, 2, 2)
        level, node = 3, (1, 0)
        expected = set()
        for sub_level in range(1, level + 1):
            shift = level - sub_level
            for dx in range(1 << shift):
                for dy in range(1 << shift):
                    child = ((node[0] << shift) + dx, (node[1] << shift) + dy)
                    expected.add(tiling.tile_of_node(sub_level, child))
        assert set(tiling.tiles_of_subtree(level, node)) == expected

    def test_root_path_one_tile_per_band(self):
        tiling = NonStandardTiling(64, 2, 4)
        tiles = tiling.tiles_on_root_path((17, 42))
        assert len(tiles) == tiling.num_bands

    def test_validation(self):
        with pytest.raises(ValueError):
            NonStandardTiling(16, 0, 4)
        with pytest.raises(ValueError):
            NonStandardTiling(16, 2, 32)
        tiling = NonStandardTiling(16, 2, 4)
        with pytest.raises(ValueError):
            tiling.locate_key(NonStandardKey(1, (0, 0, 0), 1))
