"""Unit and property tests for dyadic intervals, boxes and covers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.dyadic import (
    DyadicBox,
    DyadicInterval,
    dyadic_box_cover,
    dyadic_cover,
)


class TestDyadicInterval:
    def test_geometry(self):
        interval = DyadicInterval(scale=3, translation=2)
        assert interval.length == 8
        assert interval.start == 16
        assert interval.stop == 24

    def test_from_range(self):
        interval = DyadicInterval.from_range(16, 24)
        assert interval.scale == 3
        assert interval.translation == 2

    def test_from_range_rejects_unaligned(self):
        with pytest.raises(ValueError):
            DyadicInterval.from_range(4, 12)  # length 8, start not aligned

    def test_from_range_rejects_non_power_length(self):
        with pytest.raises(ValueError):
            DyadicInterval.from_range(0, 6)

    def test_contains_and_overlaps(self):
        parent = DyadicInterval(3, 0)  # [0, 8)
        child = DyadicInterval(2, 1)  # [4, 8)
        outside = DyadicInterval(2, 2)  # [8, 12)
        assert parent.contains(child)
        assert not child.contains(parent)
        assert parent.overlaps(child)
        assert not parent.overlaps(outside)

    def test_parent_and_halves(self):
        interval = DyadicInterval(2, 3)  # [12, 16)
        assert interval.parent() == DyadicInterval(3, 1)
        left, right = interval.halves()
        assert left == DyadicInterval(1, 6)
        assert right == DyadicInterval(1, 7)
        assert left.is_left_child()
        assert not right.is_left_child()

    def test_scale_zero_has_no_halves(self):
        with pytest.raises(ValueError):
            DyadicInterval(0, 5).halves()

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            DyadicInterval(-1, 0)
        with pytest.raises(ValueError):
            DyadicInterval(0, -1)

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=100),
    )
    def test_nested_dyadic_laminarity(self, scale, translation):
        """Two dyadic intervals either nest or are disjoint."""
        first = DyadicInterval(scale, translation)
        second = DyadicInterval(max(0, scale - 2), translation * 3 + 1)
        if first.overlaps(second):
            assert first.contains(second) or second.contains(first)


class TestDyadicBox:
    def test_from_corner(self):
        box = DyadicBox.from_corner((8, 0), (8, 4))
        assert box.shape == (8, 4)
        assert box.starts == (8, 0)
        assert box.cells == 32
        assert not box.is_cubic()

    def test_cubic(self):
        assert DyadicBox.from_corner((4, 4), (4, 4)).is_cubic()

    def test_as_slices(self):
        box = DyadicBox.from_corner((8, 0), (8, 4))
        assert box.as_slices() == (slice(8, 16), slice(0, 4))

    def test_contains(self):
        outer = DyadicBox.from_corner((0, 0), (8, 8))
        inner = DyadicBox.from_corner((4, 0), (4, 4))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_from_corner_rejects_misaligned(self):
        with pytest.raises(ValueError):
            DyadicBox.from_corner((2,), (4,))


class TestDyadicCover:
    def test_paper_style_example(self):
        pieces = [(i.start, i.stop) for i in dyadic_cover(3, 9)]
        assert pieces == [(3, 4), (4, 8), (8, 9)]

    def test_empty_range(self):
        assert list(dyadic_cover(5, 5)) == []

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            list(dyadic_cover(5, 3))

    @given(
        st.integers(min_value=0, max_value=2000),
        st.integers(min_value=0, max_value=500),
    )
    def test_cover_partitions_range(self, start, length):
        stop = start + length
        pieces = list(dyadic_cover(start, stop))
        position = start
        for piece in pieces:
            assert piece.start == position  # contiguous, in order
            assert piece.start % piece.length == 0  # dyadic alignment
            position = piece.stop
        assert position == stop

    @given(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=1, max_value=2**16),
    )
    def test_cover_size_is_logarithmic(self, start, length):
        pieces = list(dyadic_cover(start, start + length))
        assert len(pieces) <= 2 * length.bit_length() + 2


class TestDyadicBoxCover:
    def test_cross_product_of_axis_covers(self):
        boxes = list(dyadic_box_cover((3, 0), (9, 4)))
        # Axis 0 cover has 3 pieces, axis 1 cover has 1.
        assert len(boxes) == 3
        cells = sum(box.cells for box in boxes)
        assert cells == 6 * 4

    def test_disjoint_and_covering(self):
        boxes = list(dyadic_box_cover((1, 2), (6, 7)))
        seen = set()
        for box in boxes:
            for x in range(box.intervals[0].start, box.intervals[0].stop):
                for y in range(box.intervals[1].start, box.intervals[1].stop):
                    assert (x, y) not in seen
                    seen.add((x, y))
        assert seen == {(x, y) for x in range(1, 6) for y in range(2, 7)}

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            list(dyadic_box_cover((0,), (4, 4)))
