"""Compiled per-tile gather/scatter vs the interpreted tiled region
path: same values, same tiles, same I/O; duplicate-index rejection at
compile time."""

import numpy as np
import pytest

from repro.storage.scatter import CompiledRegion, group_axis_indices
from repro.storage.tiled import TiledStandardStore
from repro.tiling.onedim import OneDimTiling


def _compile(shape, block_edge, axis_indices, tensor_shape=None):
    groups = [
        group_axis_indices(OneDimTiling(extent, block_edge), indices)
        for extent, indices in zip(shape, axis_indices)
    ]
    shape_of_block = tuple(len(ix) for ix in axis_indices)
    return CompiledRegion.from_axis_groups(
        groups,
        [0] * len(shape),
        tensor_shape or shape_of_block,
        block_edge,
    )


class TestGroupAxisIndices:
    def test_rejects_duplicates_at_compile_time(self):
        tiling = OneDimTiling(16, 4)
        with pytest.raises(ValueError):
            group_axis_indices(tiling, np.asarray([3, 5, 3]))

    def test_groups_sorted_by_band_and_root(self):
        tiling = OneDimTiling(16, 4)
        groups = group_axis_indices(tiling, np.arange(16))
        parts = [part for part, __, __ in groups]
        assert parts == sorted(parts)
        covered = sum(selector.size for __, selector, __ in groups)
        assert covered == 16


class TestCompiledRegionVsInterpreted:
    def test_scatter_set_matches_set_region(self):
        shape, block_edge = (16, 16), 4
        axis_indices = [np.asarray([1, 3, 6, 12]), np.asarray([0, 2, 9])]
        values = np.arange(12, dtype=np.float64).reshape(4, 3)

        interpreted = TiledStandardStore(shape, block_edge=block_edge)
        interpreted.set_region(axis_indices, values)

        compiled_store = TiledStandardStore(shape, block_edge=block_edge)
        region = _compile(shape, block_edge, axis_indices)
        region.scatter(
            compiled_store.tile_store, values.reshape(-1), accumulate=False
        )

        assert np.array_equal(
            interpreted.to_array(), compiled_store.to_array()
        )
        assert (
            interpreted.stats.snapshot() == compiled_store.stats.snapshot()
        )
        assert region.entries == values.size

    def test_scatter_accumulates_like_add_region(self):
        shape, block_edge = (16, 16), 4
        axis_indices = [np.asarray([0, 5, 10]), np.asarray([3, 8])]
        values = np.ones((3, 2))

        interpreted = TiledStandardStore(shape, block_edge=block_edge)
        interpreted.add_region(axis_indices, values)
        interpreted.add_region(axis_indices, 2.0 * values)

        compiled_store = TiledStandardStore(shape, block_edge=block_edge)
        region = _compile(shape, block_edge, axis_indices)
        region.scatter(
            compiled_store.tile_store, values.reshape(-1), accumulate=True
        )
        region.scatter(
            compiled_store.tile_store,
            (2.0 * values).reshape(-1),
            accumulate=True,
        )

        assert np.array_equal(
            interpreted.to_array(), compiled_store.to_array()
        )
        assert (
            interpreted.stats.snapshot() == compiled_store.stats.snapshot()
        )

    def test_gather_matches_read_region(self):
        shape, block_edge = (16, 16), 4
        rng = np.random.default_rng(9)
        full = rng.standard_normal(shape)
        store = TiledStandardStore(shape, block_edge=block_edge)
        store.set_region([np.arange(16), np.arange(16)], full)

        axis_indices = [np.asarray([2, 7, 13]), np.asarray([1, 4, 11, 14])]
        want = store.read_region(axis_indices)

        region = _compile(shape, block_edge, axis_indices)
        got = np.zeros((3, 4))
        region.gather(store.tile_store, got.reshape(-1))
        assert np.array_equal(got, want)

    def test_gather_skips_never_materialised_tiles(self):
        shape, block_edge = (16, 16), 4
        store = TiledStandardStore(shape, block_edge=block_edge)
        # Only write one corner tile; the rest of the domain is virgin.
        store.set_region([np.arange(2), np.arange(2)], np.ones((2, 2)))
        before = store.stats.snapshot()

        axis_indices = [np.asarray([0, 12]), np.asarray([0, 12])]
        region = _compile(shape, block_edge, axis_indices)
        out = np.full(4, -1.0)
        region.gather(store.tile_store, out)
        assert out[0] == 1.0
        # Missing tiles are skipped outright — the caller's (normally
        # zero-filled) buffer is left untouched there, and no block
        # reads are charged.
        assert np.array_equal(out[1:], [-1.0, -1.0, -1.0])
        assert store.stats.block_reads == before.block_reads
