"""Tests for the batched query planner.

The load-bearing property: the planner's per-query tile sets are the
*exact* blocks execution reads, so the dedup ratio is an I/O truth,
not an estimate.  Each query shape is checked cold against the block
counters.
"""

import numpy as np
import pytest

from repro.service.planner import plan_batch, tiles_for_query
from repro.service.queries import (
    CustomQuery,
    PointQuery,
    RangeSumQuery,
    RegionQuery,
    execute_query,
)
from repro.service.replay import build_store


@pytest.fixture(scope="module")
def loaded():
    store, data = build_store(
        shape=(32, 32), block_edge=4, pool_capacity=256, seed=1
    )
    return store, data


def _cold_block_reads(store, query) -> int:
    """Block reads of one query starting from an empty pool."""
    store.drop_cache()
    before = store.stats.snapshot()
    execute_query(store, query)
    return store.stats.delta_since(before).block_reads


def _materialised(store, tiles) -> int:
    """Planned tiles that actually exist on the device (never-written
    tiles read as zeros without I/O)."""
    return sum(
        1 for key in tiles if store.tile_store.block_of(key) is not None
    )


class TestFootprints:
    def test_point_query_footprint_matches_actual_reads(self, loaded):
        store, __ = loaded
        query = PointQuery((13, 27))
        tiles = tiles_for_query(store, query)
        assert _cold_block_reads(store, query) == _materialised(store, tiles)

    def test_range_sum_footprint_matches_actual_reads(self, loaded):
        store, __ = loaded
        query = RangeSumQuery((3, 8), (19, 30))
        tiles = tiles_for_query(store, query)
        assert _cold_block_reads(store, query) == _materialised(store, tiles)

    def test_region_footprint_matches_actual_reads(self, loaded):
        store, __ = loaded
        query = RegionQuery((5, 10), (13, 26))
        tiles = tiles_for_query(store, query)
        assert _cold_block_reads(store, query) == _materialised(store, tiles)

    def test_point_footprint_is_one_tile_per_band_pair(self, loaded):
        store, __ = loaded
        # 32 domain, block edge 4 (b=2): ceil(5/2) = 3 bands per axis,
        # so a point touches exactly 3 x 3 tiles (Lemma 1, tiled).
        tiles = tiles_for_query(store, PointQuery((0, 0)))
        assert len(tiles) == 9

    def test_custom_query_plans_empty(self, loaded):
        store, __ = loaded
        assert tiles_for_query(store, CustomQuery(lambda s: 0.0)) == frozenset()

    def test_point_query_rank_checked(self, loaded):
        store, __ = loaded
        with pytest.raises(ValueError):
            tiles_for_query(store, PointQuery((1, 2, 3)))


class TestBatchPlan:
    def test_identical_queries_dedup_perfectly(self, loaded):
        store, __ = loaded
        query = PointQuery((7, 7))
        plan = plan_batch(store, [query] * 5)
        assert plan.num_queries == 5
        assert plan.num_unique_tiles == len(tiles_for_query(store, query))
        assert plan.total_tile_refs == 5 * plan.num_unique_tiles
        assert plan.dedup_ratio == 5.0

    def test_disjoint_and_overlapping_queries(self, loaded):
        store, __ = loaded
        # Two far-apart points share at least the top-band tile.
        plan = plan_batch(store, [PointQuery((0, 0)), PointQuery((31, 31))])
        per_query = [len(p.tiles) for p in plan.plans]
        assert plan.total_tile_refs == sum(per_query)
        assert plan.num_unique_tiles < plan.total_tile_refs
        assert plan.dedup_ratio > 1.0

    def test_empty_batch(self, loaded):
        store, __ = loaded
        plan = plan_batch(store, [])
        assert plan.num_queries == 0
        assert plan.dedup_ratio == 1.0
        assert plan.report()["unique_tiles"] == 0

    def test_report_is_json_friendly(self, loaded):
        import json

        store, __ = loaded
        plan = plan_batch(store, [PointQuery((1, 2))])
        json.dumps(plan.report())

    def test_planning_charges_no_io(self, loaded):
        store, __ = loaded
        store.drop_cache()
        before = store.stats.snapshot()
        plan_batch(
            store,
            [
                PointQuery((3, 4)),
                RangeSumQuery((0, 0), (15, 15)),
                RegionQuery((0, 0), (8, 8)),
            ],
        )
        delta = store.stats.delta_since(before)
        assert delta.block_reads == 0
        assert delta.block_writes == 0


class TestValuesUnchanged:
    """Planner-driven execution must not perturb query semantics."""

    def test_query_values_match_ground_truth(self, loaded):
        store, data = loaded
        point = PointQuery((9, 21))
        box_sum = RangeSumQuery((2, 3), (17, 24))
        region = RegionQuery((4, 8), (12, 16))
        assert np.isclose(execute_query(store, point), data[9, 21])
        assert np.isclose(
            execute_query(store, box_sum), data[2:18, 3:25].sum()
        )
        assert np.allclose(
            execute_query(store, region), data[4:12, 8:16]
        )
