"""Guard: the README quickstart must actually run."""

import re
from pathlib import Path


def test_readme_quickstart_executes():
    readme = Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.S)
    assert blocks, "README must contain a python quickstart block"
    quickstart = blocks[0]
    namespace = {}
    exec(compile(quickstart, "README-quickstart", "exec"), namespace)
    # The quickstart builds a store and queries it.
    assert "store" in namespace


def test_readme_mentions_every_example():
    readme = Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    examples = Path(__file__).resolve().parent.parent / "examples"
    for script in examples.glob("*.py"):
        assert script.name in text, f"README must list {script.name}"
