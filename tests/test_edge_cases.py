"""Edge-case and stress tests across the stack: degenerate geometries,
minimal pools, maximal tiles, and the time model."""

import numpy as np
import pytest

from repro.append.appender import StandardAppender
from repro.core.standard_ops import apply_chunk_standard
from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.iostats import IOStats
from repro.storage.tiled import TiledStandardStore
from repro.tiling.onedim import OneDimTiling
from repro.tiling.nonstandard import NonStandardTiling
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.wavelet.haar1d import haar_dwt
from repro.wavelet.standard import standard_dwt


class TestDegenerateGeometries:
    def test_size_one_domain(self):
        """N = 1: the transform is the single value itself."""
        assert np.allclose(haar_dwt([7.0]), [7.0])
        store = DenseStandardStore((1,))
        apply_chunk_standard(store, np.asarray([3.0]), (0,))
        assert store.to_array()[0] == 3.0

    def test_chunk_equals_domain(self):
        """M = N: SHIFT is the identity, SPLIT touches only the
        average."""
        data = np.random.default_rng(0).normal(size=(8, 8))
        store = DenseStandardStore((8, 8))
        report_chunks = transform_standard_chunked(store, data, (8, 8))
        assert report_chunks.chunks == 1
        assert np.allclose(store.to_array(), standard_dwt(data))

    def test_single_cell_chunks(self):
        """M = 1: every chunk is pure SPLIT (the per-item stream
        regime)."""
        data = np.random.default_rng(1).normal(size=(4, 4))
        store = DenseStandardStore((4, 4))
        transform_standard_chunked(store, data, (1, 1))
        assert np.allclose(store.to_array(), standard_dwt(data))

    def test_one_dimensional_nonstandard_chunking(self):
        data = np.random.default_rng(2).normal(size=16)
        store = DenseNonStandardStore(16, 1)
        transform_nonstandard_chunked(store, data, 4)
        assert np.allclose(store.to_array(), haar_dwt(data))


class TestTilingExtremes:
    def test_block_edge_equals_domain(self):
        """b = n: one band, a single tile holds the whole tree."""
        tiling = OneDimTiling(16, 16)
        assert tiling.num_bands == 1
        assert tiling.num_tiles == 1
        for index in range(16):
            tile, slot = tiling.locate_index(index)
            assert tile == (0, 0)
            assert slot == index  # heap order == flat order at full size

    def test_minimal_block_edge(self):
        """b = 1: every detail is its own tile (with its scaling)."""
        tiling = OneDimTiling(8, 2)
        assert tiling.num_bands == 3
        assert tiling.num_tiles == 4 + 2 + 1

    def test_nonstandard_single_tile(self):
        tiling = NonStandardTiling(8, 2, 8)
        assert tiling.num_bands == 1
        assert tiling.num_tiles == 1
        assert tiling.block_slots == 64

    def test_store_with_whole_domain_tiles(self):
        data = np.random.default_rng(3).normal(size=(16, 16))
        store = TiledStandardStore((16, 16), block_edge=16, pool_capacity=2)
        transform_standard_chunked(store, data, (16, 16))
        assert np.allclose(store.to_array(), standard_dwt(data))
        # Everything fits in exactly one block.
        assert store.tile_store.num_tiles == 1


class TestExpansionUnderPoolPressure:
    def test_appender_with_single_block_pool(self):
        """Expansions must stay correct when the pool can hold one
        block: every tile round-trips through the device."""
        rng = np.random.default_rng(4)
        appender = StandardAppender(
            (4, 4),
            grow_axis=1,
            store_factory=lambda shape, stats: TiledStandardStore(
                shape, block_edge=2, pool_capacity=1, stats=stats
            ),
        )
        pieces = [rng.normal(size=(4, 4)) for __ in range(6)]
        for piece in pieces:
            appender.append(piece)
        extent = appender.domain_shape[1]
        full = np.zeros((4, extent))
        for index, piece in enumerate(pieces):
            full[:, index * 4 : (index + 1) * 4] = piece
        assert np.allclose(appender.to_array(), standard_dwt(full))


class TestTimeModel:
    def test_estimated_seconds_scales_with_transfers(self):
        one = IOStats(block_reads=1)
        many = IOStats(block_reads=100)
        assert many.estimated_seconds() == pytest.approx(
            100 * one.estimated_seconds()
        )

    def test_zero_io_is_zero_seconds(self):
        assert IOStats().estimated_seconds() == 0.0

    def test_parameters_validated(self):
        stats = IOStats(block_reads=1)
        with pytest.raises(ValueError):
            stats.estimated_seconds(block_bytes=0)
        with pytest.raises(ValueError):
            stats.estimated_seconds(transfer_mb_per_s=0)

    def test_seek_dominates_small_blocks(self):
        stats = IOStats(block_reads=10)
        fast_seek = stats.estimated_seconds(seek_ms=0.1)
        slow_seek = stats.estimated_seconds(seek_ms=20.0)
        assert slow_seek > fast_seek


class TestPartialLevelTransforms:
    def test_batched_partial_levels(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(3, 16))
        partial = haar_dwt(data, levels=2)
        # The first quarter holds level-2 scaling coefficients.
        expected_scaling = data.reshape(3, 4, 4).mean(axis=2)
        assert np.allclose(partial[:, :4], expected_scaling)

    def test_zero_levels_is_identity(self):
        data = np.random.default_rng(6).normal(size=8)
        assert np.allclose(haar_dwt(data, levels=0), data)
