"""Unit tests for the serving metrics registry."""

import threading

import pytest

from repro.service.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("served")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("served").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("served")

        def hammer():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == 2.5

    def test_percentiles_on_known_distribution(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0
        assert abs(histogram.percentile(0.5) - 50.0) <= 1.0
        assert abs(histogram.percentile(0.95) - 95.0) <= 1.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency").percentile(0.5) == 0.0

    def test_percentile_validates_quantile(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(1.5)

    def test_reservoir_thins_but_count_stays_exact(self):
        histogram = Histogram("latency", max_samples=16)
        for value in range(100):
            histogram.record(float(value))
        assert histogram.count == 100
        assert histogram.max == 99.0
        assert len(histogram._samples) <= 16

    def test_snapshot_keys(self):
        histogram = Histogram("latency")
        histogram.record(2.0)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert snap["count"] == 1
        assert snap["p99"] == 2.0


class TestRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("served") is registry.counter("served")
        assert registry.histogram("lat") is registry.histogram("lat")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.histogram("lat").record(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"served": 3}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("served").inc()
        registry.histogram("lat").record(0.25)
        json.dumps(registry.snapshot())  # must not raise
