"""Unit tests for the serving metrics registry.

The concurrent "hammer" tests double as lockset-sanitizer probes:
when ``REPRO_RACESAN=1`` the ``racesan.watching(...)`` blocks
instrument the metrics under test and fail the test on any data race
or guard-annotation mismatch.  With the switch off the blocks are
no-ops.
"""

import threading

import pytest

from repro.analysis import racesan
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("served")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("served").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter("served")

        def hammer():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        with racesan.watching(counter):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == 2.5

    def test_percentiles_on_known_distribution(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(1.0) == 100.0
        assert abs(histogram.percentile(0.5) - 50.0) <= 1.0
        assert abs(histogram.percentile(0.95) - 95.0) <= 1.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency").percentile(0.5) == 0.0

    def test_percentile_validates_quantile(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(1.5)

    def test_reservoir_thins_but_count_stays_exact(self):
        histogram = Histogram("latency", max_samples=16)
        for value in range(100):
            histogram.record(float(value))
        assert histogram.count == 100
        assert histogram.max == 99.0
        assert len(histogram._samples) <= 16

    def test_snapshot_keys(self):
        histogram = Histogram("latency")
        histogram.record(2.0)
        snap = histogram.snapshot()
        assert set(snap) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
        }
        assert snap["count"] == 1
        assert snap["sum"] == 2.0
        assert snap["p99"] == 2.0

    def test_thinning_keeps_early_samples(self):
        # Regression: the old reservoir halved with [::2] but kept
        # appending every later observation, so after one halving the
        # kept set was dominated by recent samples.  With stride
        # doubling the kept samples stay uniformly spread over the
        # whole sequence.
        histogram = Histogram("latency", max_samples=16)
        for value in range(1000):
            histogram.record(float(value))
        kept = histogram._samples
        assert 0 < len(kept) <= 16
        early = sum(1 for v in kept if v < 500.0)
        fraction = early / len(kept)
        assert 0.3 <= fraction <= 0.7, kept
        # The median estimate should land near the true median too.
        assert abs(histogram.percentile(0.5) - 500.0) <= 150.0

    def test_concurrent_records_exact_aggregates(self):
        histogram = Histogram("latency")

        def hammer():
            for value in range(1000):
                histogram.record(float(value))

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        with racesan.watching(histogram):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert histogram.count == 8000
        assert histogram.total == 8 * sum(range(1000))
        assert histogram.min == 0.0
        assert histogram.max == 999.0
        snap = histogram.snapshot()
        assert snap["count"] == 8000
        assert snap["sum"] == 8 * sum(range(1000))


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0
        gauge.set(5)
        assert gauge.value == 5.0
        gauge.add(2)
        gauge.add(-3)
        assert gauge.value == 4.0

    def test_concurrent_adds_are_not_lost(self):
        gauge = Gauge("depth")

        def hammer():
            for __ in range(1000):
                gauge.add(1)
            for __ in range(500):
                gauge.add(-1)

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        with racesan.watching(gauge):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert gauge.value == 8 * 500


class TestRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("served") is registry.counter("served")
        assert registry.gauge("depth") is registry.gauge("depth")
        assert registry.histogram("lat") is registry.histogram("lat")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").record(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"served": 3}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_labeled_counters_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", labels={"shard": 0}).inc(2)
        registry.counter("hits", labels={"shard": 1}).inc(5)
        registry.counter("hits").inc()
        # Label order must not matter for series identity.
        a = registry.counter("io", labels={"kind": "read", "tier": "hot"})
        b = registry.counter("io", labels={"tier": "hot", "kind": "read"})
        assert a is b
        snap = registry.snapshot()
        assert snap["counters"]['hits{shard="0"}'] == 2
        assert snap["counters"]['hits{shard="1"}'] == 5
        assert snap["counters"]["hits"] == 1

    def test_concurrent_registry_access(self):
        registry = MetricsRegistry()

        def hammer(shard):
            for __ in range(500):
                registry.counter("ops").inc()
                registry.counter("ops", labels={"shard": shard % 2}).inc()
                registry.gauge("depth").add(1)
                registry.histogram("lat").record(1.0)

        # Pre-create the series so the sanitizer can instrument the
        # shared metric objects (creation inside the threads would
        # happen after install).
        watched = (
            registry.counter("ops"),
            registry.counter("ops", labels={"shard": 0}),
            registry.counter("ops", labels={"shard": 1}),
            registry.gauge("depth"),
            registry.histogram("lat"),
        )
        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        with racesan.watching(*watched):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        snap = registry.snapshot()
        assert snap["counters"]["ops"] == 4000
        assert snap["counters"]['ops{shard="0"}'] == 2000
        assert snap["counters"]['ops{shard="1"}'] == 2000
        assert snap["gauges"]["depth"] == 4000.0
        assert snap["histograms"]["lat"]["count"] == 4000
        assert snap["histograms"]["lat"]["sum"] == 4000.0

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("served").inc()
        registry.histogram("lat").record(0.25)
        json.dumps(registry.snapshot())  # must not raise
