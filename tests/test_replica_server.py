"""End-to-end replication over live HTTP: a primary shipping its
journal, a replica bootstrapping from ``/replica/snapshot`` and
following ``/replica/stream``, read parity at equal replayed-group
position, 503 + ``Retry-After`` on replica writes, health-checked
failover with a real probe, and resumed writes on the new primary."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

import repro

from repro.replica.controller import FailoverController, http_health_probe
from repro.server.demo import build_demo_hub
from repro.server.http import spawn
from repro.server.hub import ServingHub


def _request(base, path, key=None, data=None, timeout=10):
    request = urllib.request.Request(base + path, data=data)
    if key is not None:
        request.add_header("X-API-Key", key)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers.items()),
            )
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            payload = json.loads(body)
        except ValueError:
            payload = {"raw": body.decode("utf-8", "replace")}
        return error.code, payload, dict(error.headers.items())


def _update_body(value=1.0):
    return json.dumps(
        {
            "deltas": [[value, value], [value, value]],
            "corner": {"time": 0, "region": 0},
        }
    ).encode("utf-8")


def _wait_caught_up(primary_hub, replica_hub, timeout_s=10.0):
    target = primary_hub.shipper.last_seq
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if replica_hub.follower.applied_seq >= target:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"replica stuck at {replica_hub.follower.applied_seq}, "
        f"primary at {target}: {replica_hub.replication_state()}"
    )


@pytest.fixture()
def pair():
    """A live primary (shipping) and a live replica following it."""
    primary = build_demo_hub(seed=23, size=16, replicate=True)
    primary_server, __ = spawn(primary)
    primary_base = "http://{}:{}".format(*primary_server.server_address)
    replica = ServingHub(
        replica_of=primary_base,
        primary_api_key="demo-admin-key",
        admin_key="demo-admin-key",
        replica_poll_s=0.02,
    )
    replica_server, __ = spawn(replica)
    replica_base = "http://{}:{}".format(*replica_server.server_address)
    yield primary, primary_base, primary_server, replica, replica_base
    for server in (primary_server, replica_server):
        try:
            server.shutdown()
            server.server_close()
        except Exception:
            pass
    replica.close()
    primary.close()


QUERY = "/cube/sales/aggregate?cut=time:0-7|region:0-7"


class TestReplicaServing:
    def test_bootstrap_parity_and_streamed_update_parity(self, pair):
        primary, primary_base, __, replica, replica_base = pair
        __, before_primary, ___ = _request(
            primary_base, QUERY, key="acme-key"
        )
        __, before_replica, ___ = _request(
            replica_base, QUERY, key="acme-key"
        )
        assert before_primary == before_replica  # snapshot bootstrap
        code, __, ___ = _request(
            primary_base,
            "/cube/sales/update",
            key="acme-key",
            data=_update_body(2.0),
        )
        assert code == 200
        _wait_caught_up(primary, replica)
        __, after_primary, ___ = _request(
            primary_base, QUERY, key="acme-key"
        )
        __, after_replica, ___ = _request(
            replica_base, QUERY, key="acme-key"
        )
        assert after_primary == after_replica  # bit-identical JSON
        assert after_primary != before_primary

    def test_replica_write_gets_503_with_retry_after(self, pair):
        __, ___, ____, _____, replica_base = pair
        code, payload, headers = _request(
            replica_base,
            "/cube/sales/update",
            key="acme-key",
            data=_update_body(),
        )
        assert code == 503
        assert payload["role"] == "replica"
        assert "Retry-After" in headers

    def test_healthz_and_metrics_surface_role_and_lag(self, pair):
        primary, primary_base, __, replica, replica_base = pair
        _wait_caught_up(primary, replica)
        code, health, __ = _request(replica_base, "/healthz")
        assert code == 200
        assert health["role"] == "replica"
        assert health["replication"]["lag_groups"] == 0
        assert health["replication"]["applied_seq"] >= 2
        code, primary_health, __ = _request(primary_base, "/healthz")
        assert primary_health["role"] == "primary"
        assert "shipper" in primary_health["replication"]
        request = urllib.request.Request(replica_base + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            metrics = response.read().decode("utf-8")
        assert "replica_role 1" in metrics
        assert "replica_lag_groups" in metrics

    def test_stream_requires_admin_key(self, pair):
        __, primary_base, ___, ____, _____ = pair
        code, __, ___ = _request(
            primary_base, "/replica/stream?after=0", key="acme-key"
        )
        assert code == 401

    def test_stale_cursor_is_told_to_resnapshot(self, pair):
        primary, primary_base, __, ___, ____ = pair
        request = urllib.request.Request(
            primary_base + "/replica/stream?after=-5",
            headers={"X-API-Key": "demo-admin-key"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Repro-Snapshot-Needed"] == "1"
            assert response.read() == b""

    def test_failover_promotes_and_writes_resume(self, pair):
        primary, primary_base, primary_server, replica, replica_base = pair
        code, __, ___ = _request(
            primary_base,
            "/cube/sales/update",
            key="acme-key",
            data=_update_body(3.0),
        )
        assert code == 200
        _wait_caught_up(primary, replica)
        __, last_primary_answer, ___ = _request(
            primary_base, QUERY, key="acme-key"
        )
        # kill the primary (server stops answering, probe goes dark)
        primary_server.shutdown()
        primary_server.server_close()
        controller = FailoverController(
            lambda: http_health_probe(primary_base, timeout_s=0.5),
            [replica],
            threshold=2,
            interval_s=0.05,
        )
        promoted = None
        for __ in range(5):
            promoted = controller.tick()
            if promoted is not None:
                break
        assert promoted is replica
        assert replica.role == "primary"
        assert controller.snapshot()["promotion_s"] is not None
        # the promoted arena serves the last acknowledged answer
        __, promoted_answer, ___ = _request(
            replica_base, QUERY, key="acme-key"
        )
        assert promoted_answer == last_primary_answer
        # and writes resume on the new primary
        code, __, ___ = _request(
            replica_base,
            "/cube/sales/update",
            key="acme-key",
            data=_update_body(1.0),
        )
        assert code == 200
        __, resumed_answer, ___ = _request(
            replica_base, QUERY, key="acme-key"
        )
        assert resumed_answer != promoted_answer


class TestReplicaProcessDeath:
    def test_sigkilled_primary_fails_over_to_live_replica(self, tmp_path):
        """The real thing: a primary *process* dies on SIGKILL mid-
        serving; the in-process replica (already caught up) promotes
        and serves the acknowledged state."""
        script = tmp_path / "primary.py"
        script.write_text(
            "import sys, os, signal, threading\n"
            "from repro.server.demo import build_demo_hub\n"
            "from repro.server.http import spawn\n"
            "hub = build_demo_hub(seed=23, size=16, replicate=True)\n"
            "server, thread = spawn(hub)\n"
            "print(server.server_address[1], flush=True)\n"
            "signal.pause()\n"
        )
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_root)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            port = int(proc.stdout.readline())
            primary_base = f"http://127.0.0.1:{port}"
            replica = ServingHub(
                replica_of=primary_base,
                primary_api_key="demo-admin-key",
                admin_key="demo-admin-key",
                replica_poll_s=0.02,
            )
            code, __, ___ = _request(
                primary_base,
                "/cube/sales/update",
                key="acme-key",
                data=_update_body(4.0),
            )
            assert code == 200
            __, acked_answer, ___ = _request(
                primary_base, QUERY, key="acme-key"
            )
            deadline = time.time() + 10
            while time.time() < deadline:
                state = replica.replication_state()
                if state.get("lag_groups") == 0 and state[
                    "applied_seq"
                ] >= 3:
                    break
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            controller = FailoverController(
                lambda: http_health_probe(primary_base, timeout_s=0.5),
                [replica],
                threshold=2,
                interval_s=0.05,
            )
            promoted = None
            for __ in range(5):
                promoted = controller.tick()
                if promoted is not None:
                    break
            assert promoted is replica
            replica_server, __ = spawn(replica)
            replica_base = "http://{}:{}".format(
                *replica_server.server_address
            )
            __, answer, ___ = _request(
                replica_base, QUERY, key="acme-key"
            )
            assert answer == acked_answer
            replica_server.shutdown()
            replica_server.server_close()
            replica.close()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
