"""Tests for the redundant per-tile scalings and single-block queries
(Section 3's query-cost claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reconstruct.scalings import (
    point_query_single_tile,
    populate_scalings_standard,
)
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked


def _loaded_store(shape, block_edge, seed=0, pool=512):
    data = np.random.default_rng(seed).normal(size=shape)
    store = TiledStandardStore(shape, block_edge=block_edge, pool_capacity=pool)
    chunk = tuple(min(8, extent) for extent in shape)
    transform_standard_chunked(store, data, chunk)
    return data, store


class TestPopulate:
    def test_writes_every_tile(self):
        __, store = _loaded_store((64,), 8)
        written = populate_scalings_standard(store)
        assert written == store.tiling.num_tiles

    def test_slot_zero_holds_the_subtree_scaling(self):
        """In 1-d, slot 0 of tile (band, p) must equal u_{r,p} — the
        average of the data over the subtree's support."""
        data, store = _loaded_store((64,), 8)
        populate_scalings_standard(store)
        tiling = store.tiling.dim(0)
        for band in range(tiling.num_bands):
            for root in range(tiling.tiles_in_band(band)):
                level, position = tiling.scaling_of_tile((band, root))
                stored = store.tile_store.read_slot(((band, root),), 0)
                expected = data[
                    position << level : (position + 1) << level
                ].mean()
                assert np.isclose(stored, expected), (band, root)

    def test_preserves_the_transform_itself(self):
        data, store = _loaded_store((32, 16), 4)
        before = store.to_array()
        populate_scalings_standard(store)
        assert np.allclose(store.to_array(), before)


class TestSingleTileQuery:
    @given(
        st.sampled_from([((64,), 8), ((32, 16), 4), ((16, 16), 4)]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=12, deadline=None)
    def test_exact_values(self, config, seed):
        shape, block_edge = config
        data, store = _loaded_store(shape, block_edge, seed=seed % 100)
        populate_scalings_standard(store)
        rng = np.random.default_rng(seed)
        for __ in range(5):
            position = tuple(
                int(rng.integers(0, extent)) for extent in shape
            )
            assert np.isclose(
                point_query_single_tile(store, position), data[position]
            )

    def test_exactly_one_block_read(self):
        data, store = _loaded_store((64, 64), 8)
        populate_scalings_standard(store)
        store.drop_cache()
        before = store.stats.snapshot()
        point_query_single_tile(store, (41, 13))
        assert store.stats.delta_since(before).block_reads == 1

    def test_out_of_domain_rejected(self):
        __, store = _loaded_store((16, 16), 4)
        populate_scalings_standard(store)
        with pytest.raises(ValueError):
            point_query_single_tile(store, (16, 0))
        with pytest.raises(ValueError):
            point_query_single_tile(store, (0,))
