"""The mmap device honours the exact simulated-device contract.

One parametrized suite runs the :class:`BlockDevice` invariants
(allocation, read/write cycles, IOStats math, bulk writes, the
uncounted persistence surface) against both backends; the rest covers
what only a file can do — reopen bit-identity after process exit,
torn-header CRC detection, geometry validation — and proves the
journal layer's torn-write detection runs unmodified on top.
"""

import os
import threading

import numpy as np
import pytest

from repro.storage.block_device import BlockDevice
from repro.storage.iostats import IOStats
from repro.storage.journal import CorruptBlockError, JournaledDevice
from repro.storage.mmap_device import (
    HEADER_BYTES,
    MAGIC,
    MmapBlockDevice,
    MmapFormatError,
)
from repro.storage.tiled import TiledStandardStore


@pytest.fixture(params=["memory", "mmap"])
def make_device(request, tmp_path):
    """A factory of fresh devices of the parametrized backend."""
    made = []
    counter = iter(range(10**6))

    def factory(block_slots, stats=None):
        if request.param == "memory":
            device = BlockDevice(block_slots, stats=stats)
        else:
            device = MmapBlockDevice(
                tmp_path / f"device-{next(counter)}.blocks",
                block_slots=block_slots,
                stats=stats,
            )
        made.append(device)
        return device

    yield factory
    for device in made:
        if hasattr(device, "close"):
            device.close()


class TestDeviceContract:
    """Invariants shared verbatim by both backends."""

    def test_ids_are_sequential(self, make_device):
        device = make_device(4)
        assert device.allocate() == 0
        assert device.allocate() == 1
        assert device.num_blocks == 2

    def test_allocation_charges_no_io(self, make_device):
        device = make_device(4)
        device.allocate()
        assert device.stats.block_ios == 0

    def test_fresh_block_reads_zero(self, make_device):
        device = make_device(4)
        block = device.allocate()
        assert np.array_equal(device.read_block(block), np.zeros(4))

    def test_write_then_read(self, make_device):
        device = make_device(4)
        block = device.allocate()
        payload = np.array([1.0, 2.0, 3.0, 4.0])
        device.write_block(block, payload)
        assert np.array_equal(device.read_block(block), payload)

    def test_read_returns_private_copy(self, make_device):
        device = make_device(2)
        block = device.allocate()
        device.write_block(block, np.array([1.0, 2.0]))
        copy = device.read_block(block)
        copy[0] = 99.0
        assert device.read_block(block)[0] == 1.0

    def test_io_counting(self, make_device):
        stats = IOStats()
        device = make_device(2, stats=stats)
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        device.read_block(block)
        device.read_block(block)
        assert stats.block_writes == 1
        assert stats.block_reads == 2
        assert stats.block_ios == 3

    def test_unallocated_block_rejected(self, make_device):
        device = make_device(2)
        with pytest.raises(KeyError):
            device.read_block(0)
        with pytest.raises(KeyError):
            device.write_block(5, np.zeros(2))

    def test_wrong_shape_rejected(self, make_device):
        device = make_device(4)
        block = device.allocate()
        with pytest.raises(ValueError):
            device.write_block(block, np.zeros(3))

    def test_bytes_used(self, make_device):
        device = make_device(16)
        device.allocate()
        device.allocate()
        assert device.bytes_used() == 2 * 16 * 8

    def test_write_blocks_bulk_contract(self, make_device):
        device = make_device(3)
        ids = np.array([device.allocate() for __ in range(4)])
        rows = np.arange(12, dtype=np.float64).reshape(4, 3)
        device.write_blocks(ids[[2, 0]], rows[:2])
        assert device.stats.block_writes == 2
        assert np.array_equal(device.read_block(2), rows[0])
        assert np.array_equal(device.read_block(0), rows[1])
        assert np.array_equal(device.read_block(1), np.zeros(3))
        with pytest.raises(KeyError):
            device.write_blocks(np.array([99]), rows[:1])
        with pytest.raises(ValueError):
            device.write_blocks(ids[:1], rows[:2])

    def test_dump_restore_roundtrip_uncounted(self, make_device):
        device = make_device(2)
        for value in (3.0, 7.0):
            block = device.allocate()
            device.write_block(block, np.array([value, -value]))
        before = device.stats.snapshot()
        image = device.dump_blocks()  # lint: uncounted (persistence test)
        fresh = make_device(2)
        fresh.restore_blocks(image)  # lint: uncounted (persistence test)
        assert device.stats.delta_since(before).block_ios == 0
        assert fresh.num_blocks == 2
        assert np.array_equal(fresh.read_block(1), np.array([7.0, -7.0]))

    def test_peek_is_uncounted(self, make_device):
        device = make_device(2)
        block = device.allocate()
        device.write_block(block, np.array([5.0, 6.0]))
        before = device.stats.snapshot()
        peeked = device.peek_block(block)  # lint: uncounted (test probe)
        assert np.array_equal(peeked, np.array([5.0, 6.0]))
        assert device.stats.delta_since(before).block_ios == 0

    def test_tiled_store_runs_on_either_backend(self, make_device):
        # The whole tile-store stack is device-agnostic: same writes,
        # same bytes, same counters.
        rng = np.random.default_rng(3)
        data = rng.standard_normal((8, 8))
        results = []
        for __ in range(2):
            store = TiledStandardStore(
                (8, 8),
                block_edge=4,
                pool_capacity=2,
                device=make_device(16),
            )
            for position in np.ndindex(8, 8):
                store.write_point(position, float(data[position]))
            store.flush()
            results.append(
                (
                    store.stats.snapshot(),
                    store.tile_store.device.dump_blocks(),  # lint: uncounted (bit-identity check)
                )
            )
        assert results[0][0] == results[1][0]
        np.testing.assert_array_equal(results[0][1], results[1][1])


class TestMmapPersistence:
    def _populate(self, path, blocks=5, slots=8, seed=11):
        rng = np.random.default_rng(seed)
        rows = rng.standard_normal((blocks, slots))
        with MmapBlockDevice(path, block_slots=slots) as device:
            for row in rows:
                device.write_block(device.allocate(), row)
        return rows

    def test_reopen_is_bit_identical(self, tmp_path):
        path = tmp_path / "arena.blocks"
        rows = self._populate(path)
        with MmapBlockDevice(path) as reopened:
            assert reopened.block_slots == 8
            assert reopened.num_blocks == 5
            image = reopened.dump_blocks()  # lint: uncounted (bit-identity check)
        np.testing.assert_array_equal(image, rows)

    def test_reopen_survives_growth(self, tmp_path):
        # Cross a couple of geometric resizes, then reopen.
        path = tmp_path / "grown.blocks"
        with MmapBlockDevice(
            path, block_slots=4, capacity_blocks=1
        ) as device:
            for index in range(37):
                device.write_block(
                    device.allocate(), np.full(4, float(index))
                )
        with MmapBlockDevice(path) as reopened:
            assert reopened.num_blocks == 37
            assert np.array_equal(reopened.read_block(36), np.full(4, 36.0))

    def test_mismatched_block_slots_rejected(self, tmp_path):
        path = tmp_path / "arena.blocks"
        self._populate(path, slots=8)
        with pytest.raises(MmapFormatError, match="slots"):
            MmapBlockDevice(path, block_slots=16)

    def test_torn_header_crc_detected(self, tmp_path):
        path = tmp_path / "arena.blocks"
        self._populate(path)
        with open(path, "r+b") as handle:
            handle.seek(16)  # inside the covered next_id field
            handle.write(b"\xff")
        with pytest.raises(MmapFormatError, match="CRC"):
            MmapBlockDevice(path)

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "arena.blocks"
        with open(path, "wb") as handle:
            handle.write(b"NOTADEV!" + b"\x00" * (HEADER_BYTES - 8))
        with pytest.raises(MmapFormatError, match="magic"):
            MmapBlockDevice(path)
        assert MAGIC not in b"NOTADEV!"

    def test_truncated_image_detected(self, tmp_path):
        path = tmp_path / "arena.blocks"
        self._populate(path, blocks=5, slots=8)
        os.truncate(path, HEADER_BYTES + 2 * 8 * 8)  # header claims 5
        with pytest.raises(MmapFormatError, match="truncated"):
            MmapBlockDevice(path)

    def test_short_file_detected(self, tmp_path):
        path = tmp_path / "arena.blocks"
        with open(path, "wb") as handle:
            handle.write(b"junk")
        with pytest.raises(MmapFormatError, match="header"):
            MmapBlockDevice(path)

    def test_view_block_is_zero_copy_and_leak_detected(self, tmp_path):
        device = MmapBlockDevice(
            tmp_path / "arena.blocks", block_slots=4
        )
        block = device.allocate()
        view = device.view_block(block)  # lint: uncounted (zero-copy probe)
        device.write_block(block, np.array([1.0, 2.0, 3.0, 4.0]))
        assert view[1] == 2.0  # aliases the mapping
        with pytest.raises(ValueError):
            view[0] = 9.0  # read-only
        with pytest.raises(BufferError):
            device.close()  # live export: refuse to unmap
        # The refused close is recoverable — the device stays usable.
        assert not device.closed
        assert device.read_block(block)[1] == 2.0
        del view
        device.close()
        assert device.closed


class TestResizeSafety:
    """Growth must neither tear concurrent readers nor brick the
    device when the BufferError leak detector fires."""

    def test_concurrent_readers_survive_growth(self, tmp_path):
        # The serving stack reads while a single writer grows the
        # arena: no read may observe the view mid-remap (TypeError)
        # and no reader's transient export may abort the resize
        # (BufferError).
        device = MmapBlockDevice(
            tmp_path / "arena.blocks", block_slots=8, capacity_blocks=1
        )
        payload = np.arange(8, dtype=np.float64)
        device.write_block(device.allocate(), payload)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    got = device.read_block(0)
                except Exception as exc:
                    failures.append(repr(exc))
                    return
                if not np.array_equal(got, payload):
                    failures.append(f"torn read: {got!r}")
                    return

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            # Doubling from capacity 1 crosses ~11 resizes under load.
            for index in range(2000):
                device.write_block(
                    device.allocate(), np.full(8, float(index))
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert failures == []
        assert device.num_blocks == 2001
        device.close()

    def test_failed_growth_restores_the_mapping(self, tmp_path):
        device = MmapBlockDevice(
            tmp_path / "arena.blocks", block_slots=4, capacity_blocks=1
        )
        first = device.allocate()
        payload = np.array([1.0, 2.0, 3.0, 4.0])
        device.write_block(first, payload)
        view = device.view_block(first)  # lint: uncounted (leaked on purpose)
        with pytest.raises(BufferError):
            device.allocate()  # growth blocked by the live export
        # The failed grow rolled back cleanly: no phantom block, and
        # reads/writes keep working on the restored mapping.
        assert device.num_blocks == 1
        assert np.array_equal(device.read_block(first), payload)
        del view
        second = device.allocate()  # the grow now succeeds
        device.write_block(second, np.full(4, 7.0))
        assert np.array_equal(device.read_block(second), np.full(4, 7.0))
        device.close()


class TestJournalOverMmap:
    def test_group_commit_and_checksums_run_unmodified(self, tmp_path):
        stats = IOStats()
        raw = MmapBlockDevice(
            tmp_path / "arena.blocks", block_slots=4, stats=stats
        )
        journaled = JournaledDevice(raw)
        ids = [journaled.allocate() for __ in range(3)]
        pairs = [
            (block_id, np.full(4, float(block_id + 1)))
            for block_id in ids
        ]
        journaled.write_batch(pairs)
        assert stats.journal_writes == len(pairs) + 1  # data + commit
        assert stats.block_writes == len(pairs)
        for block_id, payload in pairs:
            assert np.array_equal(journaled.read_block(block_id), payload)
        raw.close()

    def test_torn_block_write_detected_after_reopen(self, tmp_path):
        # A crash that tears a block's bytes on disk must surface as
        # CorruptBlockError through the journal layer on the next read.
        path = tmp_path / "arena.blocks"
        with MmapBlockDevice(path, block_slots=4) as raw:
            journaled = JournaledDevice(raw)
            block = journaled.allocate()
            journaled.write_block(block, np.array([1.0, 2.0, 3.0, 4.0]))
            summaries = {
                block: journaled.expected_summary(block).crc
            }
        with open(path, "r+b") as handle:
            handle.seek(HEADER_BYTES + 8)  # second slot of block 0
            handle.write(b"\xde\xad\xbe\xef\xde\xad\xbe\xef")
        reopened_raw = MmapBlockDevice(path)
        reopened = JournaledDevice(reopened_raw)
        # The rebuilt summary reflects the torn bytes; against the
        # journal's durable CRC the read must fail loudly.
        assert reopened.expected_summary(block).crc != summaries[block]
        fresh = JournaledDevice(reopened_raw)
        fresh._summaries[block] = type(
            fresh.expected_summary(block)
        )(crc=summaries[block], abs_sum=0.0)
        with pytest.raises(CorruptBlockError):
            fresh.read_block(block)
        reopened_raw.close()
