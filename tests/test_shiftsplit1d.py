"""Unit and property tests for the 1-d SHIFT and SPLIT operations —
the paper's central algebra (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shiftsplit1d import (
    axis_shift_split,
    shift_target_indices,
    split_contributions,
    split_weights,
)
from repro.wavelet.haar1d import haar_dwt

geometries = st.tuples(
    st.integers(min_value=0, max_value=8),  # m
    st.integers(min_value=0, max_value=4),  # extra levels (n - m)
).flatmap(
    lambda pair: st.tuples(
        st.just(1 << (pair[0] + pair[1])),  # N
        st.just(1 << pair[0]),  # M
        st.integers(min_value=0, max_value=(1 << pair[1]) - 1),  # k
    )
)


class TestAgainstDirectTransform:
    """The defining property: DWT of a zero vector with chunk b at
    dyadic slot k equals SHIFT(details of b̂) plus SPLIT(average)."""

    @given(geometries, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_shift_split_assembles_embedded_transform(
        self, geometry, seed
    ):
        size, chunk, translation = geometry
        rng = np.random.default_rng(seed)
        block = rng.normal(size=chunk)
        embedded = np.zeros(size)
        embedded[translation * chunk : (translation + 1) * chunk] = block
        direct = haar_dwt(embedded)

        assembled = np.zeros(size)
        block_hat = haar_dwt(block)
        targets = shift_target_indices(size, chunk, translation)
        for local in range(1, chunk):
            assembled[targets[local]] = block_hat[local]
        for index, delta in split_contributions(
            size, chunk, translation, float(block_hat[0])
        ):
            assembled[index] += delta
        assert np.allclose(assembled, direct)

    @given(geometries, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_axis_map_is_equivalent(self, geometry, seed):
        """The packed AxisShiftSplit reproduces the two raw maps."""
        size, chunk, translation = geometry
        rng = np.random.default_rng(seed)
        block_hat = haar_dwt(rng.normal(size=chunk))
        axis_map = axis_shift_split(size, chunk, translation)
        assembled = np.zeros(size)
        np.add.at(
            assembled,
            axis_map.target,
            block_hat[axis_map.source] * axis_map.weight,
        )
        # Rebuild via the raw maps for the comparison.
        expected = np.zeros(size)
        targets = shift_target_indices(size, chunk, translation)
        for local in range(1, chunk):
            expected[targets[local]] = block_hat[local]
        for index, delta in split_contributions(
            size, chunk, translation, float(block_hat[0])
        ):
            expected[index] += delta
        assert np.allclose(assembled, expected)


class TestShiftTargets:
    def test_identity_when_chunk_is_whole_domain(self):
        targets = shift_target_indices(16, 16, 0)
        assert targets[0] == -1
        assert np.array_equal(targets[1:], np.arange(1, 16))

    def test_level_preservation(self):
        """SHIFT re-indexes within the same level: w^b_{j,i} lands at
        w^a_{j, k 2^{m-j} + i}."""
        from repro.wavelet.layout import index_to_detail

        size, chunk, translation = 64, 8, 5
        targets = shift_target_indices(size, chunk, translation)
        for local in range(1, chunk):
            level_b, i = index_to_detail(3, local)
            level_a, k = index_to_detail(6, int(targets[local]))
            assert level_a == level_b
            assert k == translation * (1 << (3 - level_b)) + i

    def test_single_cell_chunk_has_no_shift(self):
        targets = shift_target_indices(8, 1, 3)
        assert targets.shape == (1,)
        assert targets[0] == -1

    def test_bad_translation_rejected(self):
        with pytest.raises(ValueError):
            shift_target_indices(16, 4, 4)
        with pytest.raises(ValueError):
            shift_target_indices(16, 32, 0)


class TestSplitWeights:
    def test_paper_magnitudes(self):
        """δw_{j,·} = ± u / 2^{j-m}, δu = u / 2^{n-m}."""
        size, chunk = 64, 8  # n = 6, m = 3
        indices, weights = split_weights(size, chunk, 0)
        assert len(indices) == 4  # levels 4, 5, 6 + scaling
        assert np.allclose(np.abs(weights), [1 / 2, 1 / 4, 1 / 8, 1 / 8])
        assert indices[-1] == 0

    def test_signs_track_halves(self):
        """A chunk in the right half of a support contributes
        negatively at that level."""
        indices, weights = split_weights(16, 4, 3)  # k=3: right, right
        assert np.allclose(weights, [-1 / 2, -1 / 4, 1 / 4])

    def test_whole_domain_chunk_only_touches_scaling(self):
        indices, weights = split_weights(8, 8, 0)
        assert list(indices) == [0]
        assert list(weights) == [1.0]

    @given(geometries)
    @settings(max_examples=40)
    def test_split_indices_lie_on_root_path(self, geometry):
        from repro.wavelet.layout import index_to_detail

        size, chunk, translation = geometry
        n = size.bit_length() - 1
        m = chunk.bit_length() - 1
        indices, __ = split_weights(size, chunk, translation)
        for index in indices[:-1]:
            level, position = index_to_detail(n, int(index))
            assert m < level <= n
            assert position == translation >> (level - m)


class TestAxisMapStructure:
    def test_entry_count_is_m_plus_n_minus_m(self):
        axis_map = axis_shift_split(64, 8, 2)
        assert axis_map.num_entries == 8 + (6 - 3)
        assert axis_map.num_shift == 7

    def test_inverse_weights_are_signs(self):
        axis_map = axis_shift_split(64, 8, 5)
        split = axis_map.split_slice()
        assert np.allclose(np.abs(axis_map.inverse_weight[split]), 1.0)
        assert np.allclose(
            np.sign(axis_map.weight[split][:-1]),
            axis_map.inverse_weight[split][:-1],
        )
