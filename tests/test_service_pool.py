"""Tests for the thread-safe sharded buffer pool."""

import threading

import numpy as np
import pytest

from repro.service.pool import ShardedBufferPool
from repro.storage.block_device import BlockDevice


def _make(num_blocks=16, capacity=8, shards=4, slots=4):
    device = BlockDevice(slots)
    for block in range(num_blocks):
        device.allocate()
        device.write_block(block, np.full(slots, float(block)))
    device.stats.reset()
    pool = ShardedBufferPool(device, capacity, num_shards=shards)
    return device, pool


class TestGeometry:
    def test_blocks_route_by_modulo(self):
        __, pool = _make(shards=4)
        assert pool.shard_of(0) == 0
        assert pool.shard_of(7) == 3
        assert pool.shard_of(9) == 1

    def test_every_shard_gets_at_least_one_frame(self):
        device = BlockDevice(2)
        pool = ShardedBufferPool(device, 2, num_shards=8)
        assert pool.capacity == 8  # max(capacity, num_shards)

    def test_validates_parameters(self):
        device = BlockDevice(2)
        with pytest.raises(ValueError):
            ShardedBufferPool(device, 0, num_shards=2)
        with pytest.raises(ValueError):
            ShardedBufferPool(device, 4, num_shards=0)


class TestCaching:
    def test_get_returns_device_contents(self):
        __, pool = _make()
        assert np.array_equal(pool.get(5), np.full(4, 5.0))

    def test_repeat_get_hits_local_and_shared_counters(self):
        device, pool = _make()
        pool.get(3)
        pool.get(3)
        assert device.stats.block_reads == 1
        assert device.stats.cache_hits == 1
        assert device.stats.cache_misses == 1
        snap = pool.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1

    def test_shard_stats_attribute_traffic_to_owner(self):
        __, pool = _make(shards=4)
        pool.get(1)  # shard 1
        pool.get(1)
        pool.get(2)  # shard 2
        stats = pool.shard_stats()
        assert stats[1]["misses"] == 1 and stats[1]["hits"] == 1
        assert stats[2]["misses"] == 1 and stats[2]["hits"] == 0
        assert stats[0]["misses"] == 0
        assert stats[1]["hit_rate"] == 0.5

    def test_eviction_is_per_shard(self):
        device, pool = _make(num_blocks=12, capacity=4, shards=4)
        # Blocks 0, 4, 8 all live on shard 0 with one frame: thrash it.
        pool.get(0)
        pool.get(4)
        pool.get(8)
        assert pool.shard_stats()[0]["evictions"] == 2
        # Other shards untouched.
        assert pool.shard_stats()[1]["evictions"] == 0


class TestWriteBack:
    def test_dirty_eviction_persists(self):
        device, pool = _make(num_blocks=8, capacity=4, shards=4)
        data = pool.get(0, for_write=True)
        data[:] = 99.0
        pool.get(4)  # shard 0 evicts block 0
        assert np.array_equal(device.read_block(0), np.full(4, 99.0))

    def test_flush_all_shards(self):
        device, pool = _make()
        pool.get(1, for_write=True)[0] = 7.0
        pool.get(2, for_write=True)[0] = 8.0
        writes_before = device.stats.block_writes
        pool.flush()
        assert device.stats.block_writes == writes_before + 2
        assert device.read_block(1)[0] == 7.0
        assert device.read_block(2)[0] == 8.0

    def test_mark_dirty_and_single_flush(self):
        device, pool = _make()
        data = pool.get(6)
        data[1] = 42.0
        pool.mark_dirty(6)
        pool.flush(6)
        assert device.read_block(6)[1] == 42.0

    def test_drop_all_empties_every_shard(self):
        __, pool = _make()
        for block in range(8):
            pool.get(block)
        pool.drop_all()
        assert pool.resident == 0


class TestPinning:
    def test_pinned_block_survives_shard_thrashing(self):
        device, pool = _make(num_blocks=16, capacity=4, shards=4)
        pool.fetch_and_pin(0)
        pool.get(4)
        pool.get(8)
        pool.get(12)  # shard 0 has 1 frame; pinned 0 must survive
        reads_before = device.stats.block_reads
        pool.get(0)  # must be a hit
        assert device.stats.block_reads == reads_before

    def test_fetch_and_pin_overflows_rather_than_evicting_itself(self):
        __, pool = _make(num_blocks=16, capacity=4, shards=4)
        # Shard 0 frames: pin more blocks than its capacity (1).
        for block in (0, 4, 8):
            pool.fetch_and_pin(block)
        stats = pool.shard_stats()[0]
        assert stats["resident"] == 3  # temporary overflow, nothing lost
        for block in (0, 4, 8):
            pool.unpin(block)
        # Unpinning shrinks the shard back to capacity.
        assert pool.shard_stats()[0]["resident"] == 1

    def test_unpin_unknown_block_raises(self):
        __, pool = _make()
        with pytest.raises(KeyError):
            pool.unpin(3)


class TestConcurrency:
    def test_parallel_reads_see_correct_data_and_exact_counters(self):
        device, pool = _make(num_blocks=16, capacity=8, shards=4)
        rounds = 200
        num_threads = 8
        errors = []
        barrier = threading.Barrier(num_threads)

        def hammer(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for __ in range(rounds):
                block = int(rng.integers(0, 16))
                data = pool.get(block)
                if data[0] != float(block):
                    errors.append((block, float(data[0])))

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every lookup is either a hit or a miss — none lost to races.
        snap = pool.snapshot()
        assert snap["hits"] + snap["misses"] == rounds * num_threads
        assert device.stats.cache_hits + device.stats.cache_misses == (
            rounds * num_threads
        )
        # Every miss faulted exactly one device read.
        assert device.stats.block_reads == snap["misses"]

    def test_parallel_writers_do_not_lose_dirty_data(self):
        device, pool = _make(num_blocks=8, capacity=8, shards=4)

        def writer(block):
            data = pool.get(block, for_write=True)
            data[:] = float(block) * 10.0

        threads = [
            threading.Thread(target=writer, args=(block,))
            for block in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.flush()
        for block in range(8):
            assert np.array_equal(
                device.read_block(block), np.full(4, block * 10.0)
            )
