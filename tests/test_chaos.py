"""Replication chaos matrix (the tentpole proof).

For every kill site in the shipper/commit interleaving — journal
appends, frame construction, half-delivered frames, post-commit
apply/checkpoint — the promoted follower must be bit-identical to a
committed golden prefix covering every acknowledged flush, with a
clean checksum scan.  Run on both the in-memory and the mmap backend.
"""

import pytest

from repro.fault.chaos import run_chaos_matrix
from repro.storage.mmap_device import MmapBlockDevice

BLOCK_EDGE = 4


@pytest.fixture(params=["memory", "mmap"])
def make_device(request, tmp_path):
    if request.param == "memory":
        return None
    counter = iter(range(10**6))
    return lambda: MmapBlockDevice(
        tmp_path / f"arena-{next(counter)}.blocks",
        block_slots=BLOCK_EDGE * BLOCK_EDGE,
    )


class TestChaosMatrix:
    def test_every_kill_site_promotes_to_a_committed_prefix(
        self, make_device
    ):
        report = run_chaos_matrix(
            make_device=make_device, batches=2, block_edge=BLOCK_EDGE
        )
        assert report.sites > 0
        assert len(report.results) == report.sites
        assert report.acked_losses == [], (
            f"acked updates lost at sites "
            f"{[(r.site, r.site_name) for r in report.acked_losses]}"
        )
        assert report.unclean == [], (
            f"unclean promotion scans at "
            f"{[(r.site, r.site_name) for r in report.unclean]}"
        )
        # The matrix must have exercised both outcomes: kills before
        # frame delivery land at the ack horizon, kills after land
        # ahead of it.
        assert report.outcomes == {"at_ack", "ahead"}
        assert report.ok

    def test_ship_sites_are_part_of_the_matrix(self, make_device):
        report = run_chaos_matrix(
            make_device=make_device, batches=1, block_edge=BLOCK_EDGE
        )
        names = {result.site_name for result in report.results}
        assert "ship.framed" in names
        assert "ship.sink0.torn" in names
        assert "ship.sink0.sent" in names

    def test_reduced_stride_matrix_for_smoke(self):
        report = run_chaos_matrix(batches=1, site_stride=7)
        assert 0 < len(report.results) < report.sites
        assert report.acked_losses == []
        assert report.unclean == []
