"""Tests for multidimensional standard-form SHIFT-SPLIT application and
inverse (Sections 4.1 and 5.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_ops import (
    apply_chunk_standard,
    chunk_axis_maps,
    contribution_tensor,
    extract_region_standard,
    shift_split_region_counts,
)
from repro.storage.dense import DenseStandardStore
from repro.wavelet.standard import standard_dwt

configurations = st.lists(
    st.tuples(
        st.sampled_from([1, 2]),  # log2 chunk extent
        st.integers(min_value=0, max_value=2),  # extra levels
    ),
    min_size=1,
    max_size=3,
)


def _geometry(config):
    domain = tuple(1 << (m + extra) for m, extra in config)
    chunk = tuple(1 << m for m, __ in config)
    return domain, chunk


class TestChunkedAssembly:
    @given(configurations, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_all_chunks_assemble_full_transform(self, config, seed):
        domain, chunk = _geometry(config)
        data = np.random.default_rng(seed).normal(size=domain)
        store = DenseStandardStore(domain)
        grid = tuple(n // m for n, m in zip(domain, chunk))
        for position in np.ndindex(*grid):
            selector = tuple(
                slice(g * m, (g + 1) * m) for g, m in zip(position, chunk)
            )
            apply_chunk_standard(store, data[selector], position)
        assert np.allclose(store.to_array(), standard_dwt(data))

    def test_update_mode_accumulates(self):
        """fresh=False implements Example 2: batch updates add to an
        existing transform."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=(16, 16))
        delta = rng.normal(size=(4, 4))
        store = DenseStandardStore((16, 16))
        apply_chunk_standard(store, base, (0, 0), fresh=True)
        apply_chunk_standard(store, delta, (2, 1), fresh=False)
        updated = base.copy()
        updated[8:12, 4:8] += delta
        assert np.allclose(store.to_array(), standard_dwt(updated))

    def test_pretransformed_chunk_accepted(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(8,))
        store = DenseStandardStore((16,))
        apply_chunk_standard(
            store, standard_dwt(data), (1,), chunk_is_transformed=True
        )
        expected = np.zeros(16)
        expected[8:] = data
        assert np.allclose(store.to_array(), standard_dwt(expected))

    def test_rank_mismatch_rejected(self):
        store = DenseStandardStore((8, 8))
        with pytest.raises(ValueError):
            apply_chunk_standard(store, np.zeros((4,)), (0,))


class TestContributionTensor:
    def test_counts_match_section_4_1(self):
        """SHIFT affects (M-1)^d coefficients; SPLIT
        (M + n - m)^d - (M-1)^d."""
        counts = shift_split_region_counts((64, 64), (8, 8))
        assert counts["shift"] == 7 * 7
        assert counts["total"] == (8 + 3) ** 2
        assert counts["split"] == 11**2 - 49

    def test_tensor_shape(self):
        maps = chunk_axis_maps((64, 32), (8, 4), (0, 0))
        tensor = contribution_tensor(np.zeros((8, 4)), maps)
        assert tensor.shape == (8 + 3, 4 + 3)


class TestExtraction:
    @given(configurations, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_extract_inverts_any_dyadic_region(self, config, seed):
        domain, chunk = _geometry(config)
        rng = np.random.default_rng(seed)
        data = rng.normal(size=domain)
        store = DenseStandardStore(domain)
        apply_chunk_standard(store, data, (0,) * len(domain))
        grid = tuple(n // m for n, m in zip(domain, chunk))
        position = tuple(int(rng.integers(0, g)) for g in grid)
        corner = tuple(g * m for g, m in zip(position, chunk))
        region = extract_region_standard(store, corner, chunk)
        selector = tuple(
            slice(c, c + m) for c, m in zip(corner, chunk)
        )
        assert np.allclose(region, data[selector])

    def test_misaligned_corner_rejected(self):
        store = DenseStandardStore((16, 16))
        with pytest.raises(ValueError):
            extract_region_standard(store, (2, 0), (4, 4))

    def test_extraction_cost_matches_result_6(self):
        """(M + log(N/M))^d coefficient reads."""
        rng = np.random.default_rng(9)
        data = rng.normal(size=(64, 64))
        store = DenseStandardStore((64, 64))
        apply_chunk_standard(store, data, (0, 0))
        store.stats.reset()
        extract_region_standard(store, (16, 32), (8, 8))
        assert store.stats.coefficient_reads == (8 + 3) ** 2
