"""Tests for range-sum estimation straight from a stream synopsis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.stream1d import StreamSynopsis1D


class TestStreamRangeSum:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_exact_with_full_k(self, data_strategy):
        size = 128
        seed = data_strategy.draw(st.integers(0, 100))
        stream = np.random.default_rng(seed).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=8)
        synopsis.extend(stream)
        low = data_strategy.draw(st.integers(0, size - 1))
        high = data_strategy.draw(st.integers(low, size - 1))
        estimate = synopsis.range_sum_estimate(low, high)
        assert np.isclose(estimate, stream[low : high + 1].sum())

    def test_exact_on_seen_prefix_with_crest(self):
        size = 256
        stream = np.random.default_rng(1).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=16)
        synopsis.extend(stream[:160])
        # Ranges inside the seen prefix are exact when crest included.
        assert np.isclose(
            synopsis.range_sum_estimate(10, 150),
            stream[10:151].sum(),
        )

    def test_small_k_estimate_is_reasonable(self):
        """With few terms on smooth data, relative error stays small."""
        size = 1024
        time = np.arange(size)
        stream = 50.0 + np.sin(2 * np.pi * time / size) * 10.0
        synopsis = StreamSynopsis1D(size, k=16, buffer_size=32)
        synopsis.extend(stream)
        truth = stream[100:900].sum()
        estimate = synopsis.range_sum_estimate(100, 899)
        assert abs(estimate - truth) / abs(truth) < 0.05

    def test_crest_flag(self):
        size = 64
        stream = np.random.default_rng(2).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=4)
        synopsis.extend(stream[:32])
        with_crest = synopsis.range_sum_estimate(0, 31, include_crest=True)
        without = synopsis.range_sum_estimate(0, 31, include_crest=False)
        assert np.isclose(with_crest, stream[:32].sum())
        assert not np.isclose(without, with_crest)

    def test_invalid_range_rejected(self):
        synopsis = StreamSynopsis1D(16, k=4)
        with pytest.raises(ValueError):
            synopsis.range_sum_estimate(8, 4)
