"""Tests for the non-standard per-tile scalings and single-block
queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.reconstruct.scalings_ns import (
    point_query_single_tile_nonstandard,
    populate_scalings_nonstandard,
)
from repro.storage.tiled import TiledNonStandardStore


def _loaded(size, ndim, block_edge, seed=0):
    data = np.random.default_rng(seed).normal(size=(size,) * ndim)
    store = TiledNonStandardStore(
        size, ndim, block_edge=block_edge, pool_capacity=512
    )
    apply_chunk_nonstandard(store, data, (0,) * ndim)
    return data, store


class TestPopulate:
    def test_writes_every_tile(self):
        __, store = _loaded(16, 2, 4)
        assert populate_scalings_nonstandard(store) == store.tiling.num_tiles

    def test_slot_zero_is_the_support_average(self):
        data, store = _loaded(16, 2, 2)
        populate_scalings_nonstandard(store)
        tiling = store.tiling
        for band in range(tiling.num_bands):
            root_level = tiling.band_root_level(band)
            edge = 1 << root_level
            side = 16 >> root_level
            for root in np.ndindex(side, side):
                stored = store.tile_store.read_slot((band, tuple(root)), 0)
                expected = data[
                    root[0] * edge : (root[0] + 1) * edge,
                    root[1] * edge : (root[1] + 1) * edge,
                ].mean()
                assert np.isclose(stored, expected), (band, root)

    def test_preserves_the_transform(self):
        data, store = _loaded(16, 2, 4)
        before = store.to_array()
        populate_scalings_nonstandard(store)
        assert np.allclose(store.to_array(), before)


class TestSingleTileQuery:
    @given(
        st.sampled_from([(16, 2, 2), (8, 3, 2), (32, 1, 4)]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=12, deadline=None)
    def test_exact_values(self, config, seed):
        size, ndim, block_edge = config
        data, store = _loaded(size, ndim, block_edge, seed=seed % 50)
        populate_scalings_nonstandard(store)
        rng = np.random.default_rng(seed)
        for __ in range(5):
            position = tuple(
                int(rng.integers(0, size)) for __ in range(ndim)
            )
            assert np.isclose(
                point_query_single_tile_nonstandard(store, position),
                data[position],
            )

    def test_one_block_read(self):
        data, store = _loaded(16, 2, 4)
        populate_scalings_nonstandard(store)
        store.drop_cache()
        before = store.stats.snapshot()
        point_query_single_tile_nonstandard(store, (9, 3))
        assert store.stats.delta_since(before).block_reads == 1

    def test_bounds_checked(self):
        __, store = _loaded(16, 2, 4)
        populate_scalings_nonstandard(store)
        with pytest.raises(ValueError):
            point_query_single_tile_nonstandard(store, (16, 0))
        with pytest.raises(ValueError):
            point_query_single_tile_nonstandard(store, (0,))
