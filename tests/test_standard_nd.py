"""Unit and property tests for the standard multidimensional form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelet.standard import (
    standard_basis_norm,
    standard_dwt,
    standard_dwt_axis,
    standard_idwt,
)

shapes = st.lists(
    st.sampled_from([2, 4, 8, 16]), min_size=1, max_size=3
).map(tuple)


class TestRoundTrip:
    @given(shapes, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, shape, seed):
        data = np.random.default_rng(seed).normal(size=shape)
        assert np.allclose(standard_idwt(standard_dwt(data)), data)

    def test_non_square_shapes(self):
        data = np.random.default_rng(0).normal(size=(4, 32, 8))
        assert np.allclose(standard_idwt(standard_dwt(data)), data)


class TestStructure:
    def test_axis_order_independence(self):
        """Per-dimension decompositions commute."""
        data = np.random.default_rng(1).normal(size=(8, 8))
        ab = standard_dwt_axis(standard_dwt_axis(data, 0), 1)
        ba = standard_dwt_axis(standard_dwt_axis(data, 1), 0)
        assert np.allclose(ab, ba)
        assert np.allclose(ab, standard_dwt(data))

    def test_origin_is_grand_mean(self):
        data = np.random.default_rng(2).normal(size=(16, 8))
        assert np.isclose(standard_dwt(data)[0, 0], data.mean())

    def test_separability(self):
        """The transform of an outer product is the outer product of
        the 1-d transforms."""
        from repro.wavelet.haar1d import haar_dwt

        rng = np.random.default_rng(3)
        u, v = rng.normal(size=8), rng.normal(size=16)
        outer = np.outer(u, v)
        assert np.allclose(
            standard_dwt(outer), np.outer(haar_dwt(u), haar_dwt(v))
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            standard_dwt(np.zeros((4, 6)))


class TestBasisNorm:
    def test_matches_explicit_basis_vector(self):
        """standard_basis_norm equals the L2 norm of the actual basis
        function: put a 1 at one coefficient and invert."""
        shape = (8, 16)
        rng = np.random.default_rng(4)
        for __ in range(20):
            position = tuple(rng.integers(0, extent) for extent in shape)
            coeffs = np.zeros(shape)
            coeffs[position] = 1.0
            basis_function = standard_idwt(coeffs)
            assert np.isclose(
                np.linalg.norm(basis_function),
                standard_basis_norm(shape, position),
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            standard_basis_norm((8, 8), (0,))


class TestParsevalViaNorms:
    def test_weighted_coefficients_preserve_energy(self):
        """Unnormalised coefficients scaled by their basis norms carry
        the data's L2 energy (the top-K ranking rationale)."""
        shape = (8, 8)
        data = np.random.default_rng(5).normal(size=shape)
        hat = standard_dwt(data)
        weighted = np.empty_like(hat)
        for position in np.ndindex(*shape):
            weighted[position] = hat[position] * standard_basis_norm(
                shape, position
            )
        assert np.isclose(np.linalg.norm(weighted), np.linalg.norm(data))
