"""Tests for block checksums and the write-ahead journal."""

import numpy as np
import pytest

from repro.fault.device import FaultRule, FaultyBlockDevice, InjectedIOError
from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.journal import (
    CorruptBlockError,
    JournaledDevice,
    WriteAheadJournal,
    block_checksum,
)


def _journaled(slots=8, stats=None):
    inner = BlockDevice(slots, stats=stats)
    return inner, JournaledDevice(inner)


class TestChecksummedReads:
    def test_round_trip_verifies(self):
        __, device = _journaled()
        block_id = device.allocate()
        payload = np.arange(8, dtype=np.float64)
        device.write_block(block_id, payload)
        np.testing.assert_array_equal(device.read_block(block_id), payload)

    def test_never_written_block_reads_as_zeros(self):
        __, device = _journaled()
        block_id = device.allocate()
        np.testing.assert_array_equal(
            device.read_block(block_id), np.zeros(8)
        )

    def test_out_of_band_corruption_detected(self):
        inner, device = _journaled()
        block_id = device.allocate()
        device.write_block(block_id, np.ones(8))
        # Corrupt below the journal layer (simulated bit rot).
        inner._blocks[block_id][3] = 99.0
        with pytest.raises(CorruptBlockError) as info:
            device.read_block(block_id)
        assert info.value.block_id == block_id

    def test_torn_write_detected_on_read(self):
        """A torn apply leaves stale checksum vs half-new data."""
        stats = IOStats()
        inner = BlockDevice(8, stats=stats)
        faulty = FaultyBlockDevice(
            inner, schedule=[FaultRule("write", 1, "torn_write")]
        )
        device = JournaledDevice(faulty)
        block_id = device.allocate()
        device.write_block(block_id, np.arange(8, dtype=np.float64))
        with pytest.raises(InjectedIOError):
            device.write_block(block_id, np.full(8, 9.0))
        with pytest.raises(CorruptBlockError):
            device.read_block(block_id)
        assert device.scan() == [block_id]

    def test_bitflip_detected_on_read(self):
        inner = BlockDevice(8)
        faulty = FaultyBlockDevice(
            inner, seed=1, schedule=[FaultRule("read", 0, "bitflip")]
        )
        device = JournaledDevice(faulty)
        block_id = device.allocate()
        device.write_block(block_id, np.arange(8, dtype=np.float64))
        with pytest.raises(CorruptBlockError):
            device.read_block(block_id)

    def test_summaries_rebuilt_from_device(self):
        inner = BlockDevice(4)
        block_id = inner.allocate()
        inner.write_block(block_id, np.array([1.0, -2.0, 3.0, -4.0]))
        device = JournaledDevice(inner)  # fresh wrapper, existing data
        assert device.block_summary(block_id).abs_sum == 10.0
        np.testing.assert_array_equal(
            device.read_block(block_id), np.array([1.0, -2.0, 3.0, -4.0])
        )


class TestWriteAheadJournal:
    def test_group_parse_round_trip(self):
        journal = WriteAheadJournal()
        seq = journal.begin_group()
        journal.append_data(seq, 0, b"abc")
        journal.append_data(seq, 1, b"defg")
        journal.append_commit(seq, 2)
        groups, committed, discarded, discarded_bytes = journal.parse()
        assert committed == [seq]
        assert groups[seq] == [(0, b"abc"), (1, b"defg")]
        assert discarded == 0 and discarded_bytes == 0

    def test_uncommitted_group_is_discardable_tail(self):
        journal = WriteAheadJournal()
        seq = journal.begin_group()
        journal.append_data(seq, 0, b"abc")
        groups, committed, discarded, __ = journal.parse()
        assert committed == []
        assert discarded == 1

    def test_torn_record_stops_parse(self):
        journal = WriteAheadJournal()
        seq = journal.begin_group()
        journal.append_data(seq, 0, b"abcdef")
        journal.append_commit(seq, 1)
        whole = journal.to_bytes()
        torn = WriteAheadJournal.from_bytes(whole[:-3])  # rip the tail
        groups, committed, __, discarded_bytes = torn.parse()
        assert committed == []  # commit record was torn
        assert discarded_bytes > 0

    def test_byte_round_trip_preserves_state(self):
        journal = WriteAheadJournal()
        seq = journal.begin_group()
        journal.append_data(seq, 5, b"xy")
        journal.append_commit(seq, 1)
        reopened = WriteAheadJournal.from_bytes(journal.to_bytes())
        groups, committed, __, __ = reopened.parse()
        assert committed == [seq]
        assert groups[seq] == [(5, b"xy")]
        assert reopened.next_seq == journal.next_seq

    def test_checkpoint_remembers_applied_seq(self):
        journal = WriteAheadJournal()
        seq = journal.begin_group()
        journal.append_data(seq, 0, b"z")
        journal.append_commit(seq, 1)
        journal.checkpoint(seq)
        assert journal.log_bytes == 0
        reopened = WriteAheadJournal.from_bytes(journal.to_bytes())
        assert reopened.truncated_upto == seq
        assert reopened.next_seq == seq + 1

    def test_garbage_blob_reads_as_empty(self):
        journal = WriteAheadJournal.from_bytes(b"not a journal at all")
        groups, committed, __, __ = journal.parse()
        assert not groups and not committed


class TestGroupCommitAccounting:
    def test_journal_writes_charged_d_plus_one(self):
        stats = IOStats()
        inner, device = BlockDevice(4, stats=stats), None
        device = JournaledDevice(inner)
        ids = [device.allocate() for __ in range(3)]
        device.write_batch(
            [(block_id, np.full(4, float(block_id))) for block_id in ids]
        )
        assert stats.journal_writes == 3 + 1
        assert stats.block_writes == 3  # applies charge as usual

    def test_block_counts_identical_to_plain_device(self):
        """Enabling the journal must not move any block counter."""

        def run(make_device):
            stats = IOStats()
            device = make_device(BlockDevice(4, stats=stats))
            pool = BufferPool(device, capacity=2)
            ids = [device.allocate() for __ in range(4)]
            for block_id in ids:
                data = pool.get(block_id, for_write=True)
                data[:] = block_id
            pool.flush()
            for block_id in ids:
                pool.get(block_id)
            snap = stats.snapshot()
            return (
                snap.block_reads,
                snap.block_writes,
                snap.cache_hits,
                snap.cache_misses,
                device,
            )

        plain = run(lambda d: d)
        journaled = run(JournaledDevice)
        assert plain[:4] == journaled[:4]
        np.testing.assert_array_equal(
            plain[4].dump_blocks(), journaled[4].dump_blocks()
        )

    def test_single_write_goes_through_group_protocol(self):
        stats = IOStats()
        device = JournaledDevice(BlockDevice(4, stats=stats))
        block_id = device.allocate()
        device.write_block(block_id, np.ones(4))
        assert stats.journal_writes == 2  # 1 data + 1 commit
        assert stats.block_writes == 1


class TestRecovery:
    def test_recover_replays_committed_unapplied_group(self):
        stats = IOStats()
        inner = BlockDevice(4, stats=stats)
        device = JournaledDevice(inner)
        block_id = device.allocate()
        payload = np.array([1.0, 2.0, 3.0, 4.0])
        # Commit to the journal by hand without applying (a crash
        # between commit and apply).
        seq = device.journal.begin_group()
        device.journal.append_data(seq, block_id, payload.tobytes())
        device.journal.append_commit(seq, 1)
        report = device.recover()
        assert report.replayed_groups == 1
        assert report.replayed_records == 1
        assert report.last_committed_seq == seq
        assert report.clean
        np.testing.assert_array_equal(device.read_block(block_id), payload)

    def test_recover_is_idempotent(self):
        device = JournaledDevice(BlockDevice(4))
        block_id = device.allocate()
        device.write_batch([(block_id, np.ones(4))])
        first = device.recover()
        second = device.recover()
        assert first.replayed_groups == 0  # checkpointed already
        assert second.replayed_groups == 0
        assert first.clean and second.clean
        assert (
            first.last_committed_seq
            == second.last_committed_seq
            == device.journal.truncated_upto
        )

    def test_recover_repairs_torn_apply(self):
        """Committed group + torn apply: replay restores the new data."""
        stats = IOStats()
        inner = BlockDevice(8, stats=stats)
        faulty = FaultyBlockDevice(
            inner, schedule=[FaultRule("write", 1, "torn_write")]
        )
        device = JournaledDevice(faulty)
        block_id = device.allocate()
        device.write_block(block_id, np.arange(8, dtype=np.float64))
        new = np.full(8, 6.0)
        with pytest.raises(InjectedIOError):
            device.write_block(block_id, new)
        assert device.scan() == [block_id]  # torn on disk
        report = device.recover()
        assert report.replayed_groups == 1
        assert report.clean
        np.testing.assert_array_equal(device.read_block(block_id), new)

    def test_recover_discards_torn_tail(self):
        device = JournaledDevice(BlockDevice(4))
        block_id = device.allocate()
        device.write_block(block_id, np.ones(4))  # survives, checkpointed
        # A torn, uncommitted group at the tail.
        seq = device.journal.begin_group()
        device.journal.append_data(seq, block_id, np.zeros(4).tobytes())
        report = device.recover()
        assert report.discarded_records == 1
        assert report.replayed_groups == 0
        assert report.clean
        np.testing.assert_array_equal(device.read_block(block_id), np.ones(4))


class TestChecksumHelper:
    def test_checksum_is_content_function(self):
        a = np.arange(8, dtype=np.float64)
        assert block_checksum(a) == block_checksum(a.copy())
        b = a.copy()
        b[0] += 1e-12
        assert block_checksum(a) != block_checksum(b)
