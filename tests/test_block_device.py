"""Unit tests for the simulated block device."""

import numpy as np
import pytest

from repro.storage.block_device import BlockDevice
from repro.storage.iostats import IOStats


class TestAllocation:
    def test_ids_are_sequential(self):
        device = BlockDevice(4)
        assert device.allocate() == 0
        assert device.allocate() == 1
        assert device.num_blocks == 2

    def test_allocation_charges_no_io(self):
        device = BlockDevice(4)
        device.allocate()
        assert device.stats.block_ios == 0

    def test_invalid_block_slots_rejected(self):
        with pytest.raises(ValueError):
            BlockDevice(0)


class TestReadWrite:
    def test_fresh_block_reads_zero(self):
        device = BlockDevice(4)
        block = device.allocate()
        assert np.array_equal(device.read_block(block), np.zeros(4))

    def test_write_then_read(self):
        device = BlockDevice(4)
        block = device.allocate()
        payload = np.array([1.0, 2.0, 3.0, 4.0])
        device.write_block(block, payload)
        assert np.array_equal(device.read_block(block), payload)

    def test_read_returns_private_copy(self):
        device = BlockDevice(2)
        block = device.allocate()
        device.write_block(block, np.array([1.0, 2.0]))
        copy = device.read_block(block)
        copy[0] = 99.0
        assert device.read_block(block)[0] == 1.0

    def test_io_counting(self):
        stats = IOStats()
        device = BlockDevice(2, stats=stats)
        block = device.allocate()
        device.write_block(block, np.zeros(2))
        device.read_block(block)
        device.read_block(block)
        assert stats.block_writes == 1
        assert stats.block_reads == 2
        assert stats.block_ios == 3

    def test_unallocated_block_rejected(self):
        device = BlockDevice(2)
        with pytest.raises(KeyError):
            device.read_block(0)
        with pytest.raises(KeyError):
            device.write_block(5, np.zeros(2))

    def test_wrong_shape_rejected(self):
        device = BlockDevice(4)
        block = device.allocate()
        with pytest.raises(ValueError):
            device.write_block(block, np.zeros(3))

    def test_bytes_used(self):
        device = BlockDevice(16)
        device.allocate()
        device.allocate()
        assert device.bytes_used() == 2 * 16 * 8


class TestIOStats:
    def test_snapshot_and_delta(self):
        stats = IOStats(block_reads=5, coefficient_writes=3)
        snap = stats.snapshot()
        stats.block_reads += 2
        delta = stats.delta_since(snap)
        assert delta.block_reads == 2
        assert delta.coefficient_writes == 0

    def test_reset(self):
        stats = IOStats(block_reads=1, block_writes=2, cache_hits=3)
        stats.reset()
        assert stats.block_ios == 0
        assert stats.cache_hits == 0

    def test_str_is_informative(self):
        text = str(IOStats(block_reads=1))
        assert "1r" in text
