"""Plan-compiled SHIFT-SPLIT vs the interpreted path: bit-identity,
I/O-trace identity, the parallel bulk-load pipeline, and the plan-cache
machinery itself."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    apply_chunk_nonstandard,
    apply_chunk_nonstandard_uncached,
    apply_chunk_standard,
    apply_chunk_standard_uncached,
    extract_region_transform_standard,
    extract_region_transform_standard_uncached,
    get_standard_plan,
    plan_cache_info,
    plans_enabled,
    set_plans_enabled,
    split_contributions_nonstandard,
    split_weights_nonstandard,
    use_plans,
)
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    _CrestBuffer,
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.wavelet.keys import NonStandardKey

# Small randomized geometries: per-axis domain exponents in [2, 5],
# chunk exponents in [1, domain exponent], 1-3 dimensions.
standard_geometries = st.integers(1, 3).flatmap(
    lambda ndim: st.tuples(
        st.lists(st.integers(2, 5), min_size=ndim, max_size=ndim),
        st.lists(st.integers(0, 4), min_size=ndim, max_size=ndim),
        st.integers(1, 2),
        st.integers(0, 10**6),
    )
)


def _standard_case(geometry):
    domain_exp, chunk_raw, block_exp, seed = geometry
    shape = tuple(1 << e for e in domain_exp)
    chunk = tuple(
        1 << min(c, e) for c, e in zip(chunk_raw, domain_exp)
    )
    block_edge = 1 << min(block_exp, min(domain_exp))
    return shape, chunk, block_edge, seed


class TestStandardPlanEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(standard_geometries, st.booleans())
    def test_cached_matches_uncached(self, geometry, fresh):
        shape, chunk, block_edge, seed = _standard_case(geometry)
        rng = np.random.default_rng(seed)
        grid = tuple(
            int(rng.integers(0, extent // ce))
            for extent, ce in zip(shape, chunk)
        )
        data = rng.standard_normal(chunk)

        tiled_plan = TiledStandardStore(shape, block_edge=block_edge)
        tiled_base = TiledStandardStore(shape, block_edge=block_edge)
        dense_plan = DenseStandardStore(shape)
        dense_base = DenseStandardStore(shape)
        with use_plans(True):
            apply_chunk_standard(tiled_plan, data, grid, fresh=fresh)
            apply_chunk_standard(dense_plan, data, grid, fresh=fresh)
        apply_chunk_standard_uncached(tiled_base, data, grid, fresh=fresh)
        apply_chunk_standard_uncached(dense_base, data, grid, fresh=fresh)

        assert np.array_equal(tiled_plan.to_array(), tiled_base.to_array())
        assert np.array_equal(dense_plan.to_array(), dense_base.to_array())
        assert tiled_plan.stats.snapshot() == tiled_base.stats.snapshot()
        assert dense_plan.stats.snapshot() == dense_base.stats.snapshot()

    @settings(max_examples=10, deadline=None)
    @given(standard_geometries)
    def test_extract_matches_uncached(self, geometry):
        shape, chunk, block_edge, seed = _standard_case(geometry)
        rng = np.random.default_rng(seed)
        grid = tuple(
            int(rng.integers(0, extent // ce))
            for extent, ce in zip(shape, chunk)
        )
        corner = tuple(g * ce for g, ce in zip(grid, chunk))
        store = TiledStandardStore(shape, block_edge=block_edge)
        with use_plans(True):
            transform_standard_chunked(
                store, rng.standard_normal(shape), chunk
            )
        mirror = TiledStandardStore(shape, block_edge=block_edge)
        mirror.set_region(
            [np.arange(extent) for extent in shape], store.to_array()
        )
        with use_plans(True):
            got = extract_region_transform_standard(store, corner, chunk)
        want = extract_region_transform_standard_uncached(
            mirror, corner, chunk
        )
        assert np.array_equal(got, want)


class TestNonStandardPlanEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 3),
        st.integers(2, 4),
        st.integers(0, 3),
        st.booleans(),
        st.integers(0, 10**6),
    )
    def test_cached_matches_uncached(self, ndim, n, m_raw, fresh, seed):
        m = min(m_raw, n)
        size, edge = 1 << n, 1 << m
        rng = np.random.default_rng(seed)
        grid = tuple(int(g) for g in rng.integers(0, size // edge, ndim))
        data = rng.standard_normal((edge,) * ndim)

        tiled_plan = TiledNonStandardStore(size, ndim, block_edge=2)
        tiled_base = TiledNonStandardStore(size, ndim, block_edge=2)
        dense_plan = DenseNonStandardStore(size, ndim)
        dense_base = DenseNonStandardStore(size, ndim)
        with use_plans(True):
            apply_chunk_nonstandard(tiled_plan, data, grid, fresh=fresh)
            apply_chunk_nonstandard(dense_plan, data, grid, fresh=fresh)
        apply_chunk_nonstandard_uncached(tiled_base, data, grid, fresh=fresh)
        apply_chunk_nonstandard_uncached(dense_base, data, grid, fresh=fresh)

        assert np.array_equal(tiled_plan.to_array(), tiled_base.to_array())
        assert np.array_equal(dense_plan.to_array(), dense_base.to_array())
        assert tiled_plan.stats.snapshot() == tiled_base.stats.snapshot()

    def test_split_wrapper_matches_arrays(self):
        size, edge, grid = 64, 8, (3, 5)
        levels, nodes, masks, weights, scaling = split_weights_nonstandard(
            size, edge, grid
        )
        average = -1.625  # exactly representable
        details, scaling_delta = split_contributions_nonstandard(
            size, edge, grid, average
        )
        assert scaling_delta == average * scaling
        assert len(details) == len(weights)
        for (key, delta), level, node, mask, weight in zip(
            details, levels, nodes, masks, weights
        ):
            assert key == NonStandardKey(
                int(level), tuple(int(k) for k in node), int(mask)
            )
            assert delta == average * weight

    def test_split_weight_arrays_read_only(self):
        levels, __, __, weights, __ = split_weights_nonstandard(32, 4, (0, 0))
        with pytest.raises(ValueError):
            weights[0] = 0.0
        with pytest.raises(ValueError):
            levels[0] = 0


class TestBulkLoadDrivers:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(1, 3),
        st.sampled_from(["rowmajor", "zorder"]),
        st.integers(0, 10**6),
    )
    def test_standard_modes_bit_identical(self, ndim, order, seed):
        shape = (32,) * ndim if ndim < 3 else (16,) * ndim
        chunk = (8,) * ndim
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(shape)

        def load(**kwargs):
            store = TiledStandardStore(shape, block_edge=4, pool_capacity=16)
            transform_standard_chunked(
                store, data, chunk, order=order, **kwargs
            )
            return store

        base = load(use_plans=False)
        cached = load(use_plans=True)
        piped = load(workers=3)
        with pytest.warns(DeprecationWarning, match="parallel_apply"):
            shimmed = load(workers=3, parallel_apply=True)

        want = base.to_array()
        assert np.array_equal(want, cached.to_array())
        assert np.array_equal(want, piped.to_array())
        assert np.array_equal(want, shimmed.to_array())
        # Serial plan path, the ordered pipeline, and the deprecation
        # shim all replay the exact block-I/O trace.
        assert base.stats.snapshot() == cached.stats.snapshot()
        assert base.stats.snapshot() == piped.stats.snapshot()
        assert base.stats.snapshot() == shimmed.stats.snapshot()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 2), st.booleans(), st.integers(0, 10**6))
    def test_nonstandard_modes_bit_identical(self, ndim, crest, seed):
        size, edge = 32, 8
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((size,) * ndim)

        def load(use_plans):
            store = TiledNonStandardStore(
                size, ndim, block_edge=4, pool_capacity=16
            )
            transform_nonstandard_chunked(
                store, data, edge, buffer_crest=crest, use_plans=use_plans
            )
            return store

        base = load(False)
        cached = load(True)
        assert np.array_equal(base.to_array(), cached.to_array())
        assert base.stats.snapshot() == cached.stats.snapshot()

    def test_sparse_pipeline_matches_serial(self):
        shape, chunk = (64, 64), (16, 16)
        rng = np.random.default_rng(5)
        data = np.zeros(shape)
        data[:16, 32:48] = rng.standard_normal((16, 16))

        def load(**kwargs):
            store = TiledStandardStore(shape, block_edge=8, pool_capacity=16)
            report = transform_standard_chunked(
                store, data, chunk, skip_zero_chunks=True, **kwargs
            )
            return store, report

        base, base_report = load(use_plans=False)
        piped, piped_report = load(workers=3)
        assert np.array_equal(base.to_array(), piped.to_array())
        assert base.stats.snapshot() == piped.stats.snapshot()
        assert (
            base_report.extras["skipped_chunks"]
            == piped_report.extras["skipped_chunks"]
            == 15
        )

    def test_workers_require_plan_path(self):
        store = TiledStandardStore((16, 16), block_edge=4)
        data = np.zeros((16, 16))
        with pytest.raises(ValueError):
            transform_standard_chunked(
                store, data, (8, 8), workers=2, use_plans=False
            )

    def test_parallel_apply_deprecation_shim(self):
        # The retired thread-scatter path is a warn-and-ignore shim:
        # any store and any worker count is accepted, and the result
        # replays the serial block-I/O trace exactly.
        rng = np.random.default_rng(11)
        data = rng.standard_normal((16, 16))

        def load(**kwargs):
            store = TiledStandardStore((16, 16), block_edge=4)
            transform_standard_chunked(store, data, (8, 8), **kwargs)
            return store

        base = load()
        with pytest.warns(DeprecationWarning, match="parallel_apply"):
            shimmed = load(workers=1, parallel_apply=True)
        assert np.array_equal(base.to_array(), shimmed.to_array())
        assert base.stats.snapshot() == shimmed.stats.snapshot()

        dense = DenseStandardStore((16, 16))
        with pytest.warns(DeprecationWarning, match="procpool"):
            transform_standard_chunked(
                dense, data, (8, 8), workers=2, parallel_apply=True
            )
        assert np.array_equal(base.to_array(), dense.to_array())


class TestPlanCacheMachinery:
    def test_switch_scoping(self):
        initial = plans_enabled()
        with use_plans(False):
            assert not plans_enabled()
            with use_plans(True):
                assert plans_enabled()
            assert not plans_enabled()
        assert plans_enabled() == initial
        previous = set_plans_enabled(False)
        assert previous == initial
        set_plans_enabled(initial)

    def test_cache_hits_on_repeat_geometry(self):
        before = plan_cache_info()["standard_plans"]
        plan_a = get_standard_plan((64, 64), (16, 16), (1, 2))
        plan_b = get_standard_plan((64, 64), (16, 16), (1, 2))
        after = plan_cache_info()["standard_plans"]
        assert plan_a is plan_b
        assert after["hits"] >= before["hits"] + 1

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            get_standard_plan((64, 64), (16,), (0, 0))


class TestCrestBuffer:
    def test_completed_list_drains_once(self):
        crest = _CrestBuffer(ndim=2)
        key = lambda mask: NonStandardKey(3, (0, 0), mask)
        # gap 0 => 3 expected contributions (one per type mask).
        crest.add(key(1), 1.0, 0)
        crest.add(key(2), 2.0, 0)
        assert list(crest.pop_complete()) == []
        crest.add(key(3), 3.0, 0)
        popped = list(crest.pop_complete())
        assert len(popped) == 1
        (level, node), values = popped[0]
        assert (level, node) == (3, (0, 0))
        assert np.array_equal(values, [1.0, 2.0, 3.0])
        assert list(crest.pop_complete()) == []
        assert crest.is_empty()
