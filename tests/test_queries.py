"""Tests for point queries, range sums, and region reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_ops import apply_chunk_standard
from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.reconstruct.point import (
    point_query_cost_nonstandard,
    point_query_cost_standard,
    point_query_nonstandard,
    point_query_standard,
)
from repro.reconstruct.rangesum import (
    range_sum_nonstandard,
    range_sum_standard,
    range_sum_weights,
)
from repro.reconstruct.region import (
    cubic_dyadic_cover,
    reconstruct_box_nonstandard,
    reconstruct_box_pointwise,
    reconstruct_box_standard,
    reconstruct_full_nonstandard,
    reconstruct_full_standard,
)
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore


@pytest.fixture(scope="module")
def standard_setup():
    data = np.random.default_rng(0).normal(size=(32, 16))
    store = DenseStandardStore((32, 16))
    apply_chunk_standard(store, data, (0, 0))
    return data, store


@pytest.fixture(scope="module")
def nonstandard_setup():
    data = np.random.default_rng(1).normal(size=(16, 16))
    store = DenseNonStandardStore(16, 2)
    apply_chunk_nonstandard(store, data, (0, 0))
    return data, store


class TestPointQueries:
    @given(st.integers(0, 31), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_standard_point(self, x, y):
        data = np.random.default_rng(0).normal(size=(32, 16))
        store = DenseStandardStore((32, 16))
        apply_chunk_standard(store, data, (0, 0))
        assert np.isclose(point_query_standard(store, (x, y)), data[x, y])

    def test_standard_cost_is_lemma_1_cross_product(self, standard_setup):
        data, store = standard_setup
        store.stats.reset()
        point_query_standard(store, (5, 7))
        assert store.stats.coefficient_reads == (5 + 1) * (4 + 1)
        assert point_query_cost_standard((32, 16)) == 30

    def test_nonstandard_point(self, nonstandard_setup):
        data, store = nonstandard_setup
        for position in [(0, 0), (7, 12), (15, 15)]:
            assert np.isclose(
                point_query_nonstandard(store, position), data[position]
            )

    def test_nonstandard_cost(self, nonstandard_setup):
        data, store = nonstandard_setup
        store.stats.reset()
        point_query_nonstandard(store, (3, 9))
        assert store.stats.coefficient_reads == 3 * 4 + 1
        assert point_query_cost_nonstandard(16, 2) == 13

    def test_out_of_domain_rejected(self, standard_setup):
        __, store = standard_setup
        with pytest.raises(ValueError):
            point_query_standard(store, (32, 0))

    def test_tiled_point_queries_touch_one_tile_per_band_product(self):
        data = np.random.default_rng(2).normal(size=(64, 64))
        store = TiledStandardStore((64, 64), block_edge=8, pool_capacity=64)
        apply_chunk_standard(store, data, (0, 0))
        store.flush()
        store.drop_cache()
        before = store.stats.snapshot()
        value = point_query_standard(store, (33, 21))
        assert np.isclose(value, data[33, 21])
        # 2 bands per axis -> at most 4 blocks.
        assert store.stats.delta_since(before).block_reads <= 4


class TestRangeSumWeights:
    @given(st.integers(1, 8), st.data())
    @settings(max_examples=50, deadline=None)
    def test_lemma_2_bound_and_correctness(self, n, data):
        size = 1 << n
        low = data.draw(st.integers(0, size - 1))
        high = data.draw(st.integers(low, size - 1))
        vector = np.random.default_rng(
            data.draw(st.integers(0, 2**31))
        ).normal(size=size)
        from repro.wavelet.haar1d import haar_dwt

        indices, weights = range_sum_weights(size, low, high)
        assert len(indices) <= 2 * n + 1
        value = float(haar_dwt(vector)[indices] @ weights)
        assert np.isclose(value, vector[low : high + 1].sum())

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            range_sum_weights(8, 5, 3)
        with pytest.raises(ValueError):
            range_sum_weights(8, 0, 8)


class TestRangeSums:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_standard_range_sum(self, data):
        cube, store = (
            np.random.default_rng(0).normal(size=(32, 16)),
            None,
        )
        store = DenseStandardStore((32, 16))
        apply_chunk_standard(store, cube, (0, 0))
        lows = (data.draw(st.integers(0, 31)), data.draw(st.integers(0, 15)))
        highs = (
            data.draw(st.integers(lows[0], 31)),
            data.draw(st.integers(lows[1], 15)),
        )
        expected = cube[
            lows[0] : highs[0] + 1, lows[1] : highs[1] + 1
        ].sum()
        assert np.isclose(range_sum_standard(store, lows, highs), expected)

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_nonstandard_range_sum(self, data):
        cube = np.random.default_rng(1).normal(size=(16, 16))
        store = DenseNonStandardStore(16, 2)
        apply_chunk_nonstandard(store, cube, (0, 0))
        lows = (data.draw(st.integers(0, 15)), data.draw(st.integers(0, 15)))
        highs = (
            data.draw(st.integers(lows[0], 15)),
            data.draw(st.integers(lows[1], 15)),
        )
        expected = cube[
            lows[0] : highs[0] + 1, lows[1] : highs[1] + 1
        ].sum()
        assert np.isclose(
            range_sum_nonstandard(store, lows, highs), expected
        )


class TestRegionReconstruction:
    def test_arbitrary_boxes_standard(self, standard_setup):
        data, store = standard_setup
        box = reconstruct_box_standard(store, (3, 2), (19, 13))
        assert np.allclose(box, data[3:19, 2:13])

    def test_arbitrary_boxes_nonstandard(self, nonstandard_setup):
        data, store = nonstandard_setup
        box = reconstruct_box_nonstandard(store, (1, 5), (12, 14))
        assert np.allclose(box, data[1:12, 5:14])

    def test_pointwise_baseline(self, standard_setup):
        data, store = standard_setup
        box = reconstruct_box_pointwise(store, (4, 4), (7, 8))
        assert np.allclose(box, data[4:7, 4:8])

    def test_pointwise_nonstandard(self, nonstandard_setup):
        data, store = nonstandard_setup
        box = reconstruct_box_pointwise(
            store, (4, 4), (6, 6), form="nonstandard"
        )
        assert np.allclose(box, data[4:6, 4:6])

    def test_full_reconstruction(self, standard_setup, nonstandard_setup):
        data_std, store_std = standard_setup
        assert np.allclose(reconstruct_full_standard(store_std), data_std)
        data_ns, store_ns = nonstandard_setup
        assert np.allclose(reconstruct_full_nonstandard(store_ns), data_ns)

    def test_tiled_region_reconstruction(self):
        data = np.random.default_rng(3).normal(size=(16, 16))
        store = TiledNonStandardStore(16, 2, block_edge=2, pool_capacity=32)
        apply_chunk_nonstandard(store, data, (0, 0))
        box = reconstruct_box_nonstandard(store, (2, 3), (11, 15))
        assert np.allclose(box, data[2:11, 3:15])

    def test_unknown_form_rejected(self, standard_setup):
        __, store = standard_setup
        with pytest.raises(ValueError):
            reconstruct_box_pointwise(store, (0, 0), (2, 2), form="magic")


class TestCubicCover:
    def test_pieces_are_cubic_disjoint_and_cover(self):
        boxes = list(cubic_dyadic_cover((1, 2), (7, 11)))
        seen = set()
        for box in boxes:
            assert box.is_cubic()
            edge = box.intervals[0].length
            for interval in box.intervals:
                assert interval.length == edge
                assert interval.start % edge == 0
            for x in range(box.intervals[0].start, box.intervals[0].stop):
                for y in range(box.intervals[1].start, box.intervals[1].stop):
                    assert (x, y) not in seen
                    seen.add((x, y))
        assert seen == {(x, y) for x in range(1, 7) for y in range(2, 11)}
