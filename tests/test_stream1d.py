"""Tests for the 1-d stream synopsis (Result 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.stream1d import StreamSynopsis1D
from repro.wavelet.haar1d import haar_dwt
from repro.wavelet.layout import index_level


def _significances(transform, n):
    weights = np.empty_like(transform)
    for index in range(transform.size):
        weights[index] = abs(transform[index]) * 2.0 ** (
            index_level(n, index) / 2.0
        )
    return weights


class TestExactness:
    @given(
        st.sampled_from([1, 4, 16]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_full_k_recovers_the_signal(self, buffer_size, seed):
        size = 64
        data = np.random.default_rng(seed).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=buffer_size)
        synopsis.extend(data)
        assert np.allclose(synopsis.estimate(), data)

    @given(
        st.sampled_from([1, 8]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_finalised_coefficients_match_offline_transform(
        self, buffer_size, seed
    ):
        size = 64
        data = np.random.default_rng(seed).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=buffer_size)
        synopsis.extend(data)
        offline = haar_dwt(data)
        for index, value in synopsis.synopsis().items():
            assert np.isclose(value, offline[index]), index

    def test_buffer_size_does_not_change_the_synopsis(self):
        size, k = 256, 12
        data = np.random.default_rng(5).normal(size=size)
        baseline = StreamSynopsis1D(size, k=k, buffer_size=1)
        buffered = StreamSynopsis1D(size, k=k, buffer_size=32)
        baseline.extend(data)
        buffered.extend(data)
        base_items = baseline.synopsis()
        buff_items = buffered.synopsis()
        for index in set(base_items) & set(buff_items):
            assert np.isclose(base_items[index], buff_items[index])
        # At least K-1 agreement (ties may be broken differently).
        assert len(set(base_items) & set(buff_items)) >= k - 1

    def test_topk_is_offline_best_k(self):
        size, k = 128, 8
        data = np.random.default_rng(6).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=k, buffer_size=16)
        synopsis.extend(data)
        offline = haar_dwt(data)
        significances = _significances(offline, 7)
        best = set(np.argsort(-significances)[:k])
        got = set(synopsis.synopsis().keys())
        assert len(best & got) >= k - 1  # ties


class TestCostModel:
    @given(st.sampled_from([1, 2, 8, 32]))
    @settings(max_examples=10, deadline=None)
    def test_crest_updates_match_result_3(self, buffer_size):
        """(log(N/B) + 1) crest updates per flushed buffer."""
        size = 256
        data = np.zeros(size)
        synopsis = StreamSynopsis1D(size, k=4, buffer_size=buffer_size)
        synopsis.extend(data)
        n = 8
        b = buffer_size.bit_length() - 1
        flushes = size // buffer_size
        assert synopsis.crest_updates == flushes * ((n - b) + 1)

    def test_memory_bound(self):
        """Peak live memory <= B + log(N/B) + 1."""
        size, buffer_size = 1024, 16
        synopsis = StreamSynopsis1D(size, k=4, buffer_size=buffer_size)
        synopsis.extend(np.random.default_rng(7).normal(size=size))
        assert synopsis.max_live_coefficients <= buffer_size + (10 - 4) + 1

    def test_all_coefficients_eventually_finalise(self):
        size = 128
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=8)
        synopsis.extend(np.ones(size))
        assert synopsis.finalized == size
        assert synopsis.live_coefficients() == 0


class TestPrefixSemantics:
    def test_estimate_with_crest_is_exact_on_seen_prefix(self):
        size = 64
        data = np.random.default_rng(8).normal(size=size)
        synopsis = StreamSynopsis1D(size, k=size, buffer_size=4)
        synopsis.extend(data[:40])
        estimate = synopsis.estimate_with_crest()
        assert np.allclose(estimate[:40], data[:40])
        # The unseen suffix is a smooth extension, not garbage.
        assert np.all(np.isfinite(estimate))


class TestValidation:
    def test_overflow_rejected(self):
        synopsis = StreamSynopsis1D(4, k=2, buffer_size=1)
        synopsis.extend([1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            synopsis.push(5.0)

    def test_buffer_larger_than_domain_rejected(self):
        with pytest.raises(ValueError):
            StreamSynopsis1D(8, k=2, buffer_size=16)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            StreamSynopsis1D(9, k=2)
        with pytest.raises(ValueError):
            StreamSynopsis1D(8, k=2, buffer_size=3)
