"""Schema hierarchies and the Slicer grammar that compiles onto them.

Covers the satellite contract: ``Dimension.path_to_range`` round-trips
every member path through ``cells_to_path`` and answers malformed or
out-of-domain cuts with :class:`SchemaError` — never an index error —
plus the cut/drilldown parser and its compilation to dyadic boxes.
"""

import pickle

import pytest

from repro.olap.schema import (
    Dimension,
    Hierarchy,
    Level,
    SchemaError,
    binary_hierarchy,
)
from repro.server.slicer import (
    compile_aggregate,
    parse_cuts,
    parse_drilldowns,
)


def ymd():
    return Hierarchy(
        "ymd", [Level("year", 4), Level("month", 4), Level("day", 4)]
    )


def time_dim():
    return Dimension("time", 64, hierarchies=(ymd(),))


class TestHierarchy:
    def test_leaf_count_and_depth(self):
        h = ymd()
        assert h.depth == 3
        assert h.leaf_count == 64
        assert h.cells_below(0) == 64
        assert h.cells_below(1) == 16
        assert h.cells_below(3) == 1

    def test_path_to_cells_prefixes(self):
        h = ymd()
        assert h.path_to_cells(()) == (0, 63)
        assert h.path_to_cells((2,)) == (32, 47)
        assert h.path_to_cells((2, 1)) == (36, 39)
        assert h.path_to_cells((2, 1, 3)) == (39, 39)

    def test_cells_to_path_inverts_every_member(self):
        h = ymd()
        paths = [()]
        paths += [(y,) for y in range(4)]
        paths += [(y, m) for y in range(4) for m in range(4)]
        for path in paths:
            low, high = h.path_to_cells(path)
            assert h.cells_to_path(low, high) == path

    def test_cells_to_path_rejects_non_member_ranges(self):
        with pytest.raises(SchemaError, match="not a member"):
            ymd().cells_to_path(1, 17)

    def test_invalid_levels_and_hierarchies(self):
        with pytest.raises(SchemaError, match="power of two"):
            Level("bad", 3)
        with pytest.raises(SchemaError, match="at least one level"):
            Hierarchy("empty", [])
        with pytest.raises(SchemaError, match="duplicate level"):
            Hierarchy("dup", [Level("a", 2), Level("a", 2)])

    def test_binary_hierarchy_matches_wavelet_levels(self):
        h = binary_hierarchy(16)
        assert h.depth == 4
        assert h.leaf_count == 16
        assert h.path_to_cells((1, 0)) == (8, 11)
        with pytest.raises(SchemaError):
            binary_hierarchy(1)

    def test_hierarchy_pickles(self):
        h = ymd()
        assert pickle.loads(pickle.dumps(h)) == h


class TestDimensionHierarchies:
    def test_leaf_count_must_match_size(self):
        with pytest.raises(SchemaError, match="addresses 64 cells"):
            Dimension("t", 32, hierarchies=(ymd(),))

    def test_default_and_named_lookup(self):
        d = time_dim()
        assert d.hierarchy().name == "ymd"
        assert d.hierarchy("binary").depth == 6
        with pytest.raises(SchemaError, match="no hierarchy"):
            d.hierarchy("nope")

    def test_path_to_range_round_trip(self):
        d = time_dim()
        assert d.path_to_range((2, 1)) == (36, 39)
        assert d.path_to_range((1, 0), hierarchy="binary") == (32, 47)

    def test_path_to_range_out_of_domain_is_schema_error(self):
        d = time_dim()
        with pytest.raises(SchemaError, match="out of range"):
            d.path_to_range((9,))
        with pytest.raises(SchemaError, match="not an integer"):
            d.path_to_range(("march",))
        with pytest.raises(SchemaError, match="deeper"):
            d.path_to_range((1, 2, 3, 0))

    def test_to_dict_exposes_model(self):
        model = time_dim().to_dict()
        assert model["default_hierarchy"] == "ymd"
        assert [h["name"] for h in model["hierarchies"]] == ["ymd"]
        bare = Dimension("x", 8).to_dict()
        assert bare["default_hierarchy"] == "binary"


class TestSlicerGrammar:
    def test_parse_range_and_path_cuts(self):
        cuts = parse_cuts("time@ymd:2.1|lat:30-60|z:-4--2")
        assert cuts[0].path == (2, 1) and cuts[0].hierarchy == "ymd"
        assert (cuts[1].low, cuts[1].high) == (30.0, 60.0)
        assert (cuts[2].low, cuts[2].high) == (-4.0, -2.0)

    def test_parse_single_value_range(self):
        (cut,) = parse_cuts("t:5")
        assert (cut.low, cut.high) == (5.0, 5.0)

    def test_parse_drilldowns(self):
        drills = parse_drilldowns("time@ymd:month, region")
        assert drills[0].dimension == "time"
        assert drills[0].hierarchy == "ymd"
        assert drills[0].level == "month"
        assert drills[1].dimension == "region"

    def test_malformed_inputs_are_schema_errors(self):
        for text in ("@h:1", "t@:1", "t:", "t@ymd:a.b"):
            with pytest.raises(SchemaError):
                parse_cuts(text)
        with pytest.raises(SchemaError):
            parse_cuts("t:not-a-number")

    def test_compile_cross_product(self):
        dims = [time_dim(), Dimension("region", 64)]
        plan = compile_aggregate(
            dims,
            parse_cuts("time@ymd:2"),
            parse_drilldowns("time,region:1"),
        )
        assert plan.drilled == ("time", "region")
        assert len(plan.cells) == 4 * 2
        cell = plan.cells[0]
        assert cell.paths == (("time", "2.0"), ("region", "0"))
        assert (cell.lows, cell.highs) == ((32, 0), (35, 31))

    def test_compile_rejects_bad_requests(self):
        dims = [time_dim(), Dimension("region", 64)]
        with pytest.raises(SchemaError, match="unknown dimension"):
            compile_aggregate(dims, parse_cuts("nope:1-2"), [])
        with pytest.raises(SchemaError, match="more than once"):
            compile_aggregate(dims, parse_cuts("region:1-2|region:3-4"), [])
        with pytest.raises(SchemaError, match="range cut"):
            compile_aggregate(
                dims,
                parse_cuts("time:0-9"),
                parse_drilldowns("time"),
            )
        with pytest.raises(SchemaError, match="limit"):
            compile_aggregate(
                dims, [], parse_drilldowns("region:6"), max_cells=8
            )

    def test_compile_depth_past_leaves_is_schema_error(self):
        dims = [time_dim()]
        with pytest.raises(SchemaError, match="depth"):
            compile_aggregate(
                dims,
                parse_cuts("time@ymd:1.2.3"),
                parse_drilldowns("time"),
            )
