"""Unit tests for the journal-shipping replication stack
(:mod:`repro.replica`): wire framing, shipper retention/resume,
follower replay, and the failover controller's decision logic."""

import threading

import numpy as np
import pytest

from repro.analysis import racesan
from repro.fault.breaker import CircuitBreaker
from repro.replica.controller import FailoverController, ProbeResult
from repro.replica.follower import FollowerEngine, ReplicaGapError
from repro.replica.frames import (
    FRAME_GROUP,
    FRAME_HEARTBEAT,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from repro.replica.shipper import JournalShipper
from repro.storage.block_device import BlockDevice
from repro.storage.journal import JournaledDevice, WriteAheadJournal

SLOTS = 16


def _arr(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(SLOTS)


def _primary():
    device = JournaledDevice(BlockDevice(SLOTS))
    shipper = JournalShipper(device)
    return device, shipper


def _write_group(device: JournaledDevice, seed: int, blocks=(0,)) -> None:
    for block_id in blocks:
        while device.num_blocks <= block_id:
            device.allocate()
    device.write_batch(
        [(block_id, _arr(seed + block_id)) for block_id in blocks]
    )


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------


class TestFrames:
    def test_round_trip(self):
        payload = b"journal-bytes" * 9
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(FRAME_GROUP, 7, payload))
        assert len(frames) == 1
        assert frames[0].kind == FRAME_GROUP
        assert frames[0].seq == 7
        assert frames[0].payload == payload
        assert decoder.pending_bytes == 0

    def test_torn_tail_is_held_not_misparsed(self):
        frame = encode_frame(FRAME_GROUP, 1, b"x" * 100)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:30]) == []
        assert decoder.pending_bytes == 30
        frames = decoder.feed(frame[30:])
        assert len(frames) == 1
        assert frames[0].payload == b"x" * 100

    def test_byte_at_a_time(self):
        frame = encode_frame(FRAME_HEARTBEAT, 3) + encode_frame(
            FRAME_GROUP, 4, b"abc"
        )
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert [f.seq for f in out] == [3, 4]

    def test_crc_flip_raises(self):
        frame = bytearray(encode_frame(FRAME_GROUP, 1, b"payload"))
        frame[-1] ^= 0x40  # flip a payload bit
        with pytest.raises(FrameError, match="CRC"):
            FrameDecoder().feed(bytes(frame))

    def test_bad_magic_raises(self):
        frame = bytearray(encode_frame(FRAME_GROUP, 1, b"p"))
        frame[0] = 0x00
        with pytest.raises(FrameError, match="magic"):
            FrameDecoder().feed(bytes(frame))

    def test_discard_tail(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(FRAME_GROUP, 1, b"x" * 50)[:20])
        assert decoder.discard_tail() == 20
        assert decoder.pending_bytes == 0
        # the stream is whole again from the next full frame
        frames = decoder.feed(encode_frame(FRAME_GROUP, 2, b"y"))
        assert [f.seq for f in frames] == [2]


# ----------------------------------------------------------------------
# shipper
# ----------------------------------------------------------------------


class TestShipper:
    def test_ships_each_committed_group_in_order(self):
        device, shipper = _primary()
        seen = []
        follower = FollowerEngine(BlockDevice(SLOTS))

        def sink(data: bytes) -> None:
            seen.append(data)
            follower.feed(data)

        shipper.attach(sink)
        for seed in range(3):
            _write_group(device, seed, blocks=(seed,))
        assert len(seen) == 3
        assert shipper.last_seq == 3
        assert follower.applied_seq == 3
        assert np.array_equal(
            follower.device.dump_blocks(), device.dump_blocks()
        )

    def test_on_commit_is_exclusive(self):
        device, __ = _primary()
        with pytest.raises(RuntimeError, match="observer"):
            JournalShipper(device)

    def test_frames_since_caught_up_and_resume(self):
        device, shipper = _primary()
        for seed in range(4):
            _write_group(device, seed)
        assert shipper.frames_since(4) == []
        frames = shipper.frames_since(2)
        assert frames is not None and len(frames) == 2
        follower = FollowerEngine(BlockDevice(SLOTS))
        # resume mid-stream: install the prefix by replaying from 0
        for frame in shipper.frames_since(0):
            follower.feed(frame)
        assert follower.applied_seq == 4

    def test_gap_before_retention_window(self):
        device, shipper = _primary()
        shipper._retained = type(shipper._retained)(maxlen=2)
        for seed in range(5):
            _write_group(device, seed)
        # groups 1..3 fell out of the window; a cursor there is a gap
        assert shipper.frames_since(1) is None
        assert shipper.frames_since(0) is None
        frames = shipper.frames_since(3)
        assert frames is not None and len(frames) == 2

    def test_gap_before_attach_point(self):
        device = JournaledDevice(BlockDevice(SLOTS))
        _write_group(device, 0)  # group 1 committed before any shipper
        shipper = JournalShipper(device)
        _write_group(device, 1)
        # a follower claiming position 0 predates the shipper
        assert shipper.frames_since(0) is None
        assert shipper.frames_since(1) is not None

    def test_acks_keep_max(self):
        __, shipper = _primary()
        shipper.ack("f1", 3)
        shipper.ack("f1", 2)  # stale ack must not regress
        shipper.ack("f2", 5)
        assert shipper.acks() == {"f1": 3, "f2": 5}


# ----------------------------------------------------------------------
# follower
# ----------------------------------------------------------------------


class TestFollower:
    def test_duplicate_group_skipped(self):
        device, shipper = _primary()
        follower = FollowerEngine(BlockDevice(SLOTS))
        shipper.attach(follower.feed)
        _write_group(device, 0)
        frame = shipper.frames_since(0)[0]
        follower.feed(frame)  # replayed duplicate
        assert follower.duplicates_skipped == 1
        assert follower.applied_seq == 1

    def test_gap_raises(self):
        device, shipper = _primary()
        for seed in range(3):
            _write_group(device, seed)
        follower = FollowerEngine(BlockDevice(SLOTS))
        frames = shipper.frames_since(0)
        follower.feed(frames[0])
        with pytest.raises(ReplicaGapError):
            follower.feed(frames[2])  # skipped seq 2

    def test_snapshot_install_then_stream(self):
        device, shipper = _primary()
        for seed in range(3):
            _write_group(device, seed, blocks=(seed,))
        follower = FollowerEngine(BlockDevice(SLOTS))
        follower.install_snapshot(device.dump_blocks(), last_seq=3)
        assert follower.applied_seq == 3
        _write_group(device, 9, blocks=(1,))
        for frame in shipper.frames_since(3):
            follower.feed(frame)
        assert follower.applied_seq == 4
        assert np.array_equal(
            follower.device.dump_blocks(), device.dump_blocks()
        )
        report = follower.finalize()
        assert report.clean

    def test_finalize_discards_torn_tail(self):
        device, shipper = _primary()
        follower = FollowerEngine(BlockDevice(SLOTS))
        shipper.attach(follower.feed)
        _write_group(device, 0)
        # half a frame arrives, then the primary dies
        half = encode_frame(FRAME_GROUP, 2, b"z" * 64)[:20]
        follower.feed(half)
        assert follower.decoder.pending_bytes == 20
        report = follower.finalize()
        assert report.clean
        assert follower.decoder.pending_bytes == 0
        assert follower.applied_seq == 1

    def test_promoted_follower_continues_seq_numbering(self):
        device, shipper = _primary()
        follower = FollowerEngine(BlockDevice(SLOTS))
        shipper.attach(follower.feed)
        for seed in range(3):
            _write_group(device, seed)
        follower.finalize()
        # the promoted journal's next group must extend the stream
        assert follower.device.journal.next_seq == 4

    def test_requires_exactly_one_device(self):
        with pytest.raises(ValueError):
            FollowerEngine()
        with pytest.raises(ValueError):
            FollowerEngine(
                BlockDevice(SLOTS),
                journaled=JournaledDevice(BlockDevice(SLOTS)),
            )

    def test_concurrent_apply_and_snapshot(self):
        """Apply-path stress: one feeder drains the shipped frames while
        reader threads hammer ``snapshot()`` and other threads post acks.

        Under ``REPRO_RACESAN=1`` the watching block instruments the
        shipper and follower and fails on any lockset race or
        ``# guarded-by:`` mismatch; without the switch it is a no-op
        and this is a plain concurrency smoke test.
        """
        device, shipper = _primary()
        for seed in range(48):
            _write_group(device, seed, blocks=(seed % 4,))
        frames = shipper.frames_since(0)
        assert frames is not None and len(frames) == 48
        follower = FollowerEngine(BlockDevice(SLOTS))

        stop = threading.Event()

        def reader():
            while not stop.is_set():
                follower.snapshot()
                shipper.snapshot()

        def acker(name):
            for seq in range(1, 49):
                shipper.ack(name, seq)

        readers = [threading.Thread(target=reader) for __ in range(4)]
        ackers = [
            threading.Thread(target=acker, args=(f"f{i}",)) for i in range(3)
        ]
        with racesan.watching(follower, shipper):
            for thread in readers + ackers:
                thread.start()
            for frame in frames:
                follower.feed(frame)
            for thread in ackers:
                thread.join()
            stop.set()
            for thread in readers:
                thread.join()
        assert follower.applied_seq == 48
        assert shipper.acks() == {f"f{i}": 48 for i in range(3)}
        assert np.array_equal(
            follower.device.dump_blocks(), device.dump_blocks()
        )


# ----------------------------------------------------------------------
# failover controller (deterministic: fake probe + clock)
# ----------------------------------------------------------------------


class _Candidate:
    def __init__(self, applied_seq: int) -> None:
        self._seq = applied_seq
        self.promoted = False

    def replication_state(self) -> dict:
        return {"applied_seq": self._seq}

    def promote(self) -> None:
        self.promoted = True


class TestFailoverController:
    def test_promotes_after_threshold_consecutive_failures(self):
        results = [
            ProbeResult(True),
            ProbeResult(False),
            ProbeResult(True),  # recovery resets the streak
            ProbeResult(False),
            ProbeResult(False),
            ProbeResult(False),
        ]
        probe_iter = iter(results)
        candidate = _Candidate(5)
        controller = FailoverController(
            lambda: next(probe_iter),
            [candidate],
            threshold=3,
            clock=lambda: 0.0,
        )
        outcomes = [controller.tick() for __ in results]
        assert outcomes[:5] == [None] * 5
        assert outcomes[5] is candidate
        assert candidate.promoted
        assert controller.snapshot()["promoted"]

    def test_picks_most_caught_up_candidate(self):
        behind, ahead = _Candidate(3), _Candidate(7)
        controller = FailoverController(
            lambda: ProbeResult(False),
            [behind, ahead],
            threshold=1,
            clock=lambda: 0.0,
        )
        assert controller.tick() is ahead
        assert ahead.promoted and not behind.promoted

    def test_breaker_open_counts_as_failure_when_configured(self):
        probe = lambda: ProbeResult(True, breaker_open=True)  # noqa: E731
        candidate = _Candidate(1)
        strict = FailoverController(
            probe, [candidate], threshold=1, clock=lambda: 0.0
        )
        assert strict.tick() is candidate
        lenient = FailoverController(
            probe,
            [_Candidate(1)],
            threshold=1,
            clock=lambda: 0.0,
            fail_on_breaker_open=False,
        )
        assert lenient.tick() is None

    def test_no_double_promotion(self):
        candidate = _Candidate(1)
        controller = FailoverController(
            lambda: ProbeResult(False),
            [candidate],
            threshold=1,
            clock=lambda: 0.0,
        )
        assert controller.tick() is candidate
        assert controller.tick() is None  # already promoted


# ----------------------------------------------------------------------
# journal hooks backing the stack
# ----------------------------------------------------------------------


class TestJournalHooks:
    def test_on_commit_payload_is_a_parseable_group(self):
        device = JournaledDevice(BlockDevice(SLOTS))
        captured = {}

        def observer(seq: int, records: bytes) -> None:
            captured[seq] = records

        device.journal.on_commit = observer
        _write_group(device, 0, blocks=(0, 1))
        assert list(captured) == [1]
        journal = WriteAheadJournal()
        journal.ingest(captured[1])
        groups, committed, tail_records, __ = journal.parse()
        assert list(committed) == [1]
        assert len(groups[1]) == 2
        assert tail_records == 0

    def test_reset_to_sets_horizon(self):
        journal = WriteAheadJournal()
        journal.reset_to(41)
        assert journal.truncated_upto == 41
        assert journal.begin_group() == 42

    def test_checkpoint_advances_next_seq(self):
        journal = WriteAheadJournal()
        journal.ingest(b"")  # no-op ingest keeps buffers valid
        journal.checkpoint(9)
        assert journal.begin_group() == 10

    def test_recover_scan_false_skips_scan(self):
        device = JournaledDevice(BlockDevice(SLOTS))
        _write_group(device, 0)
        replica = JournaledDevice(BlockDevice(SLOTS))
        captured = {}
        device2 = JournaledDevice(BlockDevice(SLOTS))
        device2.journal.on_commit = lambda seq, rec: captured.update(
            {seq: rec}
        )
        _write_group(device2, 0)
        replica.journal.ingest(captured[1])
        report = replica.recover(scan=False)
        assert report.replayed_groups == 1
        assert report.replayed_block_ids == [0]
        assert report.corrupt_blocks == []
        # the full scan at promotion still certifies
        assert replica.scan() == []
