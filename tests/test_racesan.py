"""Unit tests for the runtime lockset sanitizer
(:mod:`repro.analysis.racesan`).

These force the sanitizer on (``force=True``) so they run in every CI
leg; the env-gated wiring inside the stress tests is exercised
separately by the ``REPRO_RACESAN=1`` smoke job.
"""

import threading

import pytest

from repro.analysis import racesan
from repro.analysis.racesan import RaceSanitizer, guarded_facts, watching


class LockedBox:
    """Correctly locked: every access holds the declared guard."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._value += 1

    def get(self):
        with self._lock:
            return self._value


class RacyBox(LockedBox):
    """Same field, but one mutator skips the lock."""

    def bump_unlocked(self):
        self._value += 1


class WrongLockBox:
    """Consistently locked -- under a lock the annotation doesn't name."""

    def __init__(self):
        self._lock = threading.Lock()
        self._other = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def bump(self):
        with self._other:
            self._value += 1


FACTS = {
    "LockedBox": {"_value": "_lock"},
    "WrongLockBox": {"_value": "_lock"},
}


def _hammer(fn, threads=4, iters=200):
    # The barrier keeps all workers alive at once: a worker that
    # finished before the next started could donate its (reused)
    # thread ident, and the field would never look shared.
    barrier = threading.Barrier(threads)

    def run():
        barrier.wait()
        for __ in range(iters):
            fn()

    workers = [threading.Thread(target=run) for __ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestWatching:
    def test_disabled_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_RACESAN", raising=False)
        box = RacyBox()
        with watching(box, facts=FACTS) as san:
            assert san is None
            _hammer(box.bump_unlocked)  # racy, but nobody is looking
        assert type(box) is RacyBox

    def test_env_switch_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_RACESAN", "1")
        box = LockedBox()
        with watching(box, facts=FACTS) as san:
            assert san is not None
            box.bump()
        assert type(box) is LockedBox

    def test_clean_class_is_clean(self):
        box = LockedBox()
        with watching(box, force=True, facts=FACTS) as san:
            _hammer(box.bump)
        assert box.get() == 800
        assert san.races == []
        assert san.mismatches == []

    def test_seeded_race_is_detected(self):
        box = RacyBox()
        with pytest.raises(AssertionError, match="RACE on .*\\._value"):
            with watching(box, force=True, facts=FACTS) as san:
                _hammer(box.bump_unlocked)
        assert len(san.races) == 1
        report = san.races[0]
        assert report.attr == "_value"
        assert report.claimed_lock == "_lock"
        # the site points at this test file, not the sanitizer
        assert report.site_b.startswith("test_racesan.py:")

    def test_wrong_lock_is_a_guard_mismatch_not_a_race(self):
        box = WrongLockBox()
        with pytest.raises(AssertionError, match="guard mismatch"):
            with watching(box, force=True, facts=FACTS) as san:
                _hammer(box.bump)
        assert san.races == []
        assert len(san.mismatches) == 1
        assert "_other" in san.mismatches[0]

    def test_single_thread_init_never_flags(self):
        # constructor-style initialization stays exclusive: no guard
        # needed before the object is shared
        box = RacyBox()
        with watching(box, force=True, facts=FACTS):
            for __ in range(100):
                box.bump_unlocked()

    def test_nesting_raises(self):
        box = LockedBox()
        with watching(box, force=True, facts=FACTS):
            with pytest.raises(RuntimeError, match="nest"):
                with watching(box, force=True, facts=FACTS):
                    pass

    def test_uninstall_restores_class_and_locks(self):
        box = LockedBox()
        original_lock = box._lock
        with watching(box, force=True, facts=FACTS):
            assert type(box).__name__ == "_RaceSan_LockedBox"
            assert box._lock is not original_lock  # proxied
        assert type(box) is LockedBox
        assert box._lock is original_lock

    def test_unknown_class_installs_nothing(self):
        class Plain:
            def __init__(self):
                self.n = 0

        plain = Plain()
        san = RaceSanitizer(facts=FACTS)
        assert san.install(plain) is False

    def test_body_exception_propagates_unmasked(self):
        box = LockedBox()
        with pytest.raises(ValueError, match="boom"):
            with watching(box, force=True, facts=FACTS):
                raise ValueError("boom")


class TestFindings:
    def test_race_renders_as_findings(self):
        box = RacyBox()
        try:
            with watching(box, force=True, facts=FACTS) as san:
                _hammer(box.bump_unlocked)
        except AssertionError:
            pass
        findings = san.to_findings()
        assert [f.rule for f in findings] == ["REPRO-R002"]
        assert findings[0].name == "lockset-race"
        assert findings[0].file == "test_racesan.py"
        assert findings[0].line > 0

    def test_mismatch_renders_as_findings(self):
        box = WrongLockBox()
        try:
            with watching(box, force=True, facts=FACTS) as san:
                _hammer(box.bump)
        except AssertionError:
            pass
        findings = san.to_findings()
        assert [f.rule for f in findings] == ["REPRO-R003"]
        assert findings[0].name == "guard-mismatch"


class TestGuardedFacts:
    def test_repo_facts_cover_the_serving_stack(self):
        facts = guarded_facts()
        assert facts["Counter"]["_value"] == "_lock"
        assert facts["JournalShipper"]["last_seq"] == "_lock"
        assert facts["FollowerEngine"]["applied_seq"] == "_lock"
        assert facts["FailoverController"]["promoted"] == "_lock"

    def test_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RACESAN", raising=False)
        assert racesan.enabled() is False
        monkeypatch.setenv("REPRO_RACESAN", "1")
        assert racesan.enabled() is True
