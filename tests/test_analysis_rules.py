"""Rule-level tests for repro-lint against known-good/bad fixtures.

Every rule is exercised both ways: the ``good`` fixture tree must be
silent, and each planted defect in the ``bad`` tree must be reported
with its exact rule id and line number — the fixtures' docstrings
state the expected positions, and these tests hold them to it.
"""

from pathlib import Path

import pytest

from repro.analysis.engine import run_analysis
from repro.analysis.model import build_model
from repro.analysis.source import SourceFile, load_source_tree

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def _analyze(tree):
    return run_analysis(root=FIXTURES / tree)


class TestGoodFixtures:
    def test_good_tree_is_clean(self):
        report = _analyze("good")
        assert report.findings == []
        assert report.files_analyzed == 13

    def test_good_lock_graph_is_ordered(self):
        report = _analyze("good")
        graph = report.data["lock_graph"]
        edges = {(e["from"], e["to"]) for e in graph["edges"]}
        assert ("Ordered._a", "Ordered._b") in edges
        assert ("Ordered._b", "Ordered._a") not in edges


class TestBadFixtures:
    @pytest.fixture(scope="class")
    def findings(self):
        return _analyze("bad").findings

    def _at(self, findings, filename):
        return [
            (f.line, f.rule) for f in findings if f.file.endswith(filename)
        ]

    def test_lock_discipline_exact_positions(self, findings):
        assert self._at(findings, "guarded.py") == [
            (13, "REPRO-L001"),
            (19, "REPRO-L003"),
        ]

    def test_lock_order_cycle(self, findings):
        cycles = [f for f in findings if f.rule == "REPRO-L002"]
        assert len(cycles) == 1
        extra = dict(cycles[0].extra)
        assert set(extra["cycle"]) == {"Deadlocky._a", "Deadlocky._b"}
        assert "Deadlocky._a" in cycles[0].message

    def test_io_accounting_exact_positions(self, findings):
        assert self._at(findings, "io_layer.py") == [
            (9, "REPRO-I001"),
            (14, "REPRO-I001"),
        ]

    def test_flag_hygiene_exact_positions(self, findings):
        assert self._at(findings, "fault.py") == [
            (8, "REPRO-F001"),
            (9, "REPRO-F001"),
            (13, "REPRO-F001"),
            (17, "REPRO-F001"),
        ]

    def test_thread_entry_exact_positions(self, findings):
        # includes the multiprocessing.Process(target=) entry at 26:
        # process workers need explicit parents just like threads
        assert self._at(findings, "worker.py") == [
            (9, "REPRO-T001"),
            (19, "REPRO-T001"),
            (26, "REPRO-T001"),
        ]

    def test_server_thread_entry_exact_positions(self, findings):
        # request-handler methods and set_app-registered WSGI __call__
        # run on per-request threads: spans there need parent= too
        assert self._at(findings, "httpd.py") == [
            (8, "REPRO-T001"),
            (14, "REPRO-T001"),
        ]

    def test_procpool_entry_exact_positions(self, findings):
        # the span-shipping fork entry: the worker's first span needs
        # parent=, and current_span() in a forked child is always None
        assert self._at(findings, "procpool.py") == [
            (7, "REPRO-T001"),
            (13, "REPRO-T001"),
        ]

    def test_timer_entry_exact_positions(self, findings):
        # threading.Timer fires its callback on a fresh thread (the
        # failover controller's reschedule loop): positional and
        # function= forms are both thread entries
        assert self._at(findings, "timerloop.py") == [
            (8, "REPRO-T001"),
            (16, "REPRO-T001"),
        ]

    def test_rename_durability_exact_positions(self, findings):
        # 12: the historical missing-dir-fsync bug; 17: fsync in only
        # one branch; 31: unsatisfied-wrapper call site
        assert self._at(findings, "protocol_persist.py") == [
            (12, "REPRO-P001"),
            (17, "REPRO-P001"),
            (31, "REPRO-P001"),
        ]

    def test_journal_commit_exact_positions(self, findings):
        # 10: early return mid-loop without commit (at the anchor);
        # 20: a second begin_group() before the commit (at the
        # forbidden call)
        assert self._at(findings, "protocol_journal.py") == [
            (10, "REPRO-P002"),
            (20, "REPRO-P002"),
        ]

    def test_flush_before_persist_exact_positions(self, findings):
        # 14 twice: the historical sidecar-before-flush bug misses
        # both the pool flush and the arena sync; 20: flush dominates
        # but the sync is missing
        assert self._at(findings, "protocol_flush.py") == [
            (14, "REPRO-P003"),
            (14, "REPRO-P003"),
            (20, "REPRO-P003"),
        ]

    def test_ship_before_ack_exact_positions(self, findings):
        # 8: blind ack; 19: frames_since() raised into a swallowing
        # handler, so a path reaches the ack without shipping
        assert self._at(findings, "protocol_ship.py") == [
            (8, "REPRO-P004"),
            (19, "REPRO-P004"),
        ]

    def test_guard_facts_exact_positions(self, findings):
        # 13: guarded-by names a nonexistent lock; 23: it names a
        # lock sequence
        assert self._at(findings, "guards.py") == [
            (13, "REPRO-R001"),
            (23, "REPRO-R001"),
        ]

    def test_total_finding_count(self, findings):
        # one per planted defect, no duplicates, nothing extra
        assert len(findings) == 30


class TestMarkerMachinery:
    def _single(self, text):
        sf = SourceFile(Path("mem"), "mem.py", text)
        return sf

    def test_suppression_requires_reason(self):
        report = run_analysis(
            files=[
                self._single(
                    "import threading\n"
                    "\n"
                    "\n"
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._n = 0  # guarded-by: _lock\n"
                    "\n"
                    "    def peek(self):\n"
                    "        # lint: allow=lock-discipline\n"
                    "        return self._n\n"
                )
            ]
        )
        rules = [f.rule for f in report.findings]
        # the access is suppressed, but the reasonless marker is flagged
        assert rules == ["REPRO-A000"]

    def test_standalone_marker_covers_next_code_line(self):
        sf = self._single(
            "def f(device):\n"
            "    # lint: uncounted (testing)\n"
            "    return device.peek_block(0)\n"
        )
        report = run_analysis(files=[sf])
        assert report.findings == []

    def test_guarded_attrs_inherited_by_subclasses(self):
        text = (
            "import threading\n"
            "\n"
            "\n"
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n"
            "\n"
            "\n"
            "class Child(Base):\n"
            "    def leak(self):\n"
            "        return self._n\n"
        )
        report = run_analysis(files=[self._single(text)])
        assert [(f.rule, f.line) for f in report.findings] == [
            ("REPRO-L001", 12)
        ]

    def test_marker_inside_string_is_ignored(self):
        sf = self._single(
            'MESSAGE = "# guarded-by: _lock"\n'
            'OTHER = "# lint: allow=lock-discipline"\n'
        )
        assert sf.markers == {}

    def test_a000_names_the_suppressed_rule(self):
        report = run_analysis(
            files=[
                self._single(
                    "def f(device):\n"
                    "    # lint: uncounted\n"
                    "    return device.peek_block(0)\n"
                )
            ]
        )
        assert [f.rule for f in report.findings] == ["REPRO-A000"]
        assert "io-accounting" in report.findings[0].message

    def test_protocol_exempt_requires_reason(self):
        report = run_analysis(
            files=[
                self._single(
                    "import os\n"
                    "\n"
                    "\n"
                    "def publish(tmp, final):\n"
                    "    # lint: protocol-exempt=REPRO-P001\n"
                    "    os.replace(tmp, final)\n"
                )
            ]
        )
        # the violation is suppressed, but the reasonless marker is
        # flagged and the A000 message names the suppressed rule
        assert [f.rule for f in report.findings] == ["REPRO-A000"]
        assert "REPRO-P001" in report.findings[0].message

    def test_protocol_exempt_with_reason_is_silent(self):
        report = run_analysis(
            files=[
                self._single(
                    "import os\n"
                    "\n"
                    "\n"
                    "def publish(tmp, final):\n"
                    "    # lint: protocol-exempt=REPRO-P001 (callers fsync)\n"
                    "    os.replace(tmp, final)\n"
                )
            ]
        )
        assert report.findings == []

    def test_protocol_exempt_accepts_spec_name_token(self):
        report = run_analysis(
            files=[
                self._single(
                    "import os\n"
                    "\n"
                    "\n"
                    "def publish(tmp, final):\n"
                    "    # lint: protocol-exempt=rename-durability (callers fsync)\n"
                    "    os.replace(tmp, final)\n"
                )
            ]
        )
        assert report.findings == []


class TestProtocolWrapperFollow:
    def _single(self, text):
        return SourceFile(Path("mem"), "mem.py", text)

    def test_satisfying_wrapper_clears_caller(self):
        text = (
            "import os\n"
            "\n"
            "\n"
            "def publish(tmp, final):\n"
            "    os.replace(tmp, final)\n"
            "    os.fsync(0)\n"
            "\n"
            "\n"
            "def caller(tmp, final):\n"
            "    publish(tmp, final)\n"
        )
        report = run_analysis(files=[self._single(text)])
        assert report.findings == []

    def test_unsatisfied_wrapper_site_inherits_anchor(self):
        text = (
            "import os\n"
            "\n"
            "\n"
            "def publish(tmp, final):\n"
            "    # lint: protocol-exempt=REPRO-P001 (callers fsync)\n"
            "    os.replace(tmp, final)\n"
            "\n"
            "\n"
            "def caller(tmp, final):\n"
            "    publish(tmp, final)\n"
        )
        report = run_analysis(files=[self._single(text)])
        # publish itself is exempt; the call site inherits the anchor
        assert [(f.line, f.rule) for f in report.findings] == [
            (10, "REPRO-P001")
        ]

    def test_unsatisfied_wrapper_site_can_discharge(self):
        text = (
            "import os\n"
            "\n"
            "\n"
            "def publish(tmp, final):\n"
            "    # lint: protocol-exempt=REPRO-P001 (callers fsync)\n"
            "    os.replace(tmp, final)\n"
            "\n"
            "\n"
            "def caller(tmp, final):\n"
            "    publish(tmp, final)\n"
            "    os.fsync(0)\n"
        )
        report = run_analysis(files=[self._single(text)])
        assert report.findings == []

    def test_protocol_report_section(self):
        text = (
            "import os\n"
            "\n"
            "\n"
            "def publish(tmp, final):\n"
            "    os.replace(tmp, final)\n"
        )
        report = run_analysis(files=[self._single(text)])
        specs = {s["rule"]: s for s in report.data["protocols"]["specs"]}
        assert specs["REPRO-P001"]["anchors"] == 1
        assert specs["REPRO-P001"]["violations"] == 1
        assert specs["REPRO-P002"]["anchors"] == 0


class TestModelResolution:
    def test_zip_loop_lock_provenance(self):
        # the ShardedBufferPool pattern: iterating zip(shards, locks)
        files = load_source_tree(
            Path(__file__).resolve().parents[1] / "src" / "repro" / "service",
            prefix="src/repro/service",
        )
        model = build_model(files)
        pool = model.classes["ShardedBufferPool"]
        assert pool.lock_attrs["_io_lock"] is False
        assert pool.lock_attrs["_locks"] is True  # a list of locks

    def test_constructor_assignment_types_attribute(self):
        files = load_source_tree(
            Path(__file__).resolve().parents[1] / "src" / "repro" / "service",
            prefix="src/repro/service",
        )
        model = build_model(files)
        engine = model.classes["QueryEngine"]
        assert engine.attr_types["_pool"] == ("ShardedBufferPool", False)
