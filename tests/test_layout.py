"""Unit tests for the flat coefficient layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wavelet.layout import (
    SCALING_INDEX,
    detail_index,
    index_level,
    index_to_detail,
    level_slice,
    num_details,
    support_of_index,
)


class TestDetailIndex:
    def test_known_layout(self):
        # n = 3: [u_{3,0}, w_{3,0}, w_{2,0}, w_{2,1}, w_{1,0..3}]
        assert detail_index(3, 3, 0) == 1
        assert detail_index(3, 2, 0) == 2
        assert detail_index(3, 2, 1) == 3
        assert detail_index(3, 1, 0) == 4
        assert detail_index(3, 1, 3) == 7

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            detail_index(3, 0, 0)
        with pytest.raises(ValueError):
            detail_index(3, 4, 0)
        with pytest.raises(ValueError):
            detail_index(3, 2, 2)

    @given(st.integers(min_value=1, max_value=12), st.data())
    def test_roundtrip(self, n, data):
        level = data.draw(st.integers(min_value=1, max_value=n))
        position = data.draw(
            st.integers(min_value=0, max_value=(1 << (n - level)) - 1)
        )
        index = detail_index(n, level, position)
        assert index_to_detail(n, index) == (level, position)

    @given(st.integers(min_value=1, max_value=12))
    def test_layout_is_a_bijection(self, n):
        seen = {
            detail_index(n, level, position)
            for level in range(1, n + 1)
            for position in range(1 << (n - level))
        }
        assert seen == set(range(1, 1 << n))


class TestIndexToDetail:
    def test_scaling_slot_rejected(self):
        with pytest.raises(ValueError):
            index_to_detail(3, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            index_to_detail(3, 8)

    def test_index_level_handles_scaling(self):
        assert index_level(3, SCALING_INDEX) == 3
        assert index_level(3, 1) == 3
        assert index_level(3, 4) == 1


class TestLevelGeometry:
    def test_level_slice(self):
        assert level_slice(3, 3) == slice(1, 2)
        assert level_slice(3, 1) == slice(4, 8)

    def test_num_details(self):
        assert num_details(4, 4) == 1
        assert num_details(4, 1) == 8

    def test_support_of_index(self):
        assert support_of_index(3, SCALING_INDEX) == (0, 8)
        assert support_of_index(3, 1) == (0, 8)  # w_{3,0}
        assert support_of_index(3, 3) == (4, 8)  # w_{2,1}
        assert support_of_index(3, 7) == (6, 8)  # w_{1,3}

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_supports_are_dyadic(self, n, data):
        index = data.draw(st.integers(min_value=1, max_value=(1 << n) - 1))
        start, stop = support_of_index(n, index)
        length = stop - start
        assert length & (length - 1) == 0
        assert start % length == 0
