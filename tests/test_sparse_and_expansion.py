"""Tests for the sparse-data transform variant and the non-standard
cubic expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.append.nonstandard import expand_nonstandard
from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.datasets.synthetic import sparse_cube
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.tiled import TiledNonStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt


class TestSparseTransforms:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_standard_skipping_is_lossless(self, seed):
        data = sparse_cube((32, 32), density=0.02, seed=seed % 100)
        store = DenseStandardStore((32, 32))
        report = transform_standard_chunked(
            store, data, (4, 4), skip_zero_chunks=True
        )
        assert np.allclose(store.to_array(), standard_dwt(data))
        assert report.extras["skipped_chunks"] > 0
        assert report.chunks + report.extras["skipped_chunks"] == 64

    @given(
        st.sampled_from(["zorder", "rowmajor"]),
        st.booleans(),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_nonstandard_skipping_is_lossless(self, order, buffered, seed):
        data = sparse_cube((32, 32), density=0.02, seed=seed % 100)
        store = DenseNonStandardStore(32, 2)
        report = transform_nonstandard_chunked(
            store,
            data,
            4,
            order=order,
            buffer_crest=buffered,
            skip_zero_chunks=True,
        )
        assert np.allclose(store.to_array(), nonstandard_dwt(data))
        assert report.extras["skipped_chunks"] > 0

    def test_io_tracks_occupancy_not_domain(self):
        dense_data = sparse_cube((64, 64), density=1.0, seed=1)
        sparse_data = sparse_cube((64, 64), density=0.005, seed=1)
        full_store = DenseStandardStore((64, 64))
        full = transform_standard_chunked(
            full_store, dense_data, (8, 8), skip_zero_chunks=True
        )
        thin_store = DenseStandardStore((64, 64))
        thin = transform_standard_chunked(
            thin_store, sparse_data, (8, 8), skip_zero_chunks=True
        )
        assert thin.coefficient_ios < full.coefficient_ios / 2

    def test_all_zero_dataset_costs_nothing(self):
        store = DenseStandardStore((16, 16))
        report = transform_standard_chunked(
            store, np.zeros((16, 16)), (4, 4), skip_zero_chunks=True
        )
        assert report.coefficient_ios == 0
        assert report.chunks == 0


class TestNonStandardExpansion:
    @given(
        st.sampled_from([(8, 1), (8, 2), (4, 3)]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_expansion_equals_zero_padded_transform(self, geometry, seed):
        size, ndim = geometry
        data = np.random.default_rng(seed).normal(size=(size,) * ndim)
        old = DenseNonStandardStore(size, ndim)
        apply_chunk_nonstandard(old, data, (0,) * ndim)
        new = DenseNonStandardStore(2 * size, ndim)
        expand_nonstandard(old, new)
        padded = np.zeros((2 * size,) * ndim)
        padded[tuple(slice(0, size) for __ in range(ndim))] = data
        assert np.allclose(new.to_array(), nonstandard_dwt(padded))

    def test_expanded_store_accepts_new_chunks(self):
        """After expansion the other three quadrants can be filled by
        ordinary SHIFT-SPLIT chunk loads."""
        rng = np.random.default_rng(5)
        quadrants = rng.normal(size=(2, 2, 8, 8))
        old = DenseNonStandardStore(8, 2)
        apply_chunk_nonstandard(old, quadrants[0, 0], (0, 0))
        new = DenseNonStandardStore(16, 2)
        expand_nonstandard(old, new)
        for gx in range(2):
            for gy in range(2):
                if gx == 0 and gy == 0:
                    continue
                apply_chunk_nonstandard(
                    new, quadrants[gx, gy], (gx, gy), fresh=False
                )
        full = np.block(
            [
                [quadrants[0, 0], quadrants[0, 1]],
                [quadrants[1, 0], quadrants[1, 1]],
            ]
        )
        assert np.allclose(new.to_array(), nonstandard_dwt(full))

    def test_tiled_expansion(self):
        data = np.random.default_rng(6).normal(size=(8, 8))
        old = TiledNonStandardStore(8, 2, block_edge=2, pool_capacity=32)
        apply_chunk_nonstandard(old, data, (0, 0))
        new = TiledNonStandardStore(16, 2, block_edge=2, pool_capacity=32)
        expand_nonstandard(old, new)
        new.flush()
        padded = np.zeros((16, 16))
        padded[:8, :8] = data
        assert np.allclose(new.to_array(), nonstandard_dwt(padded))

    def test_size_mismatch_rejected(self):
        old = DenseNonStandardStore(8, 2)
        with pytest.raises(ValueError):
            expand_nonstandard(old, DenseNonStandardStore(8, 2))
        with pytest.raises(ValueError):
            expand_nonstandard(old, DenseNonStandardStore(16, 3))
