"""Known-bad: REPRO-P001 at lines 12 (rename never fsynced -- the
historical missing-dir-fsync bug), 17 (fsync in only one branch), and
31 (an unsatisfied wrapper call site that never fsyncs).
"""

import os


def publish_forgot_fsync(tmp, final):
    # the historical bug: os.replace() alone is not durable -- a
    # crash can lose the directory entry
    os.replace(tmp, final)
    return final


def publish_one_branch(tmp, final, careful):
    os.replace(tmp, final)
    if careful:
        fd = os.open(".", os.O_RDONLY)
        os.fsync(fd)
        os.close(fd)
    return final


def rename_only(tmp, final):  # lint: protocol-exempt=REPRO-P001 (wrapper: callers carry the fsync obligation)
    os.replace(tmp, final)


def publish_via_wrapper(tmp, final):
    # rename_only never fsyncs, so this call site inherits the anchor
    rename_only(tmp, final)
    return final
