"""Known-bad: REPRO-R001 at lines 13 (the ``# guarded-by:`` names a
lock attribute that does not exist on the class) and 23 (it names a
*sequence* of locks, which the runtime sanitizer cannot map to one
mutex).
"""

import threading


class PhantomGuard:
    def __init__(self):
        self._mutex = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1


class ShardGuard:
    def __init__(self):
        self._locks = [threading.Lock() for __ in range(4)]
        self._total = 0  # guarded-by: _locks
