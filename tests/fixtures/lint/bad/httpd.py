"""Known-bad: REPRO-T001 at lines 8 and 14 (server worker threads)."""

from wsgiref.simple_server import WSGIRequestHandler


class Handler(WSGIRequestHandler):
    def handle(self, tracer):
        with tracer.span("http.request"):
            return None


class App:
    def __call__(self, environ, start_response, tracer):
        with tracer.span("wsgi"):
            return []


def attach(server):
    server.set_app(App())
