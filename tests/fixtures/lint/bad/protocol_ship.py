"""Known-bad: REPRO-P004 at lines 8 (blind ack: nothing shipped) and
19 (frames_since() sits in a try whose handler swallows the error, so
a path reaches the ack without it).
"""


def ack_blind(shipper, follower_id, seq):
    shipper.ack(follower_id, seq)
    return seq


def ack_past_swallowed_error(shipper, sink, follower_id, seq):
    try:
        frames = shipper.frames_since(seq)
        for frame in frames:
            sink(frame)
    except ValueError:
        pass
    shipper.ack(follower_id, seq + 1)
