"""Known-bad: REPRO-L002 — a -> b and b -> a form a deadlock cycle."""

import threading


class Deadlocky:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self) -> int:
        with self._a:
            with self._b:
                return 1

    def backward(self) -> int:
        with self._b:
            with self._a:
                return 2
