"""Known-bad: REPRO-F001 at lines 8, 9, 13 and 17."""

from dataclasses import dataclass


@dataclass
class BadConfig:
    read_error_rate: float = 0.25
    enabled: bool = True


class BadInjector:
    def __init__(self, *, verify: bool = True):
        self.verify = verify


def make_bad(rate: float = 0.5) -> BadInjector:
    return BadInjector()
