"""Known-bad: REPRO-L001 at line 13, REPRO-L003 at line 19."""

import threading


class BadCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def bump(self) -> None:
        # unlocked access to a guarded attribute
        self._hits += 1

    def _sweep(self) -> None:  # lint: holds=_lock
        self._hits = 0

    def reset(self) -> None:
        self._sweep()
