"""Known-bad: REPRO-I001 at lines 9 (def) and 14 (naked peek)."""


class LeakyDevice:
    def __init__(self, blocks):
        self._blocks = blocks

    # reads without charging IOStats and without an uncounted marker
    def read_block(self, block_id):
        return self._blocks[block_id]


def snoop(device):
    return device.peek_block(0)
