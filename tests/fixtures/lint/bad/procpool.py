"""Known-bad: REPRO-T001 at lines 7 and 13."""

import multiprocessing


def scatter(tracer, worker_index):
    with tracer.span("procpool.worker", worker=worker_index):
        return worker_index


def forked(tracer, worker_index):
    # a forked child starts with a fresh context: this is always None
    tracer.current_span()
    return scatter(tracer, worker_index)


def fan_out(tracer, workers):
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=forked, args=(tracer, index))
        for index in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
