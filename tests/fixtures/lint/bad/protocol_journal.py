"""Known-bad: REPRO-P002 at lines 10 (early return mid-loop leaves
the group uncommitted) and 20 (a second begin_group() opens before
the first group's commit record lands).
"""


def write_group_early_return(journal, payloads):
    journal.begin_group()
    for payload in payloads:
        journal.append_data(payload)
        if payload is None:
            return False
    journal.append_commit()
    return True


def overlapping_groups(journal, first, second):
    journal.begin_group()
    journal.append_data(first)
    journal.begin_group()
    journal.append_data(second)
    journal.append_commit()
