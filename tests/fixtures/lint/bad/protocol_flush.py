"""Known-bad: REPRO-P003 -- the historical sidecar-before-flush bug.
Lines 14 (x2: the sidecar is saved before both the pool flush and the
arena sync) and 20 (flush dominates but the arena sync is missing).
"""


class Hub:
    def __init__(self, pool, raw, persist):
        self._pool = pool
        self._raw = raw
        self._sidecar = persist

    def close(self):
        self._sidecar.save_state()
        self._pool.flush()
        self._raw.sync()

    def update_half(self, block):
        self._pool.flush()
        self._sidecar.save_state()
