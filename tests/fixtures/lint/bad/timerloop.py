"""Known-bad: REPRO-T001 at lines 8 and 16 (Timer-fired callbacks)."""

import threading


def schedule(tracer):
    def tick():
        with tracer.span("tick"):
            return None

    threading.Timer(0.5, tick).start()


def reschedule(tracer):
    def beat():
        return tracer.current_span()

    timer = threading.Timer(interval=1.0, function=beat)
    timer.daemon = True
    timer.start()
