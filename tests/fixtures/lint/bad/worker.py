"""Known-bad: REPRO-T001 at lines 8 and 18."""

from concurrent.futures import ThreadPoolExecutor


def fan_out(tracer, items):
    def work(item):
        with tracer.span("work", item=item):
            return item * 2

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    return [future.result() for future in futures]


def probe(tracer, pool):
    def entry():
        return tracer.current_span()

    pool.submit(entry)
