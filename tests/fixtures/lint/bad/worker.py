"""Known-bad: REPRO-T001 at lines 9, 19 and 26."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def fan_out(tracer, items):
    def work(item):
        with tracer.span("work", item=item):
            return item * 2

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    return [future.result() for future in futures]


def probe(tracer, pool):
    def entry():
        return tracer.current_span()

    pool.submit(entry)


def fan_procs(tracer, items):
    def child(item):
        with tracer.span("child", item=item):
            return item

    procs = [
        multiprocessing.Process(target=child, args=(item,))
        for item in items
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
