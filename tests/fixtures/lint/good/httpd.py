"""Known-good: server worker threads root their request spans."""

from wsgiref.simple_server import WSGIRequestHandler


class Handler(WSGIRequestHandler):
    def handle(self, tracer):
        with tracer.span("http.request", parent=None):
            return None


class App:
    def __call__(self, environ, start_response, tracer):
        with tracer.span("wsgi", parent=None):
            return []


def attach(server):
    server.set_app(App())
