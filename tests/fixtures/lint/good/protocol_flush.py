"""Known-good: REPRO-P003 flush-before-persist.  Both a buffer-pool
flush and an arena sync dominate every ``save_state()`` call, through
nested ``with`` blocks, early returns before the anchor, and one
reasoned exemption for a logical-only mutation.
"""


class Checkpointer:
    def __init__(self, pool, raw, persist):
        self._pool = pool
        self._raw = raw
        self._sidecar = persist

    def checkpoint(self):
        self._pool.flush()
        self._raw.sync()
        self._sidecar.save_state()

    def maybe_checkpoint(self, dirty):
        # the early return never reaches the anchor, so it owes no
        # flush; the fallthrough path is fully dominated
        if not dirty:
            return False
        self._pool.flush()
        self._raw.sync()
        self._sidecar.save_state()
        return True

    def checkpoint_nested(self, audit_path):
        # nested with: domination holds through context managers
        with open(audit_path, "w") as audit:
            with memoryview(b"") as _view:
                self._pool.flush()
                self._raw.sync()
            audit.write("checkpointed\n")
        self._sidecar.save_state()

    def register_only(self):
        # lint: protocol-exempt=REPRO-P003 (logical-only mutation: no arena bytes written)
        self._sidecar.save_state()
