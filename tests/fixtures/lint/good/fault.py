"""Known-good: robustness flags default to disabled."""

from dataclasses import dataclass


@dataclass
class InjectionConfig:
    read_error_rate: float = 0.0
    enabled: bool = False


class Injector:
    def __init__(self, *, error_rate: float = 0.0, verify: bool = False):
        self.error_rate = error_rate
        self.verify = verify


def make_injector(rate: float = 0.0, armed: bool = False) -> Injector:
    return Injector(error_rate=rate, verify=armed)
