"""Known-good: locks always nest in one global order (a before b)."""

import threading


class Ordered:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()

    def both(self) -> int:
        with self._a:
            with self._b:
                return 1
