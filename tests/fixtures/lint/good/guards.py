"""Known-good: REPRO-R001 guard-facts.  Every ``# guarded-by:``
annotation names a scalar lock attribute that exists on the class (or
is inherited from a base), so the static facts the runtime sanitizer
consumes are all well-formed.
"""

import threading


class WellGuarded:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1


class ChildGuarded(WellGuarded):
    def __init__(self):
        super().__init__()
        self._extra = 0  # guarded-by: _lock

    def add(self, n):
        with self._lock:
            self._extra += n
