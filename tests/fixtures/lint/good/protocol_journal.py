"""Known-good: REPRO-P002 journal-commit through adversarial shapes.
Every ``append_data()`` reaches ``append_commit()`` before any normal
return, and no ``begin_group()`` is reachable between data and commit
-- including the nested-groups loop where the *next* iteration's
``begin_group()`` is only reachable through the commit.
"""


class Journal:
    def __init__(self):
        self.records = []

    def begin_group(self):
        self.records.append("begin")

    def append_data(self, payload):
        self.records.append(payload)

    def append_commit(self):
        self.records.append("commit")


def write_group(journal, payloads):
    journal.begin_group()
    for payload in payloads:
        journal.append_data(payload)
    journal.append_commit()


def write_groups(journal, groups):
    # the outer back edge makes begin_group() reachable again after
    # append_data(), but only through append_commit() -- legal
    for group in groups:
        journal.begin_group()
        for payload in group:
            journal.append_data(payload)
        journal.append_commit()


def drain_pending(journal, pending):
    # while/else: the else arm commits on the only normal loop exit
    journal.begin_group()
    while pending:
        journal.append_data(pending.pop())
    else:
        journal.append_commit()
    return len(journal.records)


def append_checked(journal, payload):
    # raise-only branch: an escaping exception is a failed operation,
    # so the raising path owes no commit
    journal.begin_group()
    journal.append_data(payload)
    if payload is None:
        raise ValueError("empty payload")
    journal.append_commit()


def _commit(journal):
    journal.append_commit()


def write_via_helper(journal, payload):
    # wrapper-follow: the helper's append_commit() satisfies the
    # obligation one level deep
    journal.begin_group()
    journal.append_data(payload)
    _commit(journal)
