"""Known-good: forked span-shipping workers root their spans."""

import multiprocessing


def scatter(tracer, worker_index, trace_parent):
    with tracer.span(
        "procpool.worker", parent=trace_parent, worker=worker_index
    ):
        # the explicit parent above populates the context: nested
        # spans inherit it and need no parent= of their own
        with tracer.span("worker.chunks"):
            pass
        with tracer.span("worker.tiles"):
            pass


def forked(tracer, worker_index):
    scatter(tracer, worker_index, trace_parent=None)


def fan_out(tracer, workers):
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=forked, args=(tracer, index))
        for index in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
