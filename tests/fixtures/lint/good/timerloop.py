"""Known-good: Timer-fired callbacks open spans with explicit parents."""

import threading


def schedule(tracer):
    root = tracer.current_span()

    def tick():
        with tracer.span("tick", parent=root):
            return None

    threading.Timer(0.5, tick).start()


def reschedule(tracer):
    root = tracer.current_span()

    def beat():
        with tracer.span("beat", parent=root):
            return None

    timer = threading.Timer(interval=1.0, function=beat)
    timer.daemon = True
    timer.start()
