"""Known-good: REPRO-P001 rename-durability through adversarial
control flow.  Every ``os.replace()`` reaches a directory fsync on
all non-raising paths: satisfier in a ``finally``, one batched fsync
after a loop, a satisfying wrapper, and an exempted raw wrapper whose
callers discharge the obligation.
"""

import os


def _fsync_dir(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_publish(tmp, final):
    os.replace(tmp, final)
    _fsync_dir(os.path.dirname(final))


def publish_in_finally(tmp, final):
    # the satisfier lives in the finally: both the return-in-try arm
    # and the raising arm run it before leaving
    try:
        os.replace(tmp, final)
        return True
    finally:
        _fsync_dir(os.path.dirname(final))


def publish_batch(pairs):
    # one directory fsync after the loop covers every rename: the
    # back edge still funnels every path through the satisfier
    for tmp, final in pairs:
        os.replace(tmp, final)
    _fsync_dir(".")


def publish_many(pairs):
    # wrapper-follow: atomic_publish discharges the spec internally,
    # so call sites carry no obligation
    for tmp, final in pairs:
        atomic_publish(tmp, final)


def rename_raw(tmp, final):
    # lint: protocol-exempt=REPRO-P001 (wrapper: callers carry the fsync obligation)
    os.replace(tmp, final)


def publish_via_raw(tmp, final):
    # rename_raw does not fsync, so this call site inherits the
    # anchor -- and discharges it
    rename_raw(tmp, final)
    _fsync_dir(os.path.dirname(final))
