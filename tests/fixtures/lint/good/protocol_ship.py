"""Known-good: REPRO-P004 ship-before-ack.  Shipping (or re-reading
via ``frames_since``) dominates every ``ack()``, including an ack in
a ``finally`` and a caught-up early return.
"""


def transmit(sink, frames):
    for frame in frames:
        sink(frame)


def ship_and_ack(shipper, sink, follower_id, cursor):
    frames = shipper.frames_since(cursor)
    if frames is None:
        return None
    transmit(sink, frames)
    shipper.ack(follower_id, cursor + len(frames))
    return len(frames)


def ack_in_finally(shipper, sink, follower_id, seq):
    # the ship dominates even the finally-hosted ack: every path into
    # the try has already passed it
    shipper.ship(sink)
    try:
        transmit(sink, [])
    finally:
        shipper.ack(follower_id, seq)


def resend_then_ack(shipper, sink, follower_id, cursor):
    while True:
        frames = shipper.frames_since(cursor)
        if not frames:
            break
        transmit(sink, frames)
        cursor += len(frames)
    shipper.ack(follower_id, cursor)
