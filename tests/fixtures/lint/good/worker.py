"""Known-good: thread- and process-entry spans carry explicit parents."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def fan_out(tracer, items):
    root = tracer.current_span()

    def work(item):
        with tracer.span("work", parent=root, item=item):
            return item * 2

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    return [future.result() for future in futures]


def fan_procs(tracer, items):
    root = tracer.current_span()

    def child(item):
        with tracer.span("child", parent=root, item=item):
            return item

    procs = [
        multiprocessing.Process(target=child, args=(item,))
        for item in items
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
