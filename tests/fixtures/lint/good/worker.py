"""Known-good: thread-entry spans carry an explicit parent."""

from concurrent.futures import ThreadPoolExecutor


def fan_out(tracer, items):
    root = tracer.current_span()

    def work(item):
        with tracer.span("work", parent=root, item=item):
            return item * 2

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    return [future.result() for future in futures]
