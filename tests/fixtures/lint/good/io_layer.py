"""Known-good: entry points charge or delegate; peeks are marked."""


class CountingDevice:
    def __init__(self, stats):
        self.stats = stats
        self._blocks = {}

    def read_block(self, block_id):
        self.stats.block_reads += 1
        return self._blocks.get(block_id)

    def write_block(self, block_id, data):
        self.stats.block_writes += 1
        self._blocks[block_id] = data


class Wrapper:
    def __init__(self, inner):
        self._inner = inner

    def read_block(self, block_id):
        return self._inner.read_block(block_id)

    def write_block(self, block_id, data):
        self.write_batch([(block_id, data)])

    def write_batch(self, pairs):
        for block_id, data in pairs:
            self._inner.write_block(block_id, data)

    def peek_block(self, block_id):
        return self._inner.peek_block(block_id)


def checksum_scan(device):
    # lint: uncounted (fixture: verification scan)
    return device.peek_block(0)
