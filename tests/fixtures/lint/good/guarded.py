"""Known-good: guarded attributes accessed only under their lock."""

import threading


class GoodCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock

    def bump(self) -> None:
        with self._lock:
            self._hits += 1

    def _sweep(self) -> None:  # lint: holds=_lock
        self._hits = 0

    def reset(self) -> None:
        with self._lock:
            self._sweep()
