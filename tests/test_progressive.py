"""Tests for progressive range-sum answering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_ops import apply_chunk_standard
from repro.reconstruct.progressive import progressive_range_sum_standard
from repro.reconstruct.rangesum import range_sum_standard
from repro.storage.dense import DenseStandardStore


def _loaded(shape, seed=0, offset=5.0):
    data = np.random.default_rng(seed).normal(size=shape) + offset
    store = DenseStandardStore(shape)
    apply_chunk_standard(store, data, (0,) * len(shape))
    return data, store


class TestExactness:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_final_estimate_is_exact(self, data_strategy):
        data, store = _loaded((32, 16), seed=data_strategy.draw(st.integers(0, 50)))
        lows = (
            data_strategy.draw(st.integers(0, 31)),
            data_strategy.draw(st.integers(0, 15)),
        )
        highs = (
            data_strategy.draw(st.integers(lows[0], 31)),
            data_strategy.draw(st.integers(lows[1], 15)),
        )
        steps = list(progressive_range_sum_standard(store, lows, highs))
        assert steps, "must yield at least one estimate"
        assert steps[-1].exact
        truth = data[
            lows[0] : highs[0] + 1, lows[1] : highs[1] + 1
        ].sum()
        assert np.isclose(steps[-1].estimate, truth)

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_total_io_equals_plain_range_sum(self, data_strategy):
        data, store = _loaded((32, 32), seed=data_strategy.draw(st.integers(0, 50)))
        lows = (
            data_strategy.draw(st.integers(0, 31)),
            data_strategy.draw(st.integers(0, 31)),
        )
        highs = (
            data_strategy.draw(st.integers(lows[0], 31)),
            data_strategy.draw(st.integers(lows[1], 31)),
        )
        steps = list(progressive_range_sum_standard(store, lows, highs))
        store.stats.reset()
        range_sum_standard(store, lows, highs)
        assert steps[-1].coefficients_read == store.stats.coefficient_reads


class TestRefinementBehaviour:
    def test_reads_are_monotone(self):
        __, store = _loaded((64, 64), seed=7)
        steps = list(
            progressive_range_sum_standard(store, (3, 10), (50, 61))
        )
        reads = [step.coefficients_read for step in steps]
        assert reads == sorted(reads)
        assert len(steps) > 2  # genuinely progressive

    def test_early_estimate_is_already_close_on_smooth_data(self):
        """On smooth (offset) data, the first refinements carry most of
        the mass — the point of progressive answering."""
        data, store = _loaded((64, 64), seed=9, offset=100.0)
        lows, highs = (5, 8), (58, 49)
        truth = data[5:59, 8:50].sum()
        steps = list(progressive_range_sum_standard(store, lows, highs))
        halfway = steps[len(steps) // 2]
        assert abs(halfway.estimate - truth) / abs(truth) < 0.01
        assert halfway.coefficients_read < steps[-1].coefficients_read

    def test_full_domain_query_is_one_coefficient(self):
        __, store = _loaded((32, 32), seed=11)
        steps = list(
            progressive_range_sum_standard(store, (0, 0), (31, 31))
        )
        assert steps[-1].coefficients_read == 1

    def test_rank_mismatch_rejected(self):
        __, store = _loaded((16, 16))
        with pytest.raises(ValueError):
            list(progressive_range_sum_standard(store, (0,), (3,)))
