"""End-to-end HTTP tests against a live threading server.

The serving acceptance contract: ``/aggregate`` answers are
bit-identical to direct :class:`QueryEngine` execution of the same
compiled cuts, tenants stay isolated under concurrent load (quota
throttling on one cannot starve the other), expired deadlines produce
206 degraded payloads with sound error bounds, and malformed requests
map to 400s — all over a real ``ThreadingWSGIServer`` on an ephemeral
port.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro

from repro.olap.schema import Dimension
from repro.server.demo import build_demo_hub
from repro.server.http import spawn
from repro.server.hub import ServingHub
from repro.server.slicer import compile_aggregate, parse_cuts, parse_drilldowns
from repro.service.queries import RangeSumQuery


def _request(base, path, key=None, data=None, headers=None, timeout=10):
    request = urllib.request.Request(base + path, data=data)
    if key is not None:
        request.add_header("X-API-Key", key)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            return error.code, json.loads(body)
        except ValueError:
            return error.code, {"raw": body.decode("utf-8", "replace")}


@pytest.fixture(scope="module")
def served():
    hub = build_demo_hub(seed=17)
    server, thread = spawn(hub)
    host, port = server.server_address
    yield hub, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    hub.close()


class TestRoutesAndModel:
    def test_cubes_lists_only_the_tenants_cubes(self, served):
        __, base = served
        code, body = _request(base, "/cubes", key="acme-key")
        assert (code, body["cubes"]) == (200, ["sales"])
        code, body = _request(base, "/cubes", key="globex-key")
        assert (code, body["cubes"]) == (200, ["telemetry"])

    def test_model_exposes_hierarchies(self, served):
        __, base = served
        code, model = _request(base, "/cube/sales/model", key="acme-key")
        assert code == 200
        time_dim = model["dimensions"][0]
        assert time_dim["default_hierarchy"] == "ymd"
        ymd = time_dim["hierarchies"][0]
        assert [level["name"] for level in ymd["levels"]] == [
            "year",
            "month",
            "day",
        ]
        assert model["measures"] == ["sum", "count", "avg"]

    def test_missing_or_wrong_key_is_401(self, served):
        __, base = served
        assert _request(base, "/cubes")[0] == 401
        assert _request(base, "/cubes", key="wrong")[0] == 401

    def test_unknown_cube_is_404_within_tenant(self, served):
        __, base = served
        # globex's cube is invisible to acme's key
        code, __body = _request(
            base, "/cube/telemetry/model", key="acme-key"
        )
        assert code == 404

    def test_wrong_method_is_405(self, served):
        __, base = served
        code, __body = _request(
            base, "/cube/sales/model", key="acme-key", data=b"{}"
        )
        assert code == 405

    def test_healthz_and_metrics_need_no_key(self, served):
        __, base = served
        code, health = _request(base, "/healthz")
        assert code == 200
        assert health["status"] == "ok"
        assert "journal" in health
        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode()
        assert 'tenant="acme"' in text
        assert "# TYPE" in text


class TestAggregateBitIdentity:
    CASES = [
        ("", ""),
        ("", "time"),
        ("time@ymd:2|region:8-40", "time"),
        ("time@ymd:1.3", "time:day"),
        ("region:0-31", "time:2"),
    ]

    @pytest.mark.parametrize("cut,drilldown", CASES)
    def test_http_equals_direct_engine_bitwise(self, served, cut, drilldown):
        hub, base = served
        code, body = _request(
            base,
            f"/cube/sales/aggregate?cut={cut}&drilldown={drilldown}",
            key="acme-key",
        )
        assert code == 200, body
        state = hub.cube("acme", "sales")
        plan = compile_aggregate(
            state.cube.dimensions,
            parse_cuts(cut),
            parse_drilldowns(drilldown),
        )
        batch = state.engine.execute_batch(
            [RangeSumQuery(cell.lows, cell.highs) for cell in plan.cells]
        )
        assert len(body["cells"]) == len(batch.results)
        for row, direct, cell in zip(
            body["cells"], batch.results, plan.cells
        ):
            assert direct.ok
            # JSON floats round-trip through repr: bit identity, not
            # approximation
            assert row["sum"] == float(direct.value)
            assert row["count"] == cell.cell_count
            assert row["avg"] == float(direct.value) / cell.cell_count

    def test_cells_carry_paths_and_boxes(self, served):
        __, base = served
        code, body = _request(
            base,
            "/cube/sales/aggregate?cut=time@ymd:2&drilldown=time",
            key="acme-key",
        )
        assert code == 200
        assert [row["paths"]["time"] for row in body["cells"]] == [
            "2.0",
            "2.1",
            "2.2",
            "2.3",
        ]
        assert body["cells"][0]["box"]["time"] == [32, 35]
        assert body["cells"][0]["box"]["region"] == [0, 63]


class TestMalformedRequests:
    BAD_QUERIES = [
        "cut=nope:1-2",  # unknown dimension
        "cut=time@ymd:9",  # ordinal out of range
        "cut=time@ymd:1.2.3.4",  # path deeper than hierarchy
        "cut=time@nope:1",  # unknown hierarchy
        "cut=time:abc",  # unparseable range
        "cut=time:0-9&drilldown=time",  # drilldown across a range cut
        "drilldown=region:99",  # depth out of range
        "deadline_ms=soon",  # non-numeric deadline
    ]

    @pytest.mark.parametrize("query", BAD_QUERIES)
    def test_bad_aggregate_is_400_with_message(self, served, query):
        __, base = served
        code, body = _request(
            base, f"/cube/sales/aggregate?{query}", key="acme-key"
        )
        assert code == 400
        assert body["error"]

    def test_bad_update_bodies_are_400(self, served):
        __, base = served
        for raw in (b"", b"not json", b'{"deltas": [[1]]}'):
            code, __body = _request(
                base, "/cube/sales/update", key="acme-key", data=raw
            )
            assert code == 400


class TestUpdateEndpoint:
    def test_update_shifts_subsequent_aggregates(self, served):
        hub, base = served
        path = "/cube/telemetry/aggregate?cut=tick:0-7|sensor:0-7"
        code, before = _request(base, path, key="globex-key")
        assert code == 200
        body = json.dumps(
            {
                "deltas": [[2.0] * 8] * 8,
                "corner": {"tick": 0, "sensor": 0},
            }
        ).encode()
        code, applied = _request(
            base, "/cube/telemetry/update", key="globex-key", data=body
        )
        assert code == 200
        assert applied["applied"] is True
        assert applied["io"]["journal_writes"] > 0
        code, after = _request(base, path, key="globex-key")
        assert code == 200
        shift = after["cells"][0]["sum"] - before["cells"][0]["sum"]
        assert shift == pytest.approx(2.0 * 64, abs=1e-6)


class TestDeadlineDegradation:
    def test_expired_deadline_is_206_with_sound_bounds(self):
        hub = build_demo_hub(seed=23, pool_blocks=8)
        server, __thread = spawn(hub)
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            code, body = _request(
                base,
                "/cube/sales/aggregate?drilldown=time",
                key="acme-key",
                headers={"X-Deadline-Ms": "0"},
            )
            assert code == 206
            assert body["status"] == "degraded"
            degraded = [
                row for row in body["cells"] if row["status"] == "degraded"
            ]
            assert degraded, "cold cache + zero deadline must degrade"
            for row in degraded:
                assert 0.0 < row["error_bound"] < float("inf")
            # ground truth from the engine, no deadline: the degraded
            # values must sit inside their claimed bounds
            code, truth = _request(
                base,
                "/cube/sales/aggregate?drilldown=time",
                key="acme-key",
            )
            assert code == 200
            for row, exact in zip(body["cells"], truth["cells"]):
                if row["status"] == "degraded":
                    assert (
                        abs(row["sum"] - exact["sum"])
                        <= row["error_bound"] + 1e-9
                    )
        finally:
            server.shutdown()
            server.server_close()
            hub.close()


class TestTenantIsolation:
    def test_saturated_tenant_cannot_starve_the_other(self):
        """globex floods its quota; acme must keep answering 200s."""
        hub = ServingHub(
            block_slots=64,
            pool_blocks=64,
            num_workers=2,
            queue_depth=64,
            max_inflight=4,
        )
        rng = np.random.default_rng(31)
        for tenant, cube in (("acme", "sales"), ("globex", "telemetry")):
            hub.add_tenant(tenant, api_key=f"{tenant}-key")
            hub.add_cube(
                tenant,
                cube,
                [Dimension("x", 64), Dimension("y", 64)],
                data=rng.random((64, 64)),
            )
        server, __thread = spawn(hub)
        host, port = server.server_address
        base = f"http://{host}:{port}"
        flood_codes = []
        acme_codes = []
        lock = threading.Lock()

        def flood():
            for __ in range(6):
                code, __body = _request(
                    base,
                    "/cube/telemetry/aggregate?drilldown=x:3,y:3",
                    key="globex-key",
                )
                with lock:
                    flood_codes.append(code)

        def polite():
            for __ in range(6):
                code, __body = _request(
                    base,
                    "/cube/sales/aggregate?drilldown=x",
                    key="acme-key",
                )
                with lock:
                    acme_codes.append(code)

        try:
            threads = [
                threading.Thread(target=flood) for __ in range(4)
            ] + [threading.Thread(target=polite) for __ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            # the flood hits its own quota...
            assert 429 in flood_codes
            # ...while the polite tenant never sees an error: its own
            # quota and queue are untouched by globex's saturation
            assert set(acme_codes) == {200}
            snap = hub.metrics.snapshot()
            throttled = snap["counters"].get(
                'queries_throttled{cube="telemetry",tenant="globex"}', 0
            )
            assert throttled > 0
            assert (
                snap["counters"].get(
                    'queries_throttled{cube="sales",tenant="acme"}', 0
                )
                == 0
            )
        finally:
            server.shutdown()
            server.server_close()
            hub.close()


class TestDataDirPersistence:
    """The --data-dir contract: HTTP-visible state survives a restart.

    An update written over HTTP must be re-aggregated bit-identically
    by a hub reopened from the same directory — the arena blocks come
    back through the mmap file, the tenants / schemas / tile
    directories through the state sidecar.
    """

    def test_http_update_survives_restart(self, tmp_path):
        data_dir = str(tmp_path / "hub")
        path = "/cube/telemetry/aggregate?cut=tick:0-7|sensor:0-7"

        hub = build_demo_hub(seed=29, data_dir=data_dir)
        server, __thread = spawn(hub)
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            body = json.dumps(
                {
                    "deltas": [[2.5] * 4] * 4,
                    "corner": {"tick": 0, "sensor": 0},
                }
            ).encode()
            code, applied = _request(
                base, "/cube/telemetry/update", key="globex-key", data=body
            )
            assert (code, applied["applied"]) == (200, True)
            code, updated = _request(base, path, key="globex-key")
            assert code == 200
            sales = _request(
                base,
                "/cube/sales/aggregate?cut=time@ymd:2&drilldown=time",
                key="acme-key",
            )[1]
        finally:
            server.shutdown()
            server.server_close()
            hub.close()

        # A fresh hub over the same directory = the restarted process.
        reopened_hub = ServingHub(data_dir=data_dir)
        server, __thread = spawn(reopened_hub)
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            code, reopened = _request(base, path, key="globex-key")
            assert code == 200
            assert reopened["cells"] == updated["cells"]
            reopened_sales = _request(
                base,
                "/cube/sales/aggregate?cut=time@ymd:2&drilldown=time",
                key="acme-key",
            )[1]
            assert reopened_sales["cells"] == sales["cells"]
        finally:
            server.shutdown()
            server.server_close()
            reopened_hub.close()

    def test_update_survives_sigkill_without_close(self, tmp_path):
        # Hard-crash durability: an update acknowledged by a process
        # that then dies on SIGKILL (no close(), no atexit) must be
        # served by a reopened hub — not stale pre-update zeros.
        data_dir = str(tmp_path / "hub")
        answers = str(tmp_path / "answers.json")
        child = textwrap.dedent(
            f"""
            import json, os, signal

            from repro.server.demo import build_demo_hub

            hub = build_demo_hub(seed=29, data_dir={data_dir!r})
            cube = hub.cube("globex", "telemetry").cube
            ranges = {{"tick": (0, 7), "sensor": (0, 7)}}
            before = cube.sum(**ranges)
            hub.update(
                "globex",
                "telemetry",
                [[2.5] * 4] * 4,
                {{"tick": 0, "sensor": 0}},
            )
            after = cube.sum(**ranges)
            with open({answers!r}, "w") as handle:
                json.dump({{"before": before, "after": after}}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, capture_output=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        with open(answers) as handle:
            expected = json.load(handle)
        assert expected["after"] != expected["before"]

        reopened = ServingHub(data_dir=data_dir)
        try:
            got = reopened.cube("globex", "telemetry").cube.sum(
                tick=(0, 7), sensor=(0, 7)
            )
            assert got == expected["after"]
        finally:
            reopened.close()

    def test_reopened_hub_matches_in_memory_answers(self, tmp_path):
        # Same seed, one hub persistent and one in-memory: identical
        # logical answers (the device backend must be transparent).
        persistent = build_demo_hub(
            seed=31, data_dir=str(tmp_path / "hub")
        )
        persistent.close()
        reopened = ServingHub(data_dir=str(tmp_path / "hub"))
        in_memory = build_demo_hub(seed=31)
        try:
            for tenant, cube, kwargs in (
                ("acme", "sales", {"time": (3, 41), "region": (7, 60)}),
                ("globex", "telemetry", {"tick": (0, 63), "sensor": (5, 9)}),
            ):
                want = in_memory.cube(tenant, cube).cube.sum(**kwargs)
                got = reopened.cube(tenant, cube).cube.sum(**kwargs)
                assert got == want
        finally:
            reopened.close()
            in_memory.close()


class TestStateSidecarDurability:
    def test_save_state_fsyncs_the_directory_entry(
        self, tmp_path, monkeypatch
    ):
        # os.replace orders the sidecar's *data*, but the new directory
        # entry itself only survives power loss if the directory inode
        # is fsynced too.
        from repro.server import persist

        hub = build_demo_hub(seed=5, data_dir=str(tmp_path / "hub"))
        try:
            synced = []
            real_fsync = os.fsync

            def recording_fsync(fd):
                synced.append(os.fstat(fd).st_mode)
                return real_fsync(fd)

            monkeypatch.setattr(os, "fsync", recording_fsync)
            persist.save_state(hub, str(tmp_path / "hub"))
            import stat

            assert any(stat.S_ISDIR(mode) for mode in synced), (
                "save_state never fsynced the data directory"
            )
            assert any(stat.S_ISREG(mode) for mode in synced)
        finally:
            monkeypatch.undo()
            hub.close()

    def test_dir_fsync_is_best_effort_on_unopenable_dir(
        self, tmp_path, monkeypatch
    ):
        from repro.server import persist

        real_open = os.open

        def failing_open(path, flags, *args, **kwargs):
            if path == str(tmp_path):
                raise OSError("directory refuses to open")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", failing_open)
        persist._fsync_dir(str(tmp_path))  # must not raise
