"""Tests for the fault-injecting block device wrapper."""

import numpy as np
import pytest

from repro.fault.device import FaultRule, FaultyBlockDevice, InjectedIOError
from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOStats


def _loaded_device(blocks=4, slots=8, seed=0):
    device = BlockDevice(slots)
    rng = np.random.default_rng(seed)
    for __ in range(blocks):
        block_id = device.allocate()
        device.write_block(block_id, rng.normal(size=slots))
    return device


class TestTransparency:
    def test_disabled_wrapper_is_bit_identical(self):
        """All rates zero + no schedule => same bytes, same IOStats."""
        plain = _loaded_device()
        wrapped_inner = _loaded_device()
        wrapped = FaultyBlockDevice(wrapped_inner, seed=123)
        for block_id in range(plain.num_blocks):
            np.testing.assert_array_equal(
                plain.read_block(block_id), wrapped.read_block(block_id)
            )
        wrapped.write_block(1, np.arange(8, dtype=np.float64))
        plain.write_block(1, np.arange(8, dtype=np.float64))
        np.testing.assert_array_equal(
            plain.dump_blocks(), wrapped.dump_blocks()
        )
        assert plain.stats.snapshot() == wrapped.stats.snapshot()
        assert wrapped.total_injected == 0

    def test_passthrough_surface(self):
        inner = _loaded_device()
        wrapped = FaultyBlockDevice(inner)
        assert wrapped.block_slots == inner.block_slots
        assert wrapped.num_blocks == inner.num_blocks
        assert wrapped.inner is inner
        assert wrapped.bytes_used() == inner.bytes_used()
        np.testing.assert_array_equal(
            wrapped.peek_block(0), inner.peek_block(0)
        )


class TestScheduledFaults:
    def test_scheduled_read_error_fires_exactly_once(self):
        device = FaultyBlockDevice(
            _loaded_device(),
            schedule=[FaultRule("read", 1, "read_error")],
        )
        device.read_block(0)  # read #0: clean
        with pytest.raises(InjectedIOError):
            device.read_block(0)  # read #1: scheduled failure
        device.read_block(0)  # read #2: clean again (transient)
        assert device.fault_counts()["read_error"] == 1

    def test_failed_read_still_charges_io(self):
        """The disk was hit; the attempt costs a block read."""
        device = FaultyBlockDevice(
            _loaded_device(),
            schedule=[FaultRule("read", 0, "read_error")],
        )
        before = device.stats.block_reads
        with pytest.raises(InjectedIOError):
            device.read_block(0)
        assert device.stats.block_reads == before + 1

    def test_write_error_leaves_block_untouched(self):
        device = FaultyBlockDevice(
            _loaded_device(),
            schedule=[FaultRule("write", 0, "write_error")],
        )
        old = device.peek_block(2)
        with pytest.raises(InjectedIOError):
            device.write_block(2, np.ones(8))
        np.testing.assert_array_equal(device.peek_block(2), old)

    def test_torn_write_lands_half_new_half_old(self):
        device = FaultyBlockDevice(
            _loaded_device(),
            schedule=[FaultRule("write", 0, "torn_write")],
        )
        old = device.peek_block(0)
        new = np.full(8, 7.0)
        with pytest.raises(InjectedIOError):
            device.write_block(0, new)
        torn = device.peek_block(0)
        np.testing.assert_array_equal(torn[:4], new[:4])
        np.testing.assert_array_equal(torn[4:], old[4:])

    def test_bitflip_corrupts_returned_copy_silently(self):
        device = FaultyBlockDevice(
            _loaded_device(),
            seed=5,
            schedule=[FaultRule("read", 0, "bitflip")],
        )
        stored = device.peek_block(0)
        flipped = device.read_block(0)
        assert not np.array_equal(stored, flipped)
        # Exactly one slot differs, by exactly one bit.
        diff = stored.view(np.uint64) ^ flipped.view(np.uint64)
        assert np.count_nonzero(diff) == 1
        assert bin(int(diff[diff != 0][0])).count("1") == 1
        # ... and the device content is untouched (transient corruption).
        np.testing.assert_array_equal(device.peek_block(0), stored)

    def test_stall_uses_injected_sleep(self):
        slept = []
        device = FaultyBlockDevice(
            _loaded_device(),
            stall_s=0.5,
            schedule=[FaultRule("read", 0, "stall")],
            sleep=slept.append,
        )
        device.read_block(0)
        assert slept == [0.5]

    def test_broken_block_always_fails(self):
        device = FaultyBlockDevice(_loaded_device(), broken_blocks=[3])
        for __ in range(3):
            with pytest.raises(InjectedIOError):
                device.read_block(3)
        device.read_block(0)  # other blocks unaffected
        assert device.fault_counts()["read_error"] == 3


class TestProbabilisticFaults:
    def test_seeded_runs_replay_identically(self):
        def run(seed):
            device = FaultyBlockDevice(
                _loaded_device(), seed=seed, read_error_rate=0.3
            )
            outcomes = []
            for __ in range(50):
                try:
                    device.read_block(0)
                    outcomes.append("ok")
                except InjectedIOError:
                    outcomes.append("err")
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultyBlockDevice(_loaded_device(), read_error_rate=1.5)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("read", 0, "torn_write")  # write-only kind
        with pytest.raises(ValueError):
            FaultRule("scan", 0, "read_error")
        with pytest.raises(ValueError):
            FaultRule("read", -1, "read_error")


class TestUnderBufferPool:
    def test_eviction_write_failure_keeps_dirty_frame(self):
        """A failed write-back must not lose the only copy of the data."""
        stats = IOStats()
        inner = BlockDevice(4, stats=stats)
        a = inner.allocate()
        b = inner.allocate()
        device = FaultyBlockDevice(
            inner, schedule=[FaultRule("write", 0, "write_error")]
        )
        pool = BufferPool(device, capacity=1)
        data = pool.get(a, for_write=True)
        data[:] = 5.0
        # Faulting in b must evict dirty a; the scheduled write fails.
        with pytest.raises(InjectedIOError):
            pool.get(b)
        # Frame a survived, still dirty; the next flush persists it.
        pool.flush(a)
        np.testing.assert_array_equal(inner.peek_block(a), np.full(4, 5.0))
