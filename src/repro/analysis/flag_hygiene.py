"""REPRO-F001: robustness features are off by default.

The repo's contract since the plans PR: every new capability —
compiled plans aside (it is the documented exception, bit-identical
and I/O-identical by proof), fault injection, journaling, degraded
reads — must leave behavior and counters untouched unless explicitly
switched on.  This rule enforces the mechanical half of that contract
on the feature modules (:mod:`repro.fault`, ``repro.storage.journal``,
``repro.core.plans``): a keyword default that *enables* something is a
finding.

Checked on public functions, public-class constructors and dataclass
fields of the target modules:

* boolean defaults must be ``False``;
* probability/rate-style numeric defaults (parameter name containing
  ``rate``, ``probability`` or ``prob``) must be ``0``;

``# lint: allow=flag-hygiene (reason)`` on the parameter's line (or
the ``def`` line) records a reviewed exception — e.g. checksum
verification defaulting on *inside* an opt-in wrapper.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional, Tuple

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.model import ProjectModel
from repro.analysis.source import SourceFile

_RATE_NAME_RE = re.compile(r"(rate|probability|prob)(_|$)")

#: module suffixes the off-by-default contract covers
_TARGET_MODULES = ("fault", "storage.journal", "core.plans")


def _in_scope(module: str) -> bool:
    return any(
        module.endswith(suffix) or f".{suffix}." in f"{module}."
        for suffix in _TARGET_MODULES
    )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


class FlagHygieneRule(Rule):
    rule_id = "REPRO-F001"
    name = "flag-hygiene"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        for sf in model.files:
            if not _in_scope(sf.module):
                continue
            for node in sf.tree.body:
                if isinstance(node, ast.FunctionDef):
                    if not node.name.startswith("_"):
                        self._check_signature(sf, node.name, node, report)
                elif isinstance(node, ast.ClassDef):
                    if node.name.startswith("_"):
                        continue
                    for item in node.body:
                        if (
                            isinstance(item, ast.FunctionDef)
                            and not item.name.startswith("_")
                            or (
                                isinstance(item, ast.FunctionDef)
                                and item.name == "__init__"
                            )
                        ):
                            self._check_signature(
                                sf, f"{node.name}.{item.name}", item, report
                            )
                    if _is_dataclass(node):
                        self._check_dataclass(sf, node, report)

    # ------------------------------------------------------------------

    def _defaults(
        self, func: ast.FunctionDef
    ) -> Iterable[Tuple[ast.arg, ast.expr]]:
        positional = list(func.args.posonlyargs) + list(func.args.args)
        for arg, default in zip(
            positional[len(positional) - len(func.args.defaults):],
            func.args.defaults,
        ):
            yield arg, default
        for arg, default in zip(func.args.kwonlyargs, func.args.kw_defaults):
            if default is not None:
                yield arg, default

    def _check_signature(
        self,
        sf: SourceFile,
        label: str,
        func: ast.FunctionDef,
        report: AnalysisReport,
    ) -> None:
        for arg, default in self._defaults(func):
            self._check_default(
                sf, label, arg.arg, default, func, report
            )

    def _check_dataclass(
        self, sf: SourceFile, node: ast.ClassDef, report: AnalysisReport
    ) -> None:
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                if item.value is not None:
                    self._check_default(
                        sf,
                        node.name,
                        item.target.id,
                        item.value,
                        None,
                        report,
                        at=item,
                    )

    def _check_default(
        self,
        sf: SourceFile,
        label: str,
        param: str,
        default: ast.expr,
        func: Optional[ast.FunctionDef],
        report: AnalysisReport,
        at: Optional[ast.AST] = None,
    ) -> None:
        where = at if at is not None else default
        if not isinstance(default, ast.Constant):
            return
        value = default.value
        message: Optional[str] = None
        if value is True:
            message = (
                f"{label}: flag '{param}' defaults to True — robustness "
                f"features must be off by default"
            )
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value != 0
            and _RATE_NAME_RE.search(param)
        ):
            message = (
                f"{label}: rate parameter '{param}' defaults to {value!r} "
                f"— injection rates must default to 0"
            )
        if message is None:
            return
        if sf.allows(self.name, where, def_node=func):
            return
        report.findings.append(self.finding(sf, where.lineno, message))
