"""Runtime lock-order witness: check the static graph against reality.

The static lock-order graph (:mod:`repro.analysis.lock_order`) is
conservative but not omniscient — dynamic dispatch is covered by
``# may-acquire:`` declarations, and a wrong or missing declaration
would silently punch a hole in the cycle check.  The witness closes
the loop: an opt-in :class:`InstrumentedLock` wrapper records every
*actual* nested acquisition (per-thread held stacks) during concurrent
tests, and :func:`check_consistency` verifies each observed order is
explained by the static graph.

Aliasing is the subtle part.  One runtime lock object can carry
several static names — the sharded pool's I/O lock *is* the
synchronized device's lock *is* every shard's ``_io_lock`` — so an
instrumented lock declares all its names and an observed edge is
consistent when *some* alias pair is connected in the static graph.

Everything here is test-only instrumentation: production code paths
never import this module, and an engine that was never instrumented
runs byte-for-byte identical.
"""

from __future__ import annotations

import threading
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "InstrumentedLock",
    "LockWitness",
    "check_consistency",
    "instrument_engine",
    "instrument_plan_caches",
    "instrument_tracer",
]


class LockWitness:
    """Collects observed (outer, inner) acquisition pairs per thread."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._mutex = threading.Lock()  # private leaf lock, never nested
        self._edges: Dict[Tuple[str, str], int] = {}

    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def on_acquire(self, name: str) -> None:
        stack = self._stack()
        if stack:
            with self._mutex:
                for held in stack:
                    key = (held, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def edges(self) -> Dict[Tuple[str, str], int]:
        """Observed ``(outer, inner) -> count`` pairs so far."""
        with self._mutex:
            return dict(self._edges)


class InstrumentedLock:
    """A lock proxy reporting acquisition order to a witness.

    ``names`` lists every static-graph node this runtime lock object
    embodies; the first is the name reported on acquisition, the rest
    are aliases resolved during the consistency check.  Pass ``lock``
    to wrap an existing lock object (so identity-shared locks stay
    shared after instrumentation).
    """

    def __init__(
        self,
        witness: LockWitness,
        *names: str,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        if not names:
            raise ValueError("an instrumented lock needs at least one name")
        self.witness = witness
        self.names: Tuple[str, ...] = names
        self._lock = lock if lock is not None else threading.Lock()

    @property
    def name(self) -> str:
        return self.names[0]

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self.witness.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        self.witness.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def check_consistency(
    observed: Iterable[Tuple[str, str]],
    lock_graph: Mapping[str, Any],
    aliases: Optional[Mapping[str, Iterable[str]]] = None,
) -> List[Tuple[str, str]]:
    """Observed edges the static graph cannot explain.

    ``lock_graph`` is the analyzer's JSON shape (``{"nodes": [...],
    "edges": [{"from": ..., "to": ...}, ...]}``).  An observed
    ``(outer, inner)`` pair is *consistent* when some alias of the
    outer name reaches some alias of the inner name in the static
    graph.  Returns the inconsistent pairs — an empty list means every
    order that actually happened was statically predicted.
    """
    alias_map: Dict[str, FrozenSet[str]] = {}
    if aliases:
        for name, group in aliases.items():
            alias_map[name] = frozenset(group) | {name}

    successors: Dict[str, Set[str]] = {}
    for edge in lock_graph.get("edges", []):
        successors.setdefault(edge["from"], set()).add(edge["to"])

    def reachable(source: str, target: str) -> bool:
        seen: Set[str] = set()
        frontier = [source]
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(successors.get(node, ()))
        return False

    bad: List[Tuple[str, str]] = []
    for outer, inner in observed:
        outers = alias_map.get(outer, frozenset((outer,)))
        inners = alias_map.get(inner, frozenset((inner,)))
        if not any(
            reachable(a, b) for a in outers for b in inners if a != b
        ):
            bad.append((outer, inner))
    return bad


# ----------------------------------------------------------------------
# instrumentation helpers (reach into the real objects; test-only)
# ----------------------------------------------------------------------

#: The static names carried by the one shared I/O lock object.
IO_LOCK_NAMES = (
    "ShardedBufferPool._io_lock",
    "_ShardPool._io_lock",
    "_SynchronizedDevice._lock",
)

#: Alias groups for :func:`check_consistency` matching the helpers below.
DEFAULT_ALIASES: Dict[str, Tuple[str, ...]] = {
    IO_LOCK_NAMES[0]: IO_LOCK_NAMES,
}


def instrument_engine(engine: Any, witness: LockWitness) -> None:
    """Swap a :class:`QueryEngine`'s locks for instrumented wrappers.

    Covers the batch and close locks, every shard lock (one collapsed
    static node, matching the analyzer) and the shared I/O lock —
    which is re-wrapped *once* and re-pointed everywhere the original
    object was shared, preserving the identity the correctness of the
    pool depends on.
    """
    engine._batch_lock = InstrumentedLock(
        witness, "QueryEngine._batch_lock", lock=engine._batch_lock
    )
    engine._close_lock = InstrumentedLock(
        witness, "QueryEngine._close_lock", lock=engine._close_lock
    )
    pool = engine.pool
    io_lock = InstrumentedLock(witness, *IO_LOCK_NAMES, lock=pool._io_lock)
    pool._io_lock = io_lock
    for shard in pool._shards:
        shard._io_lock = io_lock
        shard._device._lock = io_lock  # the _SynchronizedDevice facade
    pool._locks = [
        InstrumentedLock(witness, "ShardedBufferPool._locks", lock=lock)
        for lock in pool._locks
    ]


def instrument_tracer(tracer: Any, witness: LockWitness) -> None:
    """Instrument a tracer's span-store and orphan locks."""
    tracer.store._lock = InstrumentedLock(
        witness, "TraceStore._lock", lock=tracer.store._lock
    )
    tracer._orphan_lock = InstrumentedLock(
        witness, "Tracer._orphan_lock", lock=tracer._orphan_lock
    )


def instrument_plan_caches(witness: LockWitness) -> None:
    """Instrument the module-global plan caches' locks."""
    from repro.core import plans

    for cache in (plans._STANDARD_PLANS, plans._NONSTANDARD_PLANS):
        cache._lock = InstrumentedLock(
            witness, "_PlanLRU._lock", lock=cache._lock
        )
