"""A light semantic model of the analyzed source tree.

Rules need more than raw ASTs: which attributes hold locks, what class
an attribute was constructed with, which method a call resolves to.
This module builds that model with deliberately *conservative* static
inference — resolution follows only what the source states directly
(constructor calls, parameter and attribute annotations, ``zip`` loops
over typed attributes, ``super()``), and gives up otherwise.  Where
dynamic dispatch defeats resolution, code declares the gap with a
``# may-acquire:`` marker, and the runtime witness
(:mod:`repro.analysis.witness`) cross-checks that the declared graph
matches the orders that actually happen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.source import SourceFile

#: Class-like type of a value: class name plus whether the value is a
#: sequence of that class (``List[C]`` — a subscript yields a ``C``).
TypeRef = Tuple[str, bool]

#: The pseudo-class name of ``threading.Lock``/``RLock`` values.
LOCK_TYPE = "threading.Lock"

_LOCK_FACTORY_NAMES = {"Lock", "RLock"}


@dataclass
class ClassModel:
    """One analyzed class: methods, attribute types, lock metadata."""

    name: str
    module: str
    sf: SourceFile
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: inferred ``self.<attr>`` types (subclass entries win in MRO merge)
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    #: attributes holding a lock (or a list of locks)
    lock_attrs: Dict[str, bool] = field(default_factory=dict)
    #: ``# guarded-by:`` declarations: attr -> guarding lock attr
    guarded: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    decorators: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class Callee:
    """A resolved call target.

    ``kind`` is ``method`` / ``function`` / ``span`` / ``charge``:
    ``span`` and ``charge`` are the tracer's context-manager and
    mirror-charge entry points, which the lock rules treat as known
    acquirers (:data:`SPAN_LOCKS`, :data:`CHARGE_LOCKS`) rather than
    chasing through :mod:`repro.obs.tracer`'s indirection.
    """

    kind: str
    receiver: Optional[str] = None  # receiver class for methods
    name: str = ""
    node: Optional[ast.FunctionDef] = field(
        default=None, compare=False, hash=False
    )
    sf: Optional[SourceFile] = field(default=None, compare=False, hash=False)


#: Locks a tracer span may take (ring-buffer append on ``__exit__``).
SPAN_LOCKS = ("TraceStore._lock",)
#: Locks a mirrored I/O charge may take (orphan bucket off-span).
CHARGE_LOCKS = ("Tracer._orphan_lock",)

_CHARGE_FUNCTION_NAMES = {"charge", "_trace_charge"}


def _annotation_type(node: Optional[ast.AST]) -> Optional[TypeRef]:
    """Parse an annotation expression into a :data:`TypeRef`."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return (node.id, False)
    if isinstance(node, ast.Attribute):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "threading"
            and node.attr in _LOCK_FACTORY_NAMES
        ):
            return (LOCK_TYPE, False)
        return None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in ("List", "list", "Sequence", "Tuple", "tuple"):
                inner = _annotation_type(node.slice)
                if inner is not None and not inner[1]:
                    return (inner[0], True)
            if base.id == "Optional":
                return _annotation_type(node.slice)
    return None


def _value_type(
    node: Optional[ast.AST], param_types: Dict[str, TypeRef], classes: Set[str]
) -> Optional[TypeRef]:
    """Infer the type of an assigned value expression."""
    if node is None:
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in classes:
            return (func.id, False)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
            and func.attr in _LOCK_FACTORY_NAMES
        ):
            return (LOCK_TYPE, False)
        return None
    if isinstance(node, ast.Name):
        return param_types.get(node.id)
    if isinstance(node, (ast.List, ast.ListComp)):
        elements: Sequence[ast.AST]
        if isinstance(node, ast.List):
            elements = node.elts
        else:
            elements = [node.elt]
        for element in elements:
            inner = _value_type(element, param_types, classes)
            if inner is not None and not inner[1]:
                return (inner[0], True)
    return None


def _function_param_types(node: ast.FunctionDef) -> Dict[str, TypeRef]:
    out: Dict[str, TypeRef] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(
        node.args.kwonlyargs
    )
    for arg in args:
        inferred = _annotation_type(arg.annotation)
        if inferred is not None:
            out[arg.arg] = inferred
    return out


class ProjectModel:
    """Classes, functions and resolution over a set of source files."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.classes: Dict[str, ClassModel] = {}
        self.ambiguous_classes: Set[str] = set()
        self.module_functions: Dict[Tuple[str, str], Tuple[
            ast.FunctionDef, SourceFile
        ]] = {}
        for sf in self.files:
            self._index_file(sf)
        class_names = set(self.classes)
        for model in self.classes.values():
            self._infer_class(model, class_names)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def _index_file(self, sf: SourceFile) -> None:
        for node in sf.tree.body:
            if isinstance(node, ast.ClassDef):
                if node.name in self.classes:
                    self.ambiguous_classes.add(node.name)
                model = ClassModel(
                    name=node.name,
                    module=sf.module,
                    sf=sf,
                    node=node,
                    bases=[
                        base.id
                        for base in node.bases
                        if isinstance(base, ast.Name)
                    ],
                    decorators=[
                        ast.unparse(dec) for dec in node.decorator_list
                    ],
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and isinstance(item, ast.FunctionDef):
                        model.methods[item.name] = item
                self.classes[node.name] = model
            elif isinstance(node, ast.FunctionDef):
                self.module_functions[(sf.module, node.name)] = (node, sf)

    def _infer_class(self, model: ClassModel, classes: Set[str]) -> None:
        """Infer attribute types, lock attributes and guarded attrs."""
        for method in model.methods.values():
            param_types = _function_param_types(method)
            for stmt in ast.walk(method):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    ann = stmt.annotation
                if target is None:
                    continue
                attr = self_attr(target)
                if attr is None:
                    continue
                inferred = _annotation_type(ann) or _value_type(
                    value, param_types, classes
                )
                if inferred is not None:
                    if inferred[0] == LOCK_TYPE:
                        model.lock_attrs.setdefault(attr, inferred[1])
                    else:
                        model.attr_types.setdefault(attr, inferred)
                markers = model.sf.markers_at(stmt.lineno)
                if markers is not None and markers.guarded_by:
                    model.guarded.setdefault(
                        attr, (markers.guarded_by, stmt.lineno)
                    )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def mro(self, class_name: str) -> List[ClassModel]:
        """Approximate linearization: the class, then bases depth-first."""
        seen: Set[str] = set()
        order: List[ClassModel] = []

        def visit(name: str) -> None:
            if name in seen or name not in self.classes:
                return
            seen.add(name)
            model = self.classes[name]
            order.append(model)
            for base in model.bases:
                visit(base)

        visit(class_name)
        return order

    def class_attr_type(
        self, class_name: str, attr: str
    ) -> Optional[TypeRef]:
        for model in self.mro(class_name):
            if attr in model.attr_types:
                return model.attr_types[attr]
        return None

    def class_lock_attr(
        self, class_name: str, attr: str
    ) -> Optional[bool]:
        """``is_sequence`` when ``attr`` is a lock attribute, else None."""
        for model in self.mro(class_name):
            if attr in model.lock_attrs:
                return model.lock_attrs[attr]
        return None

    def class_guard(
        self, class_name: str, attr: str
    ) -> Optional[str]:
        for model in self.mro(class_name):
            if attr in model.guarded:
                return model.guarded[attr][0]
        return None

    def resolve_method(
        self,
        receiver: str,
        name: str,
        after: Optional[str] = None,
    ) -> Optional[Callee]:
        """Find ``name`` in the receiver's MRO.

        ``after`` implements ``super()``: resolution starts past the
        named defining class in the receiver's linearization.
        """
        order = self.mro(receiver)
        if after is not None:
            names = [model.name for model in order]
            if after in names:
                order = order[names.index(after) + 1:]
        for model in order:
            method = model.methods.get(name)
            if method is not None:
                return Callee(
                    kind="method",
                    receiver=receiver,
                    name=f"{model.name}.{name}",
                    node=method,
                    sf=model.sf,
                )
        return None


def self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def build_local_env(
    func: ast.FunctionDef,
    receiver: Optional[str],
    model: ProjectModel,
) -> Dict[str, TypeRef]:
    """Local-variable types visible inside ``func``.

    Follows parameter annotations, direct constructor assignments,
    aliases of typed ``self`` attributes, and ``for ... in
    zip(self.a, self.b)`` / ``for ... in self.a`` element bindings —
    the patterns this codebase actually uses to hand locks and shards
    around.
    """
    env = dict(_function_param_types(func))
    class_names = set(model.classes)

    def attr_element(expr: ast.AST) -> Optional[TypeRef]:
        attr = self_attr(expr)
        if attr is None or receiver is None:
            return None
        lock_seq = model.class_lock_attr(receiver, attr)
        if lock_seq is not None:
            return (LOCK_TYPE, False) if lock_seq else None
        typed = model.class_attr_type(receiver, attr)
        if typed is not None and typed[1]:
            return (typed[0], False)
        return None

    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                inferred = _value_type(stmt.value, env, class_names)
                if inferred is None:
                    attr = self_attr(stmt.value)
                    if attr is not None and receiver is not None:
                        inferred = model.class_attr_type(receiver, attr)
                        if inferred is None:
                            lock_seq = model.class_lock_attr(receiver, attr)
                            if lock_seq is not None:
                                inferred = (LOCK_TYPE, lock_seq)
                if inferred is not None:
                    env.setdefault(target.id, inferred)
        elif isinstance(stmt, ast.For):
            iterable = stmt.iter
            targets: List[ast.expr]
            sources: List[ast.AST]
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "zip"
                and isinstance(stmt.target, ast.Tuple)
                and len(stmt.target.elts) == len(iterable.args)
            ):
                targets = list(stmt.target.elts)
                sources = list(iterable.args)
            else:
                targets = [stmt.target]
                sources = [iterable]
            for tgt, src in zip(targets, sources):
                if not isinstance(tgt, ast.Name):
                    continue
                element = attr_element(src)
                if element is not None:
                    env.setdefault(tgt.id, element)
    return env


def local_functions(func: ast.FunctionDef) -> Dict[str, ast.FunctionDef]:
    """Functions defined directly inside ``func`` (closures)."""
    return {
        stmt.name: stmt
        for stmt in ast.walk(func)
        if isinstance(stmt, ast.FunctionDef) and stmt is not func
    }


class CallResolver:
    """Resolve call expressions inside one function body."""

    def __init__(
        self,
        model: ProjectModel,
        sf: SourceFile,
        func: ast.FunctionDef,
        receiver: Optional[str],
        owner: Optional[str],
    ) -> None:
        self.model = model
        self.sf = sf
        self.func = func
        self.receiver = receiver
        self.owner = owner
        self.locals = build_local_env(func, receiver, model)
        self.local_funcs = local_functions(func)

    def _type_of(self, expr: ast.AST) -> Optional[TypeRef]:
        """Type of a receiver expression (Name, self.attr, subscripts)."""
        if isinstance(expr, ast.Name):
            return self.locals.get(expr.id)
        attr = self_attr(expr)
        if attr is not None and self.receiver is not None:
            typed = self.model.class_attr_type(self.receiver, attr)
            if typed is not None:
                return typed
            lock_seq = self.model.class_lock_attr(self.receiver, attr)
            if lock_seq is not None:
                return (LOCK_TYPE, lock_seq)
            return None
        if isinstance(expr, ast.Subscript):
            inner = self._type_of(expr.value)
            if inner is not None and inner[1]:
                return (inner[0], False)
            return None
        return None

    def resolve(self, call: ast.Call) -> List[Callee]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _CHARGE_FUNCTION_NAMES:
                return [Callee(kind="charge", name=func.id)]
            local = self.local_funcs.get(func.id)
            if local is not None:
                return [
                    Callee(
                        kind="function",
                        name=func.id,
                        node=local,
                        sf=self.sf,
                        receiver=self.receiver,
                    )
                ]
            entry = self.model.module_functions.get(
                (self.sf.module, func.id)
            )
            if entry is not None:
                node, sf = entry
                return [
                    Callee(kind="function", name=func.id, node=node, sf=sf)
                ]
            if func.id in self.model.classes:
                resolved = self.model.resolve_method(func.id, "__init__")
                return [resolved] if resolved is not None else []
            return []
        if isinstance(func, ast.Attribute):
            if func.attr == "span":
                return [Callee(kind="span", name="span")]
            if func.attr in _CHARGE_FUNCTION_NAMES:
                return [Callee(kind="charge", name=func.attr)]
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                if self.receiver is None:
                    return []
                resolved = self.model.resolve_method(self.receiver, func.attr)
                return [resolved] if resolved is not None else []
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"
            ):
                if self.receiver is None or self.owner is None:
                    return []
                resolved = self.model.resolve_method(
                    self.receiver, func.attr, after=self.owner
                )
                return [resolved] if resolved is not None else []
            typed = self._type_of(value)
            if typed is not None and not typed[1]:
                resolved = self.model.resolve_method(typed[0], func.attr)
                return [resolved] if resolved is not None else []
        return []


def build_model(files: Sequence[SourceFile]) -> ProjectModel:
    """Build the semantic model over parsed source files."""
    return ProjectModel(files)
