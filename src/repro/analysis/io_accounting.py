"""REPRO-I001: every block touched charges IOStats (or says why not).

The paper's claims are I/O-count claims; the repo's entire value is
that :class:`~repro.storage.iostats.IOStats` tells the truth.  Two
checks keep it honest:

* **Device entry points.**  Any ``read_block`` / ``write_block`` /
  ``write_batch`` / ``write_blocks`` definition must either charge the
  shared counters
  itself (an augmented assignment to ``...block_reads`` /
  ``...block_writes`` / ``...journal_writes``) or delegate to another
  device's same-surface method (wrappers: journaling, fault
  injection, lock synchronisation) — so every override in a device
  stack bottoms out at a charge.  A deliberately uncounted override
  carries ``# lint: uncounted (reason)`` on its ``def`` line.

* **Uncounted accessors.**  ``peek_block`` / ``dump_blocks`` /
  ``restore_blocks`` / ``view_block`` read or write raw block content
  without charging; they exist for durability layers and persistence,
  never for algorithms.  Every call site outside their defining
  modules (the in-memory ``block_device`` and the file-backed
  ``mmap_device``) must either be a same-name pass-through (a wrapper
  re-exporting the uncounted surface) or carry ``# lint: uncounted
  (reason)`` — the reason is the documentation that the bypass is
  intentional (a checksum scan, a crash-simulation peek, a
  persistence snapshot).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.model import ProjectModel
from repro.analysis.source import SourceFile

_DEVICE_ENTRY_POINTS = {
    "read_block",
    "write_block",
    "write_batch",
    "write_blocks",
}
_CHARGE_FIELDS = {"block_reads", "block_writes", "journal_writes"}
_UNCOUNTED_ACCESSORS = {
    "peek_block",
    "dump_blocks",
    "restore_blocks",
    "view_block",
}
#: modules that own the uncounted accessor surface (the devices)
_ACCESSOR_HOMES = {"block_device", "mmap_device"}


def _charges(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            if node.target.attr in _CHARGE_FIELDS:
                return True
    return False


def _delegates(func: ast.FunctionDef) -> bool:
    """Calls a device entry point that carries the charge obligation.

    Either another object's entry point (wrapper stacks: journaling,
    fault injection, lock synchronisation) or a *different* entry
    point on ``self`` (``write_block`` funnelling into
    ``write_batch``) — the callee is itself checked, so the obligation
    transfers rather than disappearing.  A same-name self call would
    be plain recursion and does not count.
    """
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DEVICE_ENTRY_POINTS
        ):
            value = node.func.value
            if not (isinstance(value, ast.Name) and value.id == "self"):
                return True
            if node.func.attr != func.name:
                return True
    return False


class IOAccountingRule(Rule):
    rule_id = "REPRO-I001"
    name = "io-accounting"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        for cls in model.classes.values():
            for name, func in cls.methods.items():
                if name in _DEVICE_ENTRY_POINTS:
                    self._check_entry_point(cls.sf, cls.name, func, report)
        for sf in model.files:
            if sf.module.rsplit(".", 1)[-1] in _ACCESSOR_HOMES:
                continue
            self._check_accessor_calls(sf, report)

    def _check_entry_point(
        self,
        sf: SourceFile,
        class_name: str,
        func: ast.FunctionDef,
        report: AnalysisReport,
    ) -> None:
        if _charges(func) or _delegates(func):
            return
        if sf.allows(self.name, func):
            return
        report.findings.append(
            self.finding(
                sf,
                func.lineno,
                f"{class_name}.{func.name}() neither charges IOStats "
                f"({'/'.join(sorted(_CHARGE_FIELDS))}) nor delegates to a "
                f"wrapped device; mark '# lint: uncounted (reason)' if "
                f"deliberate",
            )
        )

    def _check_accessor_calls(
        self, sf: SourceFile, report: AnalysisReport
    ) -> None:
        def enclosing(
            stack: List[ast.FunctionDef],
        ) -> Optional[ast.FunctionDef]:
            return stack[-1] if stack else None

        def visit(node: ast.AST, stack: List[ast.FunctionDef]) -> None:
            if isinstance(node, ast.FunctionDef):
                stack = stack + [node]
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                accessor = node.func.attr
                if accessor in _UNCOUNTED_ACCESSORS:
                    func = enclosing(stack)
                    if not (
                        (func is not None and func.name == accessor)
                        or sf.allows(self.name, node, def_node=func)
                    ):
                        report.findings.append(
                            self.finding(
                                sf,
                                node.lineno,
                                f"uncounted accessor {accessor}() called "
                                f"outside a same-name pass-through; mark "
                                f"'# lint: uncounted (reason)'",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, stack)

        visit(sf.tree, [])
