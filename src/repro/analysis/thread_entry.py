"""REPRO-T001: thread-entry code opens spans with an explicit parent.

The tracer propagates the current span through a
:class:`~contextvars.ContextVar`; worker threads start with an *empty*
context, so a span opened on one without ``parent=`` silently becomes
a root — its I/O detaches from the query or transform that caused it,
and the lossless-attribution invariant (span totals + orphans == the
global IOStats delta) degrades into a pile of mystery roots.

The rule finds thread submissions — ``executor.submit(f, ...)``,
``threading.Thread(target=f)``, ``threading.Timer(interval, f)``
(the timer fires ``f`` on a fresh thread) — and process submissions —
``multiprocessing.Process(target=f)``, including context-bound forms
like ``ctx.Process(target=f)``.  Process entries are worse, not
better: a spawned child starts with an empty context, and a forked
child holds a *copy* of the parent's spans whose recorded I/O never
rejoins the parent's trace, so the same explicit-``parent=``
discipline applies.  The rule resolves ``f`` when it is a local
closure, module function or ``self`` method, and walks the entry
function (plus same-file callees, bounded depth): the *first* span
opened on any path must pass ``parent=`` explicitly.  Once a span
with an explicit parent is open, the context variable is populated
and everything nested inherits correctly, so the walk stops
descending there.  Reading ``current_span()`` from thread-entry code
is flagged for the same reason: on a fresh thread it can only return
``None``.

HTTP serving threads are covered too: classes deriving (transitively)
from the stdlib threading servers or request handlers
(``ThreadingMixIn``, ``ThreadingHTTPServer``, ``ThreadingWSGIServer``,
``BaseHTTPRequestHandler``, ``WSGIRequestHandler``, ...) run their
handler methods (``handle``, ``do_*``, ``process_request_thread``, …)
on a fresh per-request thread, and a WSGI application registered via
``server.set_app(App(...))`` runs its ``__call__`` there as well —
both are walked as thread entries.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.model import CallResolver, ProjectModel, self_attr
from repro.analysis.source import SourceFile

_MAX_DEPTH = 3

#: stdlib bases whose subclasses execute requests on fresh threads
_THREADED_BASES = frozenset(
    {
        "ThreadingMixIn",
        "ThreadingHTTPServer",
        "ThreadingTCPServer",
        "ThreadingUDPServer",
        "ThreadingWSGIServer",
        "BaseHTTPRequestHandler",
        "SimpleHTTPRequestHandler",
        "WSGIRequestHandler",
        "BaseRequestHandler",
        "StreamRequestHandler",
        "DatagramRequestHandler",
    }
)

#: handler methods the server invokes on the per-request thread
_HANDLER_ENTRY_METHODS = frozenset(
    {
        "handle",
        "handle_one_request",
        "process_request_thread",
        "run_application",
        "finish_request",
    }
)


def _span_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "span"


def _has_parent_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "parent" for kw in node.keywords)


def _submitted_callables(
    tree: ast.AST,
) -> List[Tuple[ast.expr, ast.Call]]:
    """(callable expression, submission call) pairs in the module."""
    out: List[Tuple[ast.expr, ast.Call]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            if node.args:
                out.append((node.args[0], node))
        worker_names = ("Thread", "Process")
        is_worker = (
            isinstance(func, ast.Attribute) and func.attr in worker_names
        ) or (isinstance(func, ast.Name) and func.id in worker_names)
        if is_worker:
            for kw in node.keywords:
                if kw.arg == "target":
                    out.append((kw.value, node))
        # threading.Timer(interval, callback) fires the callback on a
        # fresh thread too — the replication failover controller
        # reschedules itself this way.  The callable is the second
        # positional argument (or the ``function=`` keyword).
        is_timer = (
            isinstance(func, ast.Attribute) and func.attr == "Timer"
        ) or (isinstance(func, ast.Name) and func.id == "Timer")
        if is_timer:
            if len(node.args) >= 2:
                out.append((node.args[1], node))
            for kw in node.keywords:
                if kw.arg == "function":
                    out.append((kw.value, node))
    return out


class ThreadEntryRule(Rule):
    rule_id = "REPRO-T001"
    name = "thread-entry"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        for sf in model.files:
            for target, submission in _submitted_callables(sf.tree):
                entry = self._resolve_entry(model, sf, target, submission)
                if entry is None:
                    continue
                func, receiver = entry
                self._check_entry(
                    model, sf, func, receiver, report, visited=set(),
                    depth=0,
                )
        self._check_server_entries(model, report)

    # ------------------------------------------------------------------
    # HTTP server worker threads
    # ------------------------------------------------------------------

    def _request_threaded(
        self, model: ProjectModel, class_name: str, seen: Set[str]
    ) -> bool:
        """Does the class (transitively) derive from a threading
        server or request-handler base?"""
        if class_name in seen:
            return False
        seen.add(class_name)
        class_model = model.classes.get(class_name)
        if class_model is None:
            return False
        for base in class_model.bases:
            if base in _THREADED_BASES:
                return True
            if self._request_threaded(model, base, seen):
                return True
        return False

    def _check_server_entries(
        self, model: ProjectModel, report: AnalysisReport
    ) -> None:
        for class_model in model.classes.values():
            if not self._request_threaded(
                model, class_model.name, set()
            ):
                continue
            for name, method in class_model.methods.items():
                if (
                    name in _HANDLER_ENTRY_METHODS
                    or name.startswith("do_")
                ):
                    self._check_entry(
                        model,
                        class_model.sf,
                        method,
                        class_model.name,
                        report,
                        visited=set(),
                        depth=0,
                    )
        # A WSGI app registered on a (threading) server runs __call__
        # on the handler thread: ``server.set_app(App(...))``.
        for sf in model.files:
            for node in ast.walk(sf.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_app"
                    and node.args
                ):
                    continue
                arg = node.args[0]
                if not (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                ):
                    continue
                callee = model.resolve_method(arg.func.id, "__call__")
                if callee is not None and callee.node is not None:
                    self._check_entry(
                        model,
                        callee.sf,
                        callee.node,
                        arg.func.id,
                        report,
                        visited=set(),
                        depth=0,
                    )

    # ------------------------------------------------------------------

    def _resolve_entry(
        self,
        model: ProjectModel,
        sf: SourceFile,
        target: ast.expr,
        submission: ast.Call,
    ) -> Optional[Tuple[ast.FunctionDef, Optional[str]]]:
        enclosing = self._enclosing_scope(sf, submission)
        func_node, receiver = enclosing
        if isinstance(target, ast.Name):
            if func_node is not None:
                for stmt in ast.walk(func_node):
                    if (
                        isinstance(stmt, ast.FunctionDef)
                        and stmt.name == target.id
                    ):
                        return stmt, receiver
            entry = model.module_functions.get((sf.module, target.id))
            if entry is not None:
                return entry[0], None
            return None
        attr = self_attr(target)
        if attr is not None and receiver is not None:
            resolved = model.resolve_method(receiver, attr)
            if resolved is not None and resolved.node is not None:
                return resolved.node, receiver
        if isinstance(target, ast.Lambda):
            # treat the lambda body as an inline entry: wrap it
            wrapper = ast.FunctionDef(
                name="<lambda>",
                args=target.args,
                body=[ast.Expr(value=target.body)],
                decorator_list=[],
                returns=None,
                type_comment=None,
            )
            ast.copy_location(wrapper, target)
            ast.fix_missing_locations(wrapper)
            return wrapper, receiver
        return None

    def _enclosing_scope(
        self, sf: SourceFile, node: ast.AST
    ) -> Tuple[Optional[ast.FunctionDef], Optional[str]]:
        """Innermost function and class containing ``node``."""
        result: List[Tuple[Optional[ast.FunctionDef], Optional[str]]] = [
            (None, None)
        ]

        def visit(
            current: ast.AST,
            func: Optional[ast.FunctionDef],
            cls: Optional[str],
        ) -> None:
            if current is node:
                result[0] = (func, cls)
                return
            if isinstance(current, ast.ClassDef):
                cls = current.name
            if isinstance(current, ast.FunctionDef):
                func = current
            for child in ast.iter_child_nodes(current):
                visit(child, func, cls)

        visit(sf.tree, None, None)
        return result[0]

    # ------------------------------------------------------------------

    def _check_entry(
        self,
        model: ProjectModel,
        sf: SourceFile,
        func: ast.FunctionDef,
        receiver: Optional[str],
        report: AnalysisReport,
        visited: Set[int],
        depth: int,
    ) -> None:
        if id(func) in visited or depth > _MAX_DEPTH:
            return
        visited.add(id(func))
        resolver = CallResolver(model, sf, func, receiver, receiver)

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.With):
                covered = False
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) and _span_call(expr):
                        if _has_parent_kwarg(expr):
                            covered = True
                        else:
                            self._flag_span(sf, expr, func, report)
                        # the call itself is handled; visit only its
                        # argument expressions
                        for child in ast.iter_child_nodes(expr):
                            visit(child)
                    else:
                        visit(expr)
                if covered:
                    return  # context populated; nesting is safe below
                for stmt in node.body:
                    visit(stmt)
                return
            if isinstance(node, ast.Call):
                if _span_call(node) and not _has_parent_kwarg(node):
                    self._flag_span(sf, node, func, report)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "current_span"
                ):
                    if not sf.allows(self.name, node, def_node=func):
                        report.findings.append(
                            self.finding(
                                sf,
                                node.lineno,
                                f"{func.name}() runs on a worker thread "
                                f"but reads current_span() — a fresh "
                                f"thread context always yields None",
                            )
                        )
                else:
                    for callee in resolver.resolve(node):
                        if (
                            callee.node is not None
                            and callee.sf is sf
                        ):
                            self._check_entry(
                                model,
                                sf,
                                callee.node,
                                callee.receiver,
                                report,
                                visited,
                                depth + 1,
                            )
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in func.body:
            visit(stmt)

    def _flag_span(
        self,
        sf: SourceFile,
        call: ast.Call,
        func: ast.FunctionDef,
        report: AnalysisReport,
    ) -> None:
        if sf.allows(self.name, call, def_node=func):
            return
        report.findings.append(
            self.finding(
                sf,
                call.lineno,
                f"span opened in thread-entry path {func.name}() without "
                f"explicit parent= — it would detach from its trace",
            )
        )
