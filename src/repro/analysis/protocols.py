"""REPRO-P00x: protocol-ordering rules over per-function CFGs.

The lock rules answer "is this access guarded?"; these rules answer
"does this call happen in the right *order*?" — the bug class every
durability PR has shipped at least once: a sidecar persisted before
the arena was flushed, a rename never followed by the directory
fsync, an ack sent before the frames it acknowledges.

Each :class:`ProtocolSpec` names an **anchor** call pattern and three
obligation sets, checked on the CFG (:mod:`repro.analysis.cfg`) of
every function containing an anchor:

``require_before``
    Must **dominate** the anchor: no path from function entry reaches
    the anchor without passing a satisfying call.

``require_after``
    Must **post-dominate** the anchor on success: no path from the
    anchor reaches a normal return without passing a satisfying call.
    Raising paths are exempt — an escaping exception is already a
    failed operation.

``forbid_after``
    Must not be reachable from the anchor before a ``require_after``
    obligation is discharged (e.g. opening a second journal group
    before the first committed).

Matching follows the :class:`~repro.analysis.model.CallResolver` one
wrapper level deep, both ways: a call *satisfies* an obligation if
its resolved callee directly contains a satisfying call (``self.
_fsync_dir(d)`` counts as a directory fsync), and a call *is an
anchor* if its resolved callee directly contains an anchor **and
does not itself discharge the spec** (``hub._persist()`` call sites
inherit the flush-before-persist obligation because ``_persist``
never flushes; ``device.write_batch()`` call sites do not, because
``write_batch`` commits internally).

Exemptions are in-code only: ``# lint: protocol-exempt=<rule>
(reason)`` on the call (or its ``def``) line, never a baseline entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg, calls_in
from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.findings import Finding
from repro.analysis.model import Callee, CallResolver, ProjectModel
from repro.analysis.source import SourceFile

__all__ = ["CallPattern", "ProtocolSpec", "ProtocolRule", "SPECS"]


def _dotted(expr: ast.expr) -> Optional[str]:
    """``os.replace`` / ``self.journal.append_commit`` -> dotted text."""
    parts: List[str] = []
    cur: ast.expr = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class CallPattern:
    """Matches a call by terminal name or dotted-suffix qualification."""

    names: FrozenSet[str] = frozenset()
    qualified: FrozenSet[str] = frozenset()

    def matches(self, call: ast.Call) -> bool:
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is not None and name in self.names:
            return True
        if self.qualified:
            dotted = _dotted(func)
            if dotted is not None:
                for qual in self.qualified:
                    if dotted == qual or dotted.endswith("." + qual):
                        return True
        return False


@dataclass(frozen=True)
class Requirement:
    pattern: CallPattern
    #: short noun phrase for messages ("a directory fsync")
    what: str


@dataclass(frozen=True)
class ProtocolSpec:
    rule_id: str
    #: suppression token (``# lint: protocol-exempt=<name>`` also works)
    name: str
    #: noun phrase for the anchor in messages ("os.replace()")
    anchor_what: str
    anchor: CallPattern
    require_before: Tuple[Requirement, ...] = ()
    require_after: Tuple[Requirement, ...] = ()
    forbid_after: Tuple[Requirement, ...] = ()
    description: str = ""

    @property
    def tokens(self) -> Set[str]:
        return {self.rule_id, self.name}


SPECS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        rule_id="REPRO-P001",
        name="rename-durability",
        anchor_what="os.replace()",
        anchor=CallPattern(qualified=frozenset({"os.replace", "os.rename"})),
        require_after=(
            Requirement(
                CallPattern(
                    names=frozenset({"_fsync_dir", "fsync_dir"}),
                    qualified=frozenset({"os.fsync"}),
                ),
                "a directory fsync",
            ),
        ),
        description=(
            "a rename is durable only once the directory entry is "
            "fsynced; every non-raising path after os.replace() must "
            "fsync the parent directory"
        ),
    ),
    ProtocolSpec(
        rule_id="REPRO-P002",
        name="journal-commit",
        anchor_what="append_data()",
        anchor=CallPattern(names=frozenset({"append_data"})),
        require_after=(
            Requirement(
                CallPattern(names=frozenset({"append_commit"})),
                "append_commit()",
            ),
        ),
        forbid_after=(
            Requirement(
                CallPattern(names=frozenset({"begin_group"})),
                "begin_group()",
            ),
        ),
        description=(
            "journaled data records are invisible to recovery until "
            "the commit record lands: every success path after "
            "append_data() must reach append_commit(), and no new "
            "group may open before the current one commits"
        ),
    ),
    ProtocolSpec(
        rule_id="REPRO-P003",
        name="flush-before-persist",
        anchor_what="save_state()",
        anchor=CallPattern(names=frozenset({"save_state"})),
        require_before=(
            Requirement(
                CallPattern(names=frozenset({"flush"})),
                "a buffer-pool flush",
            ),
            Requirement(
                CallPattern(names=frozenset({"sync", "msync"})),
                "an arena sync",
            ),
        ),
        description=(
            "the sidecar must describe bytes that are already "
            "durable: a pool flush and an arena sync must dominate "
            "every save_state() call"
        ),
    ),
    ProtocolSpec(
        rule_id="REPRO-P004",
        name="ship-before-ack",
        anchor_what="ack()",
        anchor=CallPattern(names=frozenset({"ack"})),
        require_before=(
            Requirement(
                CallPattern(names=frozenset({"ship", "frames_since"})),
                "shipping the frames it acknowledges",
            ),
        ),
        description=(
            "an acknowledgement releases retained journal frames; "
            "shipping (or re-reading) those frames must dominate the "
            "ack, or an acked write can be lost on failover"
        ),
    ),
)


@dataclass
class _Unit:
    """One function to check: its file, def node and resolver context."""

    sf: SourceFile
    func: ast.FunctionDef
    receiver: Optional[str]
    owner: Optional[str]
    label: str


def _iter_units(model: ProjectModel) -> Iterator[_Unit]:
    for (module, name), (func, sf) in sorted(
        model.module_functions.items()
    ):
        yield _Unit(sf, func, None, None, f"{module}.{name}")
    for cls in sorted(model.classes.values(), key=lambda c: c.name):
        for name, func in sorted(cls.methods.items()):
            yield _Unit(
                cls.sf, func, cls.name, cls.name, f"{cls.name}.{name}"
            )


class ProtocolRule(Rule):
    """Drives every :data:`SPECS` entry over every function CFG."""

    rule_id = "REPRO-P000"
    name = "protocol"

    def __init__(self, specs: Tuple[ProtocolSpec, ...] = SPECS) -> None:
        self.specs = specs
        #: (callee id, spec id) -> callee internally discharges spec
        self._satisfies_memo: Dict[Tuple[int, str], bool] = {}

    # -- matching ------------------------------------------------------

    def _wrapped_match(
        self, pattern: CallPattern, call: ast.Call, resolver: CallResolver
    ) -> bool:
        """Direct match, or the resolved callee directly matches."""
        if pattern.matches(call):
            return True
        for callee in resolver.resolve(call):
            if callee.node is None:
                continue
            for inner in calls_in(callee.node):
                if pattern.matches(inner):
                    return True
        return False

    def _callee_satisfies(
        self, spec: ProtocolSpec, callee: Callee, model: ProjectModel
    ) -> bool:
        """Whether ``callee``'s own body discharges ``spec`` for the
        direct anchors it contains (direct matching only — wrappers
        are followed one level deep, not transitively)."""
        func = callee.node
        assert func is not None
        key = (id(func), spec.rule_id)
        cached = self._satisfies_memo.get(key)
        if cached is not None:
            return cached
        cfg = build_cfg(func)
        anchors = [
            (node.index, call)
            for node in cfg.nodes
            for call in node.calls
            if spec.anchor.matches(call)
        ]
        ok = bool(anchors)
        for index, _call in anchors:
            if self._violations(spec, cfg, index, None):
                ok = False
                break
        self._satisfies_memo[key] = ok
        return ok

    # -- CFG checks ----------------------------------------------------

    def _satisfying_nodes(
        self,
        cfg: CFG,
        pattern: CallPattern,
        resolver: Optional[CallResolver],
    ) -> Set[int]:
        out: Set[int] = set()
        for node in cfg.nodes:
            for call in node.calls:
                if pattern.matches(call) or (
                    resolver is not None
                    and self._wrapped_match(pattern, call, resolver)
                ):
                    out.add(node.index)
                    break
        return out

    def _violations(
        self,
        spec: ProtocolSpec,
        cfg: CFG,
        anchor_index: int,
        resolver: Optional[CallResolver],
    ) -> List[Tuple[str, int]]:
        """(message, line) pairs for one anchor node."""
        out: List[Tuple[str, int]] = []
        after_nodes: Set[int] = set()
        for req in spec.require_after:
            satisfying = self._satisfying_nodes(cfg, req.pattern, resolver)
            after_nodes |= satisfying
            if anchor_index in satisfying:
                continue  # same statement evaluates the follow-up
            hit = cfg.reach(
                cfg.succ.get(anchor_index, set()),
                blocked=lambda n: n in satisfying,
                targets={cfg.exit_normal},
            )
            if hit is not None:
                anchor_line = cfg.nodes[anchor_index].line
                out.append(
                    (
                        f"{spec.anchor_what} can reach a normal return "
                        f"without {req.what} ({spec.name})",
                        anchor_line,
                    )
                )
        for req in spec.require_before:
            satisfying = self._satisfying_nodes(cfg, req.pattern, resolver)
            if anchor_index in satisfying:
                continue
            hit = cfg.reach(
                {cfg.entry},
                blocked=lambda n: n in satisfying,
                targets={anchor_index},
            )
            if hit is not None:
                anchor_line = cfg.nodes[anchor_index].line
                out.append(
                    (
                        f"{spec.anchor_what} is reachable without "
                        f"{req.what} on some path ({spec.name})",
                        anchor_line,
                    )
                )
        for req in spec.forbid_after:
            forbidden = self._satisfying_nodes(cfg, req.pattern, resolver)
            forbidden.discard(anchor_index)
            hit = cfg.reach(
                cfg.succ.get(anchor_index, set()),
                blocked=lambda n: n in after_nodes,
                targets=forbidden,
            )
            if hit is not None:
                out.append(
                    (
                        f"{req.what} is reachable after "
                        f"{spec.anchor_what} before the required "
                        f"follow-up ({spec.name})",
                        cfg.nodes[hit].line,
                    )
                )
        return out

    # -- driver --------------------------------------------------------

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        anchors: Dict[str, int] = {s.rule_id: 0 for s in self.specs}
        violations: Dict[str, int] = {s.rule_id: 0 for s in self.specs}
        for unit in _iter_units(model):
            self._check_unit(unit, model, report, anchors, violations)
        report.data["protocols"] = {
            "specs": [
                {
                    "rule": spec.rule_id,
                    "name": spec.name,
                    "anchors": anchors[spec.rule_id],
                    "violations": violations[spec.rule_id],
                    "description": spec.description,
                }
                for spec in self.specs
            ]
        }

    def _anchor_calls(
        self, spec: ProtocolSpec, cfg: CFG, resolver: CallResolver,
        model: ProjectModel,
    ) -> List[Tuple[int, ast.Call]]:
        """Anchor (node, call) pairs: direct matches plus unsatisfied
        one-level wrappers."""
        out: List[Tuple[int, ast.Call]] = []
        for node in cfg.nodes:
            for call in node.calls:
                if spec.anchor.matches(call):
                    out.append((node.index, call))
                    continue
                for callee in resolver.resolve(call):
                    if callee.node is None or callee.node is resolver.func:
                        continue
                    direct = any(
                        spec.anchor.matches(inner)
                        for inner in calls_in(callee.node)
                    )
                    if direct and not self._callee_satisfies(
                        spec, callee, model
                    ):
                        out.append((node.index, call))
                        break
        return out

    def _check_unit(
        self,
        unit: _Unit,
        model: ProjectModel,
        report: AnalysisReport,
        anchor_counts: Dict[str, int],
        violation_counts: Dict[str, int],
    ) -> None:
        if not calls_in(unit.func):
            return  # cheap pre-scan: nothing to anchor or satisfy
        cfg: Optional[CFG] = None
        resolver: Optional[CallResolver] = None
        for spec in self.specs:
            if cfg is None:
                cfg = build_cfg(unit.func)
                resolver = CallResolver(
                    model, unit.sf, unit.func, unit.receiver, unit.owner
                )
            assert resolver is not None
            anchors = self._anchor_calls(spec, cfg, resolver, model)
            if not anchors:
                continue
            anchor_counts[spec.rule_id] += len(anchors)
            reported: Set[Tuple[str, int]] = set()
            for index, call in anchors:
                if unit.sf.allows(
                    spec.name, call, def_node=unit.func
                ) or unit.sf.protocol_exempt_at(
                    spec.tokens, call, def_node=unit.func
                ):
                    continue
                for message, line in self._violations(
                    spec, cfg, index, resolver
                ):
                    if (message, line) in reported:
                        continue
                    reported.add((message, line))
                    violation_counts[spec.rule_id] += 1
                    report.findings.append(
                        Finding(
                            file=unit.sf.relpath,
                            line=line,
                            rule=spec.rule_id,
                            name=spec.name,
                            message=f"{unit.label}: {message}",
                        )
                    )
