"""Eraser-style lockset race sanitizer driven by ``# guarded-by:`` facts.

repro-lint's static half (REPRO-L001) checks that ``self.<attr>``
accesses are *lexically* inside ``with self._lock:``; it cannot see
dynamic dispatch, cross-object aliasing, or code paths the model
declines to resolve.  This module closes the loop at runtime: it
reads the same ``# guarded-by:`` declarations the static model uses
(:func:`guarded_facts`), wraps the declared fields of live objects
with recording properties and their locks with counting proxies, and
runs the classic Eraser lockset algorithm per field:

* a field starts *exclusive* to its first-accessing thread (so
  constructor-style initialization never needs the lock);
* the first access from a second thread makes it *shared* and seeds
  the candidate lockset with the locks held right then;
* every later access intersects the candidates with the locks held;
* an empty candidate set with a write involved is a **race**,
  reported once per field with both threads, both sites and the
  current stack.

On top of Eraser, the close-out pass cross-checks statics against
dynamics: if a shared field ended with a non-empty candidate set
that does *not* contain the lock its ``# guarded-by:`` names, either
the annotation is wrong or the code is locking the wrong lock —
both are findings (REPRO-R003).

Zero-cost by default: :func:`watching` instruments nothing unless
``REPRO_RACESAN=1`` is set (or ``force=True`` is passed), so the
stress tests it wires into run unperturbed in normal CI legs.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
import types
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, build_model
from repro.analysis.source import load_source_tree

__all__ = [
    "GuardFactsRule",
    "RaceReport",
    "RaceSanitizer",
    "enabled",
    "guarded_facts",
    "watching",
]

_ENV_SWITCH = "REPRO_RACESAN"


def enabled() -> bool:
    """Whether the ``REPRO_RACESAN=1`` switch is on."""
    return os.environ.get(_ENV_SWITCH) == "1"


# ---------------------------------------------------------------------------
# static facts
# ---------------------------------------------------------------------------

_FACTS_CACHE: Optional[Dict[str, Dict[str, str]]] = None


def guarded_facts(
    model: Optional[ProjectModel] = None,
) -> Dict[str, Dict[str, str]]:
    """``{class_name: {field: guarding_lock_attr}}`` from the source.

    Built from the same semantic model the static rules use, so the
    runtime sanitizer and REPRO-L001 can never drift apart.  Cached
    after the first (filesystem-walking) call.
    """
    global _FACTS_CACHE
    cache_default = model is None
    if model is None:
        if _FACTS_CACHE is not None:
            return _FACTS_CACHE
        package_root = Path(__file__).resolve().parents[1]
        model = build_model(
            load_source_tree(package_root, prefix="src/repro")
        )
    facts: Dict[str, Dict[str, str]] = {}
    for cls in model.classes.values():
        if cls.guarded:
            facts[cls.name] = {
                attr: lock for attr, (lock, _line) in cls.guarded.items()
            }
    if cache_default:
        _FACTS_CACHE = facts
    return facts


class GuardFactsRule(Rule):
    """REPRO-R001: every ``# guarded-by:`` names an instrumentable lock.

    The sanitizer can only wrap a guard it can find: the named lock
    must exist as a scalar lock attribute somewhere in the class's
    MRO.  A claim naming a missing attribute (typo, refactor debris)
    or a lock *sequence* (sharded locks guard shards, not scalars)
    would silently instrument nothing, so it is a static finding.
    """

    rule_id = "REPRO-R001"
    name = "guard-facts"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        for cls in model.classes.values():
            for attr, (lock, line) in sorted(cls.guarded.items()):
                if cls.sf.allows(self.name, cls.node, def_node=None):
                    continue
                is_seq = model.class_lock_attr(cls.name, lock)
                if is_seq is None:
                    report.findings.append(
                        self.finding(
                            cls.sf,
                            line,
                            f"{cls.name}.{attr} is '# guarded-by: {lock}' "
                            f"but no lock attribute '{lock}' exists in the "
                            f"class — racesan cannot instrument the claim",
                        )
                    )
                elif is_seq:
                    report.findings.append(
                        self.finding(
                            cls.sf,
                            line,
                            f"{cls.name}.{attr} is '# guarded-by: {lock}' "
                            f"but '{lock}' is a lock *sequence* — name the "
                            f"scalar lock that guards this field",
                        )
                    )


# ---------------------------------------------------------------------------
# runtime sanitizer
# ---------------------------------------------------------------------------


@dataclass
class RaceReport:
    """One detected race (reported once per object/field)."""

    cls: str
    attr: str
    claimed_lock: str
    kind: str  # "read" or "write"
    thread_a: str
    site_a: str
    thread_b: str
    site_b: str
    stack: List[str] = field(default_factory=list)

    def render(self) -> str:
        return (
            f"RACE on {self.cls}.{self.attr} (guarded-by {self.claimed_lock})"
            f": {self.kind} at {self.site_b} [{self.thread_b}] races "
            f"prior access at {self.site_a} [{self.thread_a}] — "
            f"candidate lockset is empty"
        )


@dataclass
class _FieldState:
    owner: Optional[int] = None  # first accessing thread id
    shared: bool = False
    #: None while exclusive ("all locks"); intersected once shared
    candidates: Optional[FrozenSet[int]] = None
    write_while_shared: bool = False
    last_thread: str = ""
    last_site: str = ""
    last_kind: str = "read"
    reported: bool = False


class _SanLock:
    """Identity-preserving lock proxy that records per-thread holds."""

    __slots__ = ("_san", "_inner", "name")

    def __init__(self, san: "RaceSanitizer", inner: Any, name: str) -> None:
        self._san = san
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = bool(self._inner.acquire(blocking, timeout))
        if got:
            self._san._held().add(id(self))
        return got

    def release(self) -> None:
        self._san._held().discard(id(self))
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())


_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


def _attr_names(obj: Any) -> Set[str]:
    """Instance attribute names, covering both dict and slot storage."""
    names: Set[str] = set(getattr(obj, "__dict__", None) or {})
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", None) or ()
        if isinstance(slots, str):
            slots = (slots,)
        names.update(slots)
    return names


def _caller_site() -> str:
    """``file:line`` of the nearest frame outside this module."""
    here = __file__
    frame = sys._getframe(1)
    while frame is not None:
        if frame.f_code.co_filename != here:
            return (
                f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"
            )
        back = frame.f_back
        if back is None:
            break
        frame = back
    return "<unknown>"


class RaceSanitizer:
    """Instrument objects and run the lockset algorithm over them."""

    def __init__(self, facts: Optional[Dict[str, Dict[str, str]]] = None):
        self._facts = facts if facts is not None else guarded_facts()
        self._tls = threading.local()
        self._mutex = threading.Lock()
        self._states: Dict[Tuple[int, str], _FieldState] = {}
        self._instrumented: List[Tuple[Any, type, Dict[str, Any]]] = []
        #: survives uninstall: id(obj) -> original class (for close-out)
        self._cls_history: List[Tuple[Any, type, None]] = []
        #: id(original lock) -> proxy, so shared locks share a proxy
        self._proxies: Dict[int, _SanLock] = {}
        #: id(obj) -> {lock_attr: proxy id}
        self._obj_locks: Dict[int, Dict[str, int]] = {}
        self.races: List[RaceReport] = []
        self.mismatches: List[str] = []

    # -- thread-local held set ----------------------------------------

    def _held(self) -> Set[int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = set()
            self._tls.held = held
        return held

    # -- installation --------------------------------------------------

    def _merged_facts(self, cls: type) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        for klass in reversed(cls.__mro__):
            merged.update(self._facts.get(klass.__name__, {}))
        return merged

    def install(self, obj: Any) -> bool:
        """Wrap ``obj``'s guarded fields and locks.  Returns whether
        anything was instrumented (no facts -> no-op)."""
        fields = self._merged_facts(type(obj))
        fields = {
            attr: lock
            for attr, lock in fields.items()
            if hasattr(obj, lock)
        }
        if not fields:
            return False
        original_cls = type(obj)
        restored_locks: Dict[str, Any] = {}
        lock_ids: Dict[str, int] = {}
        # wrap every lock attribute, not only the declared guards: a
        # field consistently protected by the *wrong* lock must show
        # that lock in its candidate set (a guard mismatch), not an
        # empty set (a race).
        lock_attrs = set(fields.values())
        lock_attrs.update(
            name
            for name in _attr_names(obj)
            if isinstance(
                getattr(obj, name, None), _LOCK_TYPES
            )
        )
        for lock_attr in sorted(lock_attrs):
            inner = getattr(obj, lock_attr, None)
            if inner is None:
                continue
            if isinstance(inner, _SanLock):
                lock_ids[lock_attr] = id(inner)
                continue
            if not hasattr(inner, "acquire"):
                continue
            proxy = self._proxies.get(id(inner))
            if proxy is None:
                proxy = _SanLock(
                    self, inner, f"{original_cls.__name__}.{lock_attr}"
                )
                self._proxies[id(inner)] = proxy
            restored_locks[lock_attr] = inner
            lock_ids[lock_attr] = id(proxy)
            setattr(obj, lock_attr, proxy)
        self._obj_locks[id(obj)] = lock_ids
        obj.__class__ = _wrapped_class(original_cls, tuple(sorted(fields)))
        self._instrumented.append((obj, original_cls, restored_locks))
        self._cls_history.append((obj, original_cls, None))
        return True

    def uninstall_all(self) -> None:
        for obj, original_cls, locks in reversed(self._instrumented):
            obj.__class__ = original_cls
            for lock_attr, inner in locks.items():
                setattr(obj, lock_attr, inner)
        self._instrumented.clear()

    # -- the lockset algorithm -----------------------------------------

    def record(self, obj: Any, attr: str, is_write: bool) -> None:
        tid = threading.get_ident()
        held = frozenset(self._held())
        site = _caller_site()
        name = threading.current_thread().name
        cls_name = type(obj).__mro__[1].__name__  # past the wrapper
        with self._mutex:
            state = self._states.setdefault(
                (id(obj), attr), _FieldState()
            )
            if state.owner is None:
                state.owner = tid
            elif tid != state.owner and not state.shared:
                state.shared = True
                state.candidates = held
                if is_write:
                    state.write_while_shared = True
            elif state.shared:
                assert state.candidates is not None
                state.candidates = state.candidates & held
                if is_write:
                    state.write_while_shared = True
            if (
                state.shared
                and not state.candidates
                and state.write_while_shared
                and not state.reported
            ):
                state.reported = True
                claimed = self._claimed_lock_name(obj, attr)
                self.races.append(
                    RaceReport(
                        cls=cls_name,
                        attr=attr,
                        claimed_lock=claimed,
                        kind="write" if is_write else "read",
                        thread_a=state.last_thread,
                        site_a=state.last_site,
                        thread_b=name,
                        site_b=site,
                        stack=traceback.format_stack()[:-2],
                    )
                )
            state.last_thread = name
            state.last_site = site
            state.last_kind = "write" if is_write else "read"

    def _claimed_lock_name(self, obj: Any, attr: str) -> str:
        fields = self._merged_facts(type(obj).__mro__[1])
        return fields.get(attr, "?")

    # -- close-out: statics vs dynamics --------------------------------

    def check_consistency(self) -> List[str]:
        """Shared fields whose observed protecting lockset does not
        contain the lock the ``# guarded-by:`` claim names."""
        out: List[str] = []
        with self._mutex:
            id_to_cls = {id(o): c for o, c, _l in self._cls_history}
            for (obj_id, attr), state in sorted(
                self._states.items(), key=lambda kv: kv[0][1]
            ):
                if not state.shared or not state.candidates:
                    continue  # races are reported separately
                base = id_to_cls.get(obj_id)
                if base is None:
                    continue
                lock_attr = self._merged_facts(base).get(attr)
                if lock_attr is None:
                    continue
                claimed_id = self._obj_locks.get(obj_id, {}).get(lock_attr)
                if claimed_id is not None and claimed_id in state.candidates:
                    continue
                protectors = sorted(
                    proxy.name
                    for proxy in self._proxies.values()
                    if id(proxy) in state.candidates
                )
                out.append(
                    f"guard mismatch on {base.__name__}.{attr}: "
                    f"'# guarded-by: {lock_attr}' but the runtime "
                    f"lockset is {protectors or ['<none named>']} — "
                    f"fix the annotation or the locking"
                )
        self.mismatches = out
        return out

    # -- reporting ------------------------------------------------------

    def to_findings(self) -> List[Finding]:
        findings = [
            Finding(
                file=report.site_b.split(":")[0],
                line=int(report.site_b.rsplit(":", 1)[-1] or 0),
                rule="REPRO-R002",
                name="lockset-race",
                message=report.render(),
            )
            for report in self.races
        ]
        findings.extend(
            Finding(
                file="<runtime>",
                line=0,
                rule="REPRO-R003",
                name="guard-mismatch",
                message=message,
            )
            for message in self.mismatches
        )
        return findings

    def raise_if_findings(self) -> None:
        findings = self.to_findings()
        if findings:
            rendered = "\n".join(f.render() for f in findings)
            detail = ""
            if self.races:
                detail = "\n" + "".join(self.races[0].stack[-6:])
            raise AssertionError(
                f"racesan: {len(findings)} finding(s)\n{rendered}{detail}"
            )


# ---------------------------------------------------------------------------
# class wrapping
# ---------------------------------------------------------------------------

#: the active sanitizer consulted by wrapped properties
_ACTIVE: Optional[RaceSanitizer] = None

_WRAPPED_CACHE: Dict[Tuple[type, Tuple[str, ...]], type] = {}


def _make_property(cls: type, attr: str) -> property:
    descr = getattr(cls, attr, None)
    if isinstance(descr, types.MemberDescriptorType):
        # slotted class: the original slot descriptor still works on
        # the subclass instance — route through it.
        def slot_get(self: Any) -> Any:
            san = _ACTIVE
            if san is not None:
                san.record(self, attr, is_write=False)
            return descr.__get__(self, cls)

        def slot_set(self: Any, value: Any) -> None:
            san = _ACTIVE
            if san is not None:
                san.record(self, attr, is_write=True)
            descr.__set__(self, value)

        return property(slot_get, slot_set)

    def dict_get(self: Any) -> Any:
        san = _ACTIVE
        if san is not None:
            san.record(self, attr, is_write=False)
        try:
            return self.__dict__[attr]
        except KeyError:
            raise AttributeError(attr) from None

    def dict_set(self: Any, value: Any) -> None:
        san = _ACTIVE
        if san is not None:
            san.record(self, attr, is_write=True)
        self.__dict__[attr] = value

    return property(dict_get, dict_set)


def _wrapped_class(cls: type, attrs: Tuple[str, ...]) -> type:
    key = (cls, attrs)
    cached = _WRAPPED_CACHE.get(key)
    if cached is not None:
        return cached
    namespace: Dict[str, Any] = {"__slots__": ()}
    for attr in attrs:
        namespace[attr] = _make_property(cls, attr)
    wrapped: Type[Any] = type(f"_RaceSan_{cls.__name__}", (cls,), namespace)
    _WRAPPED_CACHE[key] = wrapped
    return wrapped


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


@contextmanager
def watching(
    *objects: Any,
    force: bool = False,
    facts: Optional[Dict[str, Dict[str, str]]] = None,
) -> Iterator[Optional[RaceSanitizer]]:
    """Instrument ``objects`` for the duration of the block.

    No-op (yields ``None``) unless ``REPRO_RACESAN=1`` or ``force``.
    On exit the instrumentation is removed, the statics-vs-dynamics
    consistency check runs, and any finding raises ``AssertionError``
    — so wiring this around an existing stress test turns it into a
    race detector without changing its assertions.
    """
    global _ACTIVE
    if not (force or enabled()):
        yield None
        return
    if _ACTIVE is not None:
        raise RuntimeError("racesan: watching() blocks do not nest")
    san = RaceSanitizer(facts=facts)
    for obj in objects:
        san.install(obj)
    _ACTIVE = san
    try:
        yield san
    finally:
        _ACTIVE = None
        san.uninstall_all()
    san.check_consistency()
    san.raise_if_findings()


def instrument_hub(hub: Any, san: RaceSanitizer) -> int:
    """Install on a :class:`ServingHub` and its guarded satellites.

    Covers the hub itself, its engines, journal shipper, follower,
    failover controller, tracer and metrics — every class the static
    model carries ``# guarded-by:`` facts for.  Returns the number of
    objects instrumented.
    """
    count = 0
    seen: Set[int] = set()

    def add(obj: Any) -> None:
        nonlocal count
        if obj is None or id(obj) in seen:
            return
        seen.add(id(obj))
        if san.install(obj):
            count += 1

    add(hub)
    for attr in ("shipper", "follower", "failover", "_tracer", "tracer"):
        add(getattr(hub, attr, None))
    tenants = getattr(hub, "_tenants", None)
    if isinstance(tenants, dict):
        for tenant in tenants.values():
            add(getattr(tenant, "engine", None))
    registry = getattr(hub, "metrics", None)
    if registry is not None:
        for metric_attr in ("_counters", "_gauges", "_histograms"):
            metrics = getattr(registry, metric_attr, None)
            if isinstance(metrics, dict):
                for metric in metrics.values():
                    add(metric)
    return count
