"""Source files and annotation markers.

The analyzer's input conventions are trailing comments (the only
channel Python's AST does not carry, so they are lexed separately with
:mod:`tokenize` — a marker inside a string literal is never
mis-parsed):

``# guarded-by: _lock``
    On an attribute assignment in ``__init__``: every later
    ``self.<attr>`` access in the class must happen inside a
    ``with self._lock:`` block (rule REPRO-L001).

``# lint: holds=_lock``
    On a ``def`` line: the method body runs with ``self._lock``
    already held (the caller's obligation); call sites are checked
    instead (rule REPRO-L003).

``# lint: allow=<rule-name>[,<rule-name>...] (reason)``
    Suppress the named rules on this line — or, on a ``def`` line, in
    the whole function.  The parenthesised reason is required: an
    exemption without a recorded why is itself a finding.

``# lint: uncounted (reason)``
    Shorthand for ``allow=io-accounting`` — marks a deliberate
    bypass of I/O accounting (checksum scans, persistence snapshots).

``# lint: protocol-exempt=<rule>[,<rule>...] (reason)``
    Exempt this call site from the named protocol-ordering rules
    (``REPRO-P00x`` ids or their short names).  Like ``allow``, the
    parenthesised reason is mandatory — protocol exemptions are the
    reviewed escape hatch for call sites whose ordering obligation is
    discharged by the caller, and the reason records that contract.

``# may-acquire: Class.attr[, Class.attr...]``
    On a call that dispatches dynamically (``getattr`` probing,
    injected callables): declares locks the callee may acquire, so the
    static lock-order graph stays complete where resolution cannot
    follow (rule REPRO-L002).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#\s*lint:\s*holds=([A-Za-z_]\w*)")
_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow=([\w,-]+)\s*(?:\((?P<reason>[^)]*)\))?"
)
_UNCOUNTED_RE = re.compile(
    r"#\s*lint:\s*uncounted\s*(?:\((?P<reason>[^)]*)\))?"
)
_PROTOCOL_EXEMPT_RE = re.compile(
    r"#\s*lint:\s*protocol-exempt=([\w,-]+)\s*(?:\((?P<reason>[^)]*)\))?"
)
_MAY_ACQUIRE_RE = re.compile(r"#\s*may-acquire:\s*([\w.,\s]+)")


@dataclass
class LineMarkers:
    """Markers lexed from the comments of one physical line."""

    guarded_by: Optional[str] = None
    holds: Optional[str] = None
    allow: Set[str] = field(default_factory=set)
    allow_reason: Optional[str] = None
    may_acquire: List[str] = field(default_factory=list)
    #: protocol-rule tokens exempted on this line (ids or short names)
    protocol_exempt: Set[str] = field(default_factory=set)
    #: allow markers missing their parenthesised reason (reported)
    unreasoned_allow: bool = False
    #: the rule tokens those reasonless markers suppressed
    unreasoned_rules: Set[str] = field(default_factory=set)


def _parse_comment(text: str, markers: LineMarkers) -> None:
    match = _GUARDED_RE.search(text)
    if match:
        markers.guarded_by = match.group(1)
    match = _HOLDS_RE.search(text)
    if match:
        markers.holds = match.group(1)
    match = _ALLOW_RE.search(text)
    if match:
        names = {
            name.strip() for name in match.group(1).split(",") if name.strip()
        }
        markers.allow.update(names)
        reason = match.group("reason")
        if reason and reason.strip():
            markers.allow_reason = reason.strip()
        else:
            markers.unreasoned_allow = True
            markers.unreasoned_rules.update(names)
    match = _UNCOUNTED_RE.search(text)
    if match:
        markers.allow.add("io-accounting")
        reason = match.group("reason")
        if reason and reason.strip():
            markers.allow_reason = reason.strip()
        else:
            markers.unreasoned_allow = True
            markers.unreasoned_rules.add("io-accounting")
    match = _PROTOCOL_EXEMPT_RE.search(text)
    if match:
        names = {
            name.strip() for name in match.group(1).split(",") if name.strip()
        }
        markers.protocol_exempt.update(names)
        reason = match.group("reason")
        if reason and reason.strip():
            markers.allow_reason = reason.strip()
        else:
            markers.unreasoned_allow = True
            markers.unreasoned_rules.update(names)
    match = _MAY_ACQUIRE_RE.search(text)
    if match:
        markers.may_acquire.extend(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )


class SourceFile:
    """One parsed module: text, AST and per-line markers."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = ast.parse(text, filename=relpath)
        self.markers: Dict[int, LineMarkers] = {}
        # A trailing comment marks its own line.  A standalone comment
        # line marks the next line of actual code — the convention for
        # statements too long to annotate inline.
        skip_types = (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
        pending: List[str] = []
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                standalone = token.line[: token.start[1]].strip() == ""
                if standalone:
                    pending.append(token.string)
                else:
                    self._attach(token.start[0], [token.string])
            elif token.type not in skip_types:
                if pending:
                    self._attach(token.start[0], pending)
                    pending = []

    def _attach(self, line: int, comments: List[str]) -> None:
        markers = self.markers.get(line)
        if markers is None:
            markers = self.markers[line] = LineMarkers()
        for comment in comments:
            _parse_comment(comment, markers)

    @property
    def module(self) -> str:
        """Dotted module path derived from the relative file path."""
        parts = list(Path(self.relpath).with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def markers_at(self, line: int) -> Optional[LineMarkers]:
        return self.markers.get(line)

    def node_lines(self, node: ast.AST) -> Tuple[int, int]:
        """First and last physical line of a node (inclusive)."""
        first = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or first
        return first, last

    def allows(
        self,
        rule_name: str,
        node: ast.AST,
        def_node: Optional[ast.AST] = None,
    ) -> bool:
        """Whether ``rule_name`` is suppressed at ``node``.

        A marker on the node's first or last physical line counts, as
        does one on the ``def`` line of the enclosing function (when
        given) — the convention for whole-function exemptions.
        """
        lines = set(self.node_lines(node))
        if def_node is not None:
            lines.add(def_node.lineno)
        for line in lines:
            markers = self.markers.get(line)
            if markers is not None and rule_name in markers.allow:
                return True
        return False

    def protocol_exempt_at(
        self,
        tokens: Set[str],
        node: ast.AST,
        def_node: Optional[ast.AST] = None,
    ) -> bool:
        """Whether any of ``tokens`` is protocol-exempted at ``node``.

        Same line conventions as :meth:`allows`: the node's first or
        last physical line, or the enclosing ``def`` line.
        """
        lines = set(self.node_lines(node))
        if def_node is not None:
            lines.add(def_node.lineno)
        for line in lines:
            markers = self.markers.get(line)
            if markers is not None and markers.protocol_exempt & tokens:
                return True
        return False

    def may_acquire_at(self, node: ast.AST) -> List[str]:
        """``may-acquire`` lock names declared on the node's lines."""
        first, last = self.node_lines(node)
        names: List[str] = []
        for line in range(first, last + 1):
            markers = self.markers.get(line)
            if markers is not None:
                names.extend(markers.may_acquire)
        return names


def load_source_tree(root: Path, prefix: str = "") -> List[SourceFile]:
    """Parse every ``*.py`` under ``root`` into :class:`SourceFile`\\ s.

    ``prefix`` is prepended to the reported relative paths so findings
    render repo-relative (e.g. ``src/repro/...``) regardless of where
    the walk was rooted.
    """
    if not root.is_dir():
        raise FileNotFoundError(f"source root is not a directory: {root}")
    files: List[SourceFile] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = str(Path(prefix) / path.relative_to(root))
        files.append(SourceFile(path, relpath, path.read_text()))
    return files
