"""REPRO-L001/L003: guarded attributes are only touched under their lock.

The convention (documented in ``docs/static_analysis.md``): an
attribute assigned in ``__init__`` with a trailing ``# guarded-by:
_lock`` comment may only be read or written inside a ``with
self._lock:`` block in the rest of the class.  A method whose ``def``
line carries ``# lint: holds=_lock`` is treated as running with the
lock already held — and every *call* to such a method must itself
happen with the lock held (REPRO-L003), which is how the classic
"caller holds the lock" docstring becomes machine-checked.

The check is lexical and per-class: accesses through other objects
(``pool.dirty`` from a caller) are the *owner's* API surface and are
protected by the owner's own locked methods.  Intentional unlocked
accesses — a benign racy fast-path read, a CPython-atomic int load in
a property — carry ``# lint: allow=lock-discipline (reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.model import ClassModel, ProjectModel, self_attr


def _with_lock_attrs(stmt: ast.With) -> List[str]:
    """Lock attribute names acquired by ``with self.<attr>[...]:``."""
    out: List[str] = []
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        attr = self_attr(expr)
        if attr is not None:
            out.append(attr)
    return out


class LockDisciplineRule(Rule):
    rule_id = "REPRO-L001"
    name = "lock-discipline"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        for cls in model.classes.values():
            guarded = self._effective_guards(model, cls)
            if guarded:
                self._check_class(model, cls, guarded, report)

    def _effective_guards(
        self, model: ProjectModel, cls: ClassModel
    ) -> Dict[str, str]:
        """Guarded attrs of the class including inherited declarations."""
        out: Dict[str, str] = {}
        for ancestor in reversed(model.mro(cls.name)):
            for attr, (lock, __) in ancestor.guarded.items():
                out[attr] = lock
        return out

    def _holds_of(self, cls: ClassModel, func: ast.FunctionDef) -> Set[str]:
        markers = cls.sf.markers_at(func.lineno)
        if markers is not None and markers.holds:
            return {markers.holds}
        return set()

    def _check_class(
        self,
        model: ProjectModel,
        cls: ClassModel,
        guarded: Dict[str, str],
        report: AnalysisReport,
    ) -> None:
        # methods annotated "# lint: holds=<lock>" per lock attr, for
        # the REPRO-L003 call-site check
        holds_methods: Dict[str, Set[str]] = {}
        for name, func in cls.methods.items():
            for lock in self._holds_of(cls, func):
                holds_methods.setdefault(name, set()).add(lock)
        for name, func in cls.methods.items():
            if name == "__init__":
                continue
            self._walk(
                model,
                cls,
                func,
                guarded,
                holds_methods,
                held=set(self._holds_of(cls, func)),
                report=report,
            )

    def _walk(
        self,
        model: ProjectModel,
        cls: ClassModel,
        func: ast.FunctionDef,
        guarded: Dict[str, str],
        holds_methods: Dict[str, Set[str]],
        held: Set[str],
        report: AnalysisReport,
    ) -> None:
        sf = cls.sf

        def visit(node: ast.AST, held: Set[str]) -> None:
            if isinstance(node, ast.With):
                inner = held | set(_with_lock_attrs(node))
                for item in node.items:
                    visit(item.context_expr, held)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.FunctionDef) and node is not func:
                # A closure runs at an unknown time: assume no lock is
                # held unless the nested def carries its own holds=.
                nested_held: Set[str] = set()
                markers = sf.markers_at(node.lineno)
                if markers is not None and markers.holds:
                    nested_held = {markers.holds}
                for stmt in node.body:
                    visit(stmt, nested_held)
                return
            if isinstance(node, ast.Attribute):
                attr = self_attr(node)
                if attr is not None:
                    if attr in guarded and guarded[attr] not in held:
                        if not sf.allows(self.name, node, def_node=func):
                            report.findings.append(
                                self.finding(
                                    sf,
                                    node.lineno,
                                    f"{cls.name}.{attr} is guarded by "
                                    f"self.{guarded[attr]} but accessed in "
                                    f"{func.name}() without holding it",
                                )
                            )
                    # fall through: still visit the value expression
            if isinstance(node, ast.Call):
                callee_attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    and self_attr(node.func) is not None
                    else None
                )
                if callee_attr is not None and callee_attr in holds_methods:
                    missing = holds_methods[callee_attr] - held
                    if missing and not sf.allows(
                        self.name, node, def_node=func
                    ):
                        locks = ", ".join(
                            f"self.{lock}" for lock in sorted(missing)
                        )
                        report.findings.append(
                            self.finding(
                                sf,
                                node.lineno,
                                f"{cls.name}.{callee_attr}() requires "
                                f"{locks} held (lint: holds) but is called "
                                f"from {func.name}() without it",
                                rule_id="REPRO-L003",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in func.body:
            visit(stmt, held)
