"""Command line for repro-lint: ``python -m repro.analysis``.

Exit codes::

    0  clean — no findings beyond the baseline
    1  new findings (or stale baseline entries with --strict-baseline)
    2  usage / environment error

Typical invocations::

    python -m repro.analysis                     # gate vs lint_baseline.json
    python -m repro.analysis --json report.json  # also write the JSON report
    python -m repro.analysis --no-baseline        # raw findings, no ratchet
    python -m repro.analysis --write-baseline     # accept current findings
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.engine import run_analysis


def _default_baseline_path() -> Path:
    """``lint_baseline.json`` at the repo root (three up from src/repro)."""
    return Path(__file__).resolve().parents[3] / "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: project-invariant static analysis",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source tree to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--prefix",
        default="",
        help="path prefix for reported file names when --root is given",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <repo>/lint_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when baseline entries no longer match (fixed "
        "findings must be removed from the baseline)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the full JSON report (findings + lock-order graph)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = run_analysis(root=args.root, prefix=args.prefix)
    except (OSError, SyntaxError) as exc:
        print(f"repro-lint: cannot analyze: {exc}", file=sys.stderr)
        return 2
    if report.files_analyzed == 0:
        # an empty tree must never green-light the gate vacuously
        print("repro-lint: no Python files found to analyze", file=sys.stderr)
        return 2

    if args.baseline is not None:
        baseline_path = args.baseline
    else:
        baseline_path = _default_baseline_path()

    if args.json is not None:
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")

    if args.write_baseline:
        before = load_baseline(baseline_path).entries
        save_baseline(baseline_path, report.findings)
        after = Counter(f.fingerprint for f in report.findings)
        added = after - before
        removed = before - after
        print(
            f"repro-lint: wrote {len(report.findings)} finding(s) to "
            f"{baseline_path} (+{sum(added.values())} added, "
            f"-{sum(removed.values())} removed)"
        )
        for rule, file, message in sorted(added.elements()):
            print(f"  + {file}: {rule} {message}")
        for rule, file, message in sorted(removed.elements()):
            print(f"  - {file}: {rule} {message}")
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        baseline = load_baseline(baseline_path)

    fresh = baseline.new_findings(report.findings)
    stale = baseline.stale_entries(report.findings)

    for finding in fresh:
        print(finding.render())
    if args.strict_baseline and stale:
        for rule, file, message in stale:
            print(
                f"{file}: stale baseline entry {rule} ({message}) — "
                f"finding fixed, remove it from {baseline_path.name}"
            )

    graph = report.data.get("lock_graph")
    edges = len(graph["edges"]) if graph else 0
    suppressed = len(report.findings) - len(fresh)
    summary: List[str] = [
        f"{report.files_analyzed} files",
        f"{len(fresh)} new finding(s)",
    ]
    if suppressed:
        summary.append(f"{suppressed} baselined")
    summary.append(f"lock graph: {edges} edge(s)")
    print("repro-lint: " + ", ".join(summary))

    if fresh or (args.strict_baseline and stale):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
