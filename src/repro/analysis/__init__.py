"""repro-lint: project-specific static analysis over the repro source.

Four PRs in, the repo's correctness rests on cross-cutting invariants
that example-based tests cannot enforce exhaustively: lock-guarded
shared state, the rule that every block touched charges
:class:`~repro.storage.iostats.IOStats`, the off-by-default contract
for robustness flags, and the explicit ``parent=`` convention for
spans opened on worker threads.  This package machine-checks them.

It is a self-contained AST analysis framework (stdlib :mod:`ast`, no
new dependencies): :mod:`repro.analysis.model` builds a light semantic
model of the source tree (classes, methods, attribute types, lock
attributes, annotation markers), the rule modules walk it, and
:mod:`repro.analysis.cli` wires everything into a gating command::

    PYTHONPATH=src python -m repro.analysis [--json REPORT] [--baseline FILE]

Rules shipped (see ``docs/static_analysis.md`` for the catalogue):

========== ================== =========================================
id         name               invariant
========== ================== =========================================
REPRO-L001 lock-discipline    ``# guarded-by:`` attributes only touched
                              under their lock
REPRO-L002 lock-order         the static lock-acquisition graph is
                              acyclic (no deadlock potential)
REPRO-L003 lock-discipline    ``# lint: holds=`` methods only called
                              with the lock held
REPRO-I001 io-accounting      device read/write paths charge IOStats or
                              are marked ``# lint: uncounted``
REPRO-F001 flag-hygiene       robustness flags default to disabled
REPRO-T001 thread-entry       thread-entry code opens spans with an
                              explicit ``parent=``
REPRO-P001 rename-durability  every ``os.replace`` publish is followed
                              by a directory fsync on all normal exits
REPRO-P002 journal-commit     ``append_data`` groups always reach
                              ``append_commit``; no nested groups
REPRO-P003 flush-before-      arena flush + sync dominate every sidecar
           persist            ``save_state``
REPRO-P004 ship-before-ack    replication reads frames before acking
REPRO-R001 guard-facts        every ``# guarded-by:`` names a real lock
                              attribute of the class
REPRO-A000 marker-hygiene     every suppression marker carries a
                              parenthesised reason
========== ================== =========================================

P-rules are dataflow checks over a per-function CFG
(:mod:`repro.analysis.cfg`), driven by the declarative specs in
:data:`repro.analysis.protocols.SPECS`; exemptions are per-site
``# lint: protocol-exempt=<rule> (reason)`` markers.

Two runtime complements close the static/dynamic loop:
:mod:`repro.analysis.witness` (an opt-in instrumented-lock wrapper
cross-checking the static lock-order graph against real acquisition
orders) and :mod:`repro.analysis.racesan` (an Eraser-style lockset
sanitizer that consumes the same ``# guarded-by:`` facts L001 checks
statically and reports REPRO-R002 ``lockset-race`` / REPRO-R003
``guard-mismatch`` findings from concurrent tests under
``REPRO_RACESAN=1``).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.engine import AnalysisReport, default_rules, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, build_model
from repro.analysis.protocols import SPECS, ProtocolRule, ProtocolSpec
from repro.analysis.racesan import (
    RaceReport,
    RaceSanitizer,
    guarded_facts,
    watching,
)
from repro.analysis.witness import (
    InstrumentedLock,
    LockWitness,
    check_consistency,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "CFG",
    "Finding",
    "InstrumentedLock",
    "LockWitness",
    "ProjectModel",
    "ProtocolRule",
    "ProtocolSpec",
    "RaceReport",
    "RaceSanitizer",
    "SPECS",
    "build_cfg",
    "build_model",
    "check_consistency",
    "default_rules",
    "guarded_facts",
    "load_baseline",
    "run_analysis",
    "save_baseline",
    "watching",
]
