"""repro-lint: project-specific static analysis over the repro source.

Four PRs in, the repo's correctness rests on cross-cutting invariants
that example-based tests cannot enforce exhaustively: lock-guarded
shared state, the rule that every block touched charges
:class:`~repro.storage.iostats.IOStats`, the off-by-default contract
for robustness flags, and the explicit ``parent=`` convention for
spans opened on worker threads.  This package machine-checks them.

It is a self-contained AST analysis framework (stdlib :mod:`ast`, no
new dependencies): :mod:`repro.analysis.model` builds a light semantic
model of the source tree (classes, methods, attribute types, lock
attributes, annotation markers), the rule modules walk it, and
:mod:`repro.analysis.cli` wires everything into a gating command::

    PYTHONPATH=src python -m repro.analysis [--json REPORT] [--baseline FILE]

Rules shipped (see ``docs/static_analysis.md`` for the catalogue):

========== ================= ==========================================
id         name              invariant
========== ================= ==========================================
REPRO-L001 lock-discipline   ``# guarded-by:`` attributes only touched
                             under their lock
REPRO-L002 lock-order        the static lock-acquisition graph is
                             acyclic (no deadlock potential)
REPRO-L003 lock-discipline   ``# lint: holds=`` methods only called
                             with the lock held
REPRO-I001 io-accounting     device read/write paths charge IOStats or
                             are marked ``# lint: uncounted``
REPRO-F001 flag-hygiene      robustness flags default to disabled
REPRO-T001 thread-entry      thread-entry code opens spans with an
                             explicit ``parent=``
========== ================= ==========================================

The runtime complement lives in :mod:`repro.analysis.witness`: an
opt-in instrumented-lock wrapper that records actual acquisition
orders during concurrent tests so the static graph can be
cross-checked against reality.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.engine import AnalysisReport, default_rules, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, build_model
from repro.analysis.witness import (
    InstrumentedLock,
    LockWitness,
    check_consistency,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "InstrumentedLock",
    "LockWitness",
    "ProjectModel",
    "build_model",
    "check_consistency",
    "default_rules",
    "load_baseline",
    "run_analysis",
    "save_baseline",
]
