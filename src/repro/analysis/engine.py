"""Rule registry and the analysis entry point.

A rule is an object with a stable ``rule_id``, a human ``name`` (the
token used in ``# lint: allow=`` comments) and a
``check(model, report)`` method appending :class:`Finding`\\ s.  Rules
may also deposit structured side data into the
:class:`AnalysisReport` (the lock-order rule stores its acquisition
graph there, so CI can archive it alongside the findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel, build_model
from repro.analysis.source import SourceFile, load_source_tree


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: rule-specific structured side data (e.g. ``lock_graph``)
    data: Dict[str, Any] = field(default_factory=dict)
    files_analyzed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files_analyzed": self.files_analyzed,
            "findings": [finding.to_dict() for finding in self.findings],
            **self.data,
        }


class Rule:
    """Base class so rules share the finding constructor."""

    rule_id = "REPRO-X000"
    name = "unnamed"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        raise NotImplementedError

    def finding(
        self,
        sf: SourceFile,
        line: int,
        message: str,
        rule_id: Optional[str] = None,
        **extra: Any,
    ) -> Finding:
        return Finding(
            file=sf.relpath,
            line=line,
            rule=rule_id if rule_id is not None else self.rule_id,
            name=self.name,
            message=message,
            extra=tuple(sorted(extra.items())),
        )


def default_rules() -> List[Rule]:
    """The shipped rule set (imported lazily to avoid cycles)."""
    from repro.analysis.flag_hygiene import FlagHygieneRule
    from repro.analysis.io_accounting import IOAccountingRule
    from repro.analysis.lock_discipline import LockDisciplineRule
    from repro.analysis.lock_order import LockOrderRule
    from repro.analysis.protocols import ProtocolRule
    from repro.analysis.racesan import GuardFactsRule
    from repro.analysis.thread_entry import ThreadEntryRule

    return [
        LockDisciplineRule(),
        LockOrderRule(),
        IOAccountingRule(),
        FlagHygieneRule(),
        ThreadEntryRule(),
        ProtocolRule(),
        GuardFactsRule(),
    ]


def _check_marker_hygiene(
    files: Sequence[SourceFile], report: AnalysisReport
) -> None:
    """An ``allow``/``uncounted`` marker without a reason is a finding.

    Suppressions are the analyzer's audit trail; one with no recorded
    why defeats the point, so the engine enforces the reason itself
    (rule REPRO-A000) regardless of which rule set runs.
    """
    for sf in files:
        for line, markers in sorted(sf.markers.items()):
            if markers.unreasoned_allow:
                rules = ",".join(sorted(markers.unreasoned_rules)) or "?"
                report.findings.append(
                    Finding(
                        file=sf.relpath,
                        line=line,
                        rule="REPRO-A000",
                        name="marker-hygiene",
                        message=(
                            f"suppression of '{rules}' without a "
                            f"parenthesised reason — write "
                            f"'# lint: allow=<rule> (why)'"
                        ),
                    )
                )


def run_analysis(
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    files: Optional[Sequence[SourceFile]] = None,
    prefix: str = "",
) -> AnalysisReport:
    """Run ``rules`` over the tree at ``root`` (or pre-parsed files).

    ``root`` defaults to the installed ``repro`` package source, with
    findings reported as ``src/repro/...`` paths.
    """
    if files is None:
        if root is None:
            package_root = Path(__file__).resolve().parents[1]
            root, prefix = package_root, "src/repro"
        files = load_source_tree(Path(root), prefix=prefix)
    model = build_model(files)
    report = AnalysisReport(files_analyzed=len(files))
    for rule in rules if rules is not None else default_rules():
        rule.check(model, report)
    _check_marker_hygiene(files, report)
    report.findings.sort()
    return report
