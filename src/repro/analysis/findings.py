"""Findings: what a rule reports, and how findings are compared.

A :class:`Finding` pins one invariant violation to a file and line.
Findings are compared against the checked-in baseline by *fingerprint*
— ``(rule, file, message)``, deliberately excluding the line number so
unrelated edits above a grandfathered finding do not churn the
baseline.  The line is still reported for humans and CI annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``rule`` is the stable rule id (``REPRO-L001``...), ``name`` the
    human rule name used in suppression comments
    (``lock-discipline``...).  ``extra`` carries rule-specific context
    (e.g. the lock-order cycle path) into the JSON report; it does not
    participate in ordering or fingerprints.
    """

    file: str
    line: int
    rule: str
    name: str = field(compare=False)
    message: str = field(compare=False)
    extra: Tuple[Tuple[str, Any], ...] = field(
        compare=False, default=(), repr=False
    )

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line movement."""
        return (self.rule, self.file, self.message)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        """``file:line: RULE-ID message`` — the CLI output line."""
        return f"{self.file}:{self.line}: {self.rule} {self.message}"
