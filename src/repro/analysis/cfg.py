"""Per-function control-flow graphs for the protocol-ordering rules.

The lock rules reason lexically (what is textually inside a ``with``
block); protocol rules (REPRO-P00x) need *paths*: "does every path
from this ``os.replace`` reach a directory fsync before the function
returns normally?".  This module lowers one ``ast.FunctionDef`` into a
statement-granularity CFG with three virtual nodes — ``ENTRY``,
``EXIT_NORMAL`` (the function returned or fell off the end) and
``EXIT_RAISE`` (an exception escaped) — and answers reachability
queries over it.

Lowering notes, in decreasing order of subtlety:

* ``try/finally`` is lowered by **cloning** the ``finally`` body once
  per exit category (normal fallthrough, ``return``, ``raise``,
  ``break``, ``continue``).  Sharing one copy would merge the paths
  and invent a route where a ``return`` threads through ``finally``
  and then *continues* to the statement after the ``try`` — exactly
  the false path that would let a missing commit hide behind a
  cleanup block.
* Every statement inside a ``try`` body may raise, so each gets an
  edge to every handler entry; explicit ``raise`` statements both
  enter the handlers (they may match) and propagate outward.
* ``while``/``for`` carry their ``else`` blocks (entered only on
  normal loop exit; ``break`` jumps past them).  ``while True`` is
  special-cased: no exit edge until a ``break``/``return``.
* Calls are attributed to the statement that evaluates them.
  Nested ``def``/``lambda``/``class`` bodies are *not* traversed —
  defining a closure executes no calls inside it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["CFG", "Node", "build_cfg", "calls_in"]

_SKIP_INNER = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def calls_in(node: Optional[ast.AST]) -> List[ast.Call]:
    """Calls evaluated by ``node``, skipping nested function bodies."""
    if node is None:
        return []
    out: List[ast.Call] = []
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if cur is not node and isinstance(cur, _SKIP_INNER):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


@dataclass
class Node:
    """One CFG node: a statement (or header expression) and its calls."""

    index: int
    stmt: Optional[ast.stmt]
    calls: List[ast.Call] = field(default_factory=list)
    label: str = ""

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """A built graph.  ``succ[i]`` is the successor set of node ``i``."""

    nodes: List[Node]
    succ: Dict[int, Set[int]]
    entry: int
    exit_normal: int
    exit_raise: int

    def node_of_call(self, call: ast.Call) -> List[int]:
        """Node indices evaluating ``call`` (several if finally-cloned)."""
        return [n.index for n in self.nodes if call in n.calls]

    def reach(
        self,
        starts: Iterable[int],
        blocked: Callable[[int], bool],
        targets: Set[int],
    ) -> Optional[int]:
        """First target reachable from ``starts`` without entering a
        blocked node.  Start nodes themselves are tested; a blocked
        node is neither matched nor expanded."""
        seen: Set[int] = set()
        frontier: List[int] = list(starts)
        while frontier:
            cur = frontier.pop()
            if cur in seen or blocked(cur):
                continue
            seen.add(cur)
            if cur in targets:
                return cur
            frontier.extend(self.succ.get(cur, ()))
        return None


@dataclass
class _Flow:
    """Loose ends produced by lowering a block."""

    normal: Set[int] = field(default_factory=set)
    returns: Set[int] = field(default_factory=set)
    raises: Set[int] = field(default_factory=set)
    breaks: Set[int] = field(default_factory=set)
    continues: Set[int] = field(default_factory=set)

    def absorb(self, other: "_Flow") -> None:
        """Merge every category except ``normal`` (callers wire that)."""
        self.returns |= other.returns
        self.raises |= other.raises
        self.breaks |= other.breaks
        self.continues |= other.continues


class _Builder:
    def __init__(self, func: ast.FunctionDef) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.succ: Dict[int, Set[int]] = {}

    # -- plumbing ------------------------------------------------------

    def _new(
        self,
        stmt: Optional[ast.stmt],
        calls: Optional[Sequence[ast.AST]] = None,
        label: str = "",
    ) -> int:
        found: List[ast.Call] = []
        for part in calls if calls is not None else ([stmt] if stmt else []):
            found.extend(calls_in(part))
        node = Node(len(self.nodes), stmt, found, label)
        self.nodes.append(node)
        self.succ[node.index] = set()
        return node.index

    def _edge(self, srcs: Iterable[int], dst: int) -> None:
        for src in srcs:
            self.succ[src].add(dst)

    # -- lowering ------------------------------------------------------

    def build(self) -> CFG:
        entry = self._new(None, [], "ENTRY")
        exit_normal = self._new(None, [], "EXIT_NORMAL")
        exit_raise = self._new(None, [], "EXIT_RAISE")
        flow = self._block(self.func.body, {entry})
        self._edge(flow.normal | flow.returns, exit_normal)
        self._edge(flow.raises, exit_raise)
        # break/continue outside a loop is a syntax error; drop them.
        return CFG(self.nodes, self.succ, entry, exit_normal, exit_raise)

    def _block(self, stmts: Sequence[ast.stmt], preds: Set[int]) -> _Flow:
        flow = _Flow(normal=set(preds))
        for stmt in stmts:
            if not flow.normal:
                break  # unreachable tail
            inner = self._stmt(stmt, flow.normal)
            flow.normal = inner.normal
            flow.absorb(inner)
        return flow

    def _stmt(self, stmt: ast.stmt, preds: Set[int]) -> _Flow:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, ast.While):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Return):
            node = self._new(stmt)
            self._edge(preds, node)
            return _Flow(returns={node})
        if isinstance(stmt, ast.Raise):
            node = self._new(stmt)
            self._edge(preds, node)
            return _Flow(raises={node})
        if isinstance(stmt, ast.Assert):
            node = self._new(stmt)
            self._edge(preds, node)
            return _Flow(normal={node}, raises={node})
        if isinstance(stmt, ast.Break):
            node = self._new(stmt)
            self._edge(preds, node)
            return _Flow(breaks={node})
        if isinstance(stmt, ast.Continue):
            node = self._new(stmt)
            self._edge(preds, node)
            return _Flow(continues={node})
        if isinstance(stmt, _SKIP_INNER):
            # defining a function/class runs decorators and defaults only
            parts: List[ast.AST] = list(
                getattr(stmt, "decorator_list", [])
            )
            args = getattr(stmt, "args", None)
            if args is not None:
                parts.extend(d for d in args.defaults if d is not None)
                parts.extend(d for d in args.kw_defaults if d is not None)
            node = self._new(stmt, parts)
            self._edge(preds, node)
            return _Flow(normal={node})
        node = self._new(stmt)
        self._edge(preds, node)
        return _Flow(normal={node})

    def _if(self, stmt: ast.If, preds: Set[int]) -> _Flow:
        cond = self._new(stmt, [stmt.test], "if")
        self._edge(preds, cond)
        body = self._block(stmt.body, {cond})
        flow = _Flow(normal=set(body.normal))
        flow.absorb(body)
        if stmt.orelse:
            orelse = self._block(stmt.orelse, {cond})
            flow.normal |= orelse.normal
            flow.absorb(orelse)
        else:
            flow.normal.add(cond)
        return flow

    @staticmethod
    def _always_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value) is True

    def _while(self, stmt: ast.While, preds: Set[int]) -> _Flow:
        test = self._new(stmt, [stmt.test], "while")
        self._edge(preds, test)
        body = self._block(stmt.body, {test})
        self._edge(body.normal | body.continues, test)
        flow = _Flow()
        flow.returns |= body.returns
        flow.raises |= body.raises
        exits: Set[int] = set() if self._always_true(stmt.test) else {test}
        if stmt.orelse:
            orelse = self._block(stmt.orelse, exits)
            flow.normal |= orelse.normal
            flow.absorb(orelse)
        else:
            flow.normal |= exits
        flow.normal |= body.breaks
        return flow

    def _for(self, stmt: "ast.For | ast.AsyncFor", preds: Set[int]) -> _Flow:
        head = self._new(stmt, [stmt.iter, stmt.target], "for")
        self._edge(preds, head)
        body = self._block(stmt.body, {head})
        self._edge(body.normal | body.continues, head)
        flow = _Flow()
        flow.returns |= body.returns
        flow.raises |= body.raises
        if stmt.orelse:
            orelse = self._block(stmt.orelse, {head})
            flow.normal |= orelse.normal
            flow.absorb(orelse)
        else:
            flow.normal.add(head)
        flow.normal |= body.breaks
        return flow

    def _with(
        self, stmt: "ast.With | ast.AsyncWith", preds: Set[int]
    ) -> _Flow:
        parts: List[ast.AST] = []
        for item in stmt.items:
            parts.append(item.context_expr)
        head = self._new(stmt, parts, "with")
        self._edge(preds, head)
        body = self._block(stmt.body, {head})
        flow = _Flow(normal=set(body.normal))
        flow.absorb(body)
        return flow

    def _try(self, stmt: ast.Try, preds: Set[int]) -> _Flow:
        first_body_node = len(self.nodes)
        body = self._block(stmt.body, preds)
        body_nodes = set(range(first_body_node, len(self.nodes)))

        inner = _Flow(normal=set(body.normal))
        inner.returns |= body.returns
        inner.breaks |= body.breaks
        inner.continues |= body.continues

        if stmt.handlers:
            handler_raises: Set[int] = set()
            for handler in stmt.handlers:
                entry = self._new(
                    _as_stmt(handler),
                    [handler.type] if handler.type is not None else [],
                    "except",
                )
                # any statement in the try body may raise into a handler;
                # an explicit raise may match a handler *or* propagate.
                self._edge(body_nodes, entry)
                self._edge(preds, entry)  # the body's first stmt may raise
                hflow = self._block(handler.body, {entry})
                inner.normal |= hflow.normal
                inner.returns |= hflow.returns
                handler_raises |= hflow.raises
                inner.breaks |= hflow.breaks
                inner.continues |= hflow.continues
            inner.raises = body.raises | handler_raises
        else:
            inner.raises = body.raises | body_nodes

        if stmt.orelse and inner.normal:
            # else runs only when the body completed without exception
            orelse = self._block(stmt.orelse, set(body.normal))
            inner.normal = (inner.normal - body.normal) | orelse.normal
            inner.returns |= orelse.returns
            inner.raises |= orelse.raises
            inner.breaks |= orelse.breaks
            inner.continues |= orelse.continues

        if not stmt.finalbody:
            return inner

        # Clone the finally body once per exit category so a return
        # cannot "fall through" the cleanup into the following code.
        out = _Flow()
        routed = [
            ("normal", inner.normal),
            ("returns", inner.returns),
            ("raises", inner.raises),
            ("breaks", inner.breaks),
            ("continues", inner.continues),
        ]
        for category, sources in routed:
            if not sources:
                continue
            fin = self._block(stmt.finalbody, sources)
            getattr(out, category).update(fin.normal)
            # the finally body's own aborts win over the pending action
            out.returns |= fin.returns
            out.raises |= fin.raises
            out.breaks |= fin.breaks
            out.continues |= fin.continues
        return out


def _as_stmt(handler: ast.ExceptHandler) -> ast.stmt:
    """Wrap a handler header so the node carries its line number."""
    marker = ast.Pass()
    marker.lineno = handler.lineno
    marker.col_offset = handler.col_offset
    return marker


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Lower ``func`` into a :class:`CFG`."""
    return _Builder(func).build()
