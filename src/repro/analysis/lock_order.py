"""REPRO-L002: the static lock-acquisition graph must be acyclic.

Deadlock needs a cycle: thread 1 holds A wanting B while thread 2
holds B wanting A.  This rule builds the *static* lock-order graph —
an edge A -> B wherever code can acquire B while holding A — and fails
on any cycle, emitting the full graph (nodes, edges, acquisition
sites) into the JSON report so CI archives the proof.

Edges come from three sources:

* lexical nesting of ``with self._lock:`` blocks within a function;
* calls made while a lock is held, resolved through the project model
  (self-calls, ``super()``, constructor-typed attributes, annotated
  parameters) to the transitive set of locks the callee may acquire;
* the tracer's entry points, treated as known acquirers: a ``span``
  context may append to the :class:`~repro.obs.tracer.TraceStore`
  ring buffer on exit (its lock), and a mirrored ``charge`` may take
  the orphan-bucket lock — chasing those through the tracer's
  indirection would gain nothing, so the rule encodes them;
* ``# may-acquire: Class.attr`` markers, for call sites whose dispatch
  is dynamic (``getattr`` probing, injected callables).  The runtime
  witness (:mod:`repro.analysis.witness`) is the completeness check on
  those markers: an order observed live but absent from the static
  graph fails the witness consistency test.

Lock identity is the *attribute that holds the lock* —
``ShardedBufferPool._locks`` is one node covering all shard locks.
One runtime lock object reachable under two static names (the sharded
pool's I/O lock is also the synchronized device's ``_lock``) becomes
two nodes; the witness maps observed objects back to static names
through its alias sets.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import AnalysisReport, Rule
from repro.analysis.model import (
    CHARGE_LOCKS,
    LOCK_TYPE,
    Callee,
    CallResolver,
    ProjectModel,
    SPAN_LOCKS,
    self_attr,
)
from repro.analysis.source import SourceFile

#: edge -> list of "file:line description" acquisition sites
EdgeMap = Dict[Tuple[str, str], List[str]]


class _FunctionUnit:
    """One analyzable body: a method, module function, or closure."""

    def __init__(
        self,
        func: ast.FunctionDef,
        sf: SourceFile,
        receiver: Optional[str],
        owner: Optional[str],
        label: str,
    ) -> None:
        self.func = func
        self.sf = sf
        self.receiver = receiver
        self.owner = owner
        self.label = label
        self.resolver: CallResolver = None  # type: ignore[assignment]


class LockOrderRule(Rule):
    rule_id = "REPRO-L002"
    name = "lock-order"

    def check(self, model: ProjectModel, report: AnalysisReport) -> None:
        self._model = model
        self._acquires_memo: Dict[Tuple[Optional[str], int], Set[str]] = {}
        self._in_progress: Set[Tuple[Optional[str], int]] = set()
        edges: EdgeMap = {}
        nodes: Set[str] = set()
        for unit in self._units(model):
            self._walk_unit(unit, edges, nodes)
        graph = {
            "nodes": sorted(nodes),
            "edges": [
                {"from": a, "to": b, "sites": sorted(set(sites))}
                for (a, b), sites in sorted(edges.items())
            ],
        }
        report.data["lock_graph"] = graph
        for cycle in _find_cycles(nodes, set(edges)):
            sites: List[str] = []
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                sites.extend(edges.get((a, b), []))
            sf, line = self._cycle_site(sites)
            path = " -> ".join(cycle + cycle[:1])
            report.findings.append(
                self.finding(
                    sf if sf is not None else self._model.files[0],
                    line,
                    f"lock-order cycle (deadlock potential): {path}",
                    cycle=tuple(cycle),
                    sites=tuple(sites),
                )
            )

    # ------------------------------------------------------------------

    def _units(self, model: ProjectModel) -> List[_FunctionUnit]:
        units: List[_FunctionUnit] = []

        def add(
            func: ast.FunctionDef,
            sf: SourceFile,
            receiver: Optional[str],
            owner: Optional[str],
            label: str,
        ) -> None:
            unit = _FunctionUnit(func, sf, receiver, owner, label)
            unit.resolver = CallResolver(model, sf, func, receiver, owner)
            units.append(unit)
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.FunctionDef) and stmt is not func:
                    closure = _FunctionUnit(
                        stmt, sf, receiver, owner, f"{label}.{stmt.name}"
                    )
                    closure.resolver = CallResolver(
                        model, sf, stmt, receiver, owner
                    )
                    units.append(closure)

        for cls in model.classes.values():
            for name, func in cls.methods.items():
                add(func, cls.sf, cls.name, cls.name, f"{cls.name}.{name}")
        for (module, name), (func, sf) in model.module_functions.items():
            add(func, sf, None, None, f"{module.rsplit('.', 1)[-1]}.{name}")
        return units

    def _lock_node(
        self, expr: ast.AST, unit: _FunctionUnit
    ) -> Optional[str]:
        """The lock node acquired by a ``with`` item, if it is a lock."""
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        attr = self_attr(expr)
        if attr is not None and unit.receiver is not None:
            if self._model.class_lock_attr(unit.receiver, attr) is not None:
                return f"{unit.receiver}.{attr}"
            return None
        if isinstance(expr, ast.Name):
            typed = unit.resolver.locals.get(expr.id)
            if typed is not None and typed[0] == LOCK_TYPE:
                provenance = self._zip_lock_attr(expr.id, unit)
                if provenance is not None:
                    return provenance
                return f"{unit.label}.{expr.id}"
        return None

    def _zip_lock_attr(
        self, var: str, unit: _FunctionUnit
    ) -> Optional[str]:
        """Map a loop variable bound from ``zip(..., self._locks)`` back
        to its attribute node name."""
        if unit.receiver is None:
            return None
        for stmt in ast.walk(unit.func):
            if not isinstance(stmt, ast.For):
                continue
            iterable = stmt.iter
            pairs: Iterable[Tuple[ast.expr, ast.expr]]
            if (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "zip"
                and isinstance(stmt.target, ast.Tuple)
                and len(stmt.target.elts) == len(iterable.args)
            ):
                pairs = zip(stmt.target.elts, iterable.args)
            else:
                pairs = [(stmt.target, iterable)]
            for tgt, src in pairs:
                if not (isinstance(tgt, ast.Name) and tgt.id == var):
                    continue
                attr = self_attr(src)
                if attr is not None and self._model.class_lock_attr(
                    unit.receiver, attr
                ):
                    return f"{unit.receiver}.{attr}"
        return None

    # ------------------------------------------------------------------
    # transitive may-acquire sets
    # ------------------------------------------------------------------

    def _acquires_of_callee(self, callee: Callee) -> Set[str]:
        if callee.kind == "span":
            return set(SPAN_LOCKS)
        if callee.kind == "charge":
            return set(CHARGE_LOCKS)
        if callee.node is None or callee.sf is None:
            return set()
        receiver = callee.receiver
        owner = None
        if callee.kind == "method" and "." in callee.name:
            owner = callee.name.split(".", 1)[0]
        return self._acquires(callee.node, callee.sf, receiver, owner)

    def _acquires(
        self,
        func: ast.FunctionDef,
        sf: SourceFile,
        receiver: Optional[str],
        owner: Optional[str],
    ) -> Set[str]:
        """Transitive set of lock nodes ``func`` may acquire."""
        key = (receiver, id(func))
        memo = self._acquires_memo.get(key)
        if memo is not None:
            return memo
        if key in self._in_progress:
            return set()
        self._in_progress.add(key)
        unit = _FunctionUnit(func, sf, receiver, owner, func.name)
        unit.resolver = CallResolver(self._model, sf, func, receiver, owner)
        acquired: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    lock = self._lock_node(item.context_expr, unit)
                    if lock is not None:
                        acquired.add(lock)
            if isinstance(node, ast.Call):
                for callee in unit.resolver.resolve(node):
                    acquired |= self._acquires_of_callee(callee)
            acquired.update(sf.may_acquire_at(node) if isinstance(
                node, (ast.Expr, ast.With, ast.Call)
            ) else ())
        self._in_progress.discard(key)
        self._acquires_memo[key] = acquired
        return acquired

    # ------------------------------------------------------------------
    # edge generation
    # ------------------------------------------------------------------

    def _walk_unit(
        self, unit: _FunctionUnit, edges: EdgeMap, nodes: Set[str]
    ) -> None:
        sf = unit.sf
        markers = sf.markers_at(unit.func.lineno)
        held: List[str] = []
        if markers is not None and markers.holds and unit.receiver:
            held.append(f"{unit.receiver}.{markers.holds}")
        nodes.update(held)

        def site(node: ast.AST, what: str) -> str:
            return f"{sf.relpath}:{node.lineno} {unit.label}: {what}"

        def record(target: str, node: ast.AST, what: str) -> None:
            nodes.add(target)
            for holder in held:
                if holder != target:
                    edges.setdefault((holder, target), []).append(
                        site(node, what)
                    )
                else:
                    # same-node re-acquisition: a self-deadlock on a
                    # non-reentrant lock — report as a 1-cycle
                    edges.setdefault((holder, target), []).append(
                        site(node, what)
                    )

        def handle_call(node: ast.Call) -> None:
            if not held:
                return
            for callee in unit.resolver.resolve(node):
                for target in sorted(self._acquires_of_callee(callee)):
                    record(target, node, f"call {callee.name}()")

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.FunctionDef) and node is not unit.func:
                return  # closures are separate units
            if isinstance(node, ast.With):
                acquired: List[str] = []
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Call):
                            handle_call(sub)
                    lock = self._lock_node(item.context_expr, unit)
                    if lock is not None:
                        acquired.append(lock)
                for name in sf.may_acquire_at(node):
                    record(name, node, "may-acquire annotation")
                for lock in acquired:
                    record(lock, node, f"with {lock}")
                    nodes.add(lock)
                    held.append(lock)
                for stmt in node.body:
                    visit(stmt)
                for lock in acquired:
                    held.remove(lock)
                return
            if isinstance(node, ast.Call):
                handle_call(node)
                if held:
                    for name in sf.may_acquire_at(node):
                        record(name, node, "may-acquire annotation")
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in unit.func.body:
            visit(stmt)

    def _cycle_site(
        self, sites: Sequence[str]
    ) -> Tuple[Optional[SourceFile], int]:
        """Best-effort location for a cycle finding: its first site."""
        for entry in sites:
            path, __, rest = entry.partition(":")
            line_text = rest.split(" ", 1)[0]
            for sf in self._model.files:
                if sf.relpath == path:
                    try:
                        return sf, int(line_text)
                    except ValueError:
                        return sf, 1
        return None, 1


def _find_cycles(
    nodes: Set[str], edges: Set[Tuple[str, str]]
) -> List[List[str]]:
    """Strongly connected components with >1 node, plus self-loops."""
    graph: Dict[str, List[str]] = {node: [] for node in nodes}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph[v]:
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component: List[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1:
                cycles.append(sorted(component))
            elif (v, v) in edges:
                cycles.append([v])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return cycles
