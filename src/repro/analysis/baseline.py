"""Finding baselines: ratchet new findings to zero without big-bang fixes.

A baseline is the checked-in set of *accepted* findings.  The CI gate
fails on any finding not in the baseline — so the baseline can only
shrink, never silently grow.  Fingerprints are ``(rule, file,
message)`` — deliberately line-number free so reformatting and
unrelated edits don't churn the file.

This repo's shipped baseline (``lint_baseline.json``) is **empty**:
every true positive found when the analyzer landed was fixed, and
every reviewed exception is an in-code ``# lint: allow=`` with a
reason, not a baseline entry.  The file exists so the ratchet
machinery is exercised and future refactors have an escape hatch that
leaves an auditable trail.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Counter as CounterT, List, Sequence, Tuple

from repro.analysis.findings import Finding

Fingerprint = Tuple[str, str, str]


@dataclass
class Baseline:
    """Accepted finding fingerprints (a multiset: duplicates count)."""

    entries: CounterT[Fingerprint] = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.entries.values())

    def new_findings(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by the baseline, oldest-accepted first."""
        budget = Counter(self.entries)
        fresh: List[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint
            if budget[fingerprint] > 0:
                budget[fingerprint] -= 1
            else:
                fresh.append(finding)
        return fresh

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> List[Fingerprint]:
        """Baseline entries no current finding matches (fixed: remove)."""
        current = Counter(f.fingerprint for f in findings)
        stale: List[Fingerprint] = []
        for fingerprint, count in sorted(self.entries.items()):
            excess = count - current[fingerprint]
            stale.extend([fingerprint] * max(0, excess))
        return stale


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text())
    entries: CounterT[Fingerprint] = Counter()
    for entry in payload.get("findings", []):
        entries[(entry["rule"], entry["file"], entry["message"])] += 1
    return Baseline(entries=entries)


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    payload = {
        "version": 1,
        "findings": [
            {"rule": rule, "file": file, "message": message}
            for rule, file, message in sorted(
                finding.fingerprint for finding in findings
            )
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
