"""Multidimensional stream synopses (paper, Section 5.3, Results 4-5).

The stream is a ``d``-dimensional array growing along one dimension
(time).  The paper shows what extra state a best K-term synopsis needs
under each decomposition form:

Standard form (Result 4)
    Every fixed-axis 1-d tree stays fully "open" — a new slab touches
    all of them — so beyond the K terms the maintainer must keep
    ``N^{d-1} * log T`` coefficients: one time-axis crest *per
    fixed-axis basis combination*.  Feasible only for small fixed
    domains, which is exactly the paper's point.

Non-standard hybrid form (Result 5)
    The stream is treated as a sequence of ``N^d`` hypercubes along
    time; each cube is decomposed with the non-standard form (its
    details finalise as soon as their support fills) and the cube
    averages form a 1-d time series transformed incrementally.  Extra
    state: the ``M^d`` in-memory chunk, the cube's SPLIT crest of
    ``(2^d - 1) log(N/M)`` coefficients, and the ``log(T/N)`` time
    crest.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.nonstandard_ops import split_contributions_nonstandard
from repro.core.shiftsplit1d import shift_target_indices, split_weights
from repro.streams.topk import TopKTracker
from repro.util.bits import ilog2
from repro.util.morton import zorder_chunks
from repro.wavelet.haar1d import detail_basis_norm, scaling_basis_norm
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.layout import (
    SCALING_INDEX,
    index_to_detail,
    support_of_index,
)
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_basis_norm, standard_dwt

__all__ = ["StandardStreamSynopsis", "NonStandardStreamSynopsis"]


class StandardStreamSynopsis:
    """Result 4: K-term standard-form synopsis of a growing cube.

    Parameters
    ----------
    fixed_shape:
        Extents of the non-growing dimensions (powers of two).
    time_domain:
        Maximum time extent ``T = 2^p``.
    k:
        Synopsis size.
    time_buffer:
        Slabs buffered before a SHIFT-SPLIT flush (the ``M`` of the
        space bound); must divide ``time_domain``.
    """

    def __init__(
        self,
        fixed_shape: Tuple[int, ...],
        time_domain: int,
        k: int,
        time_buffer: int = 1,
    ) -> None:
        from repro.util.validation import require_power_of_two_shape

        self._fixed_shape = require_power_of_two_shape(
            fixed_shape, "fixed_shape"
        )
        self._p = ilog2(time_domain)
        self._mb = ilog2(time_buffer)
        if self._mb > self._p:
            raise ValueError("time_buffer exceeds time_domain")
        self._time_domain = time_domain
        self._time_buffer = time_buffer
        self._slabs: list = []
        self._slabs_seen = 0
        # One time-axis crest accumulator array per time flat index;
        # each array spans every fixed-axis combination.
        self._crest: Dict[int, np.ndarray] = {}
        self.topk = TopKTracker(k)
        self.crest_updates = 0
        self.finalized = 0
        self.max_live_coefficients = 0

    @property
    def slabs_seen(self) -> int:
        return self._slabs_seen

    def live_coefficients(self) -> int:
        """Working-memory coefficients beyond the retained K."""
        fixed_cells = int(np.prod(self._fixed_shape))
        return (
            len(self._slabs) * fixed_cells
            + len(self._crest) * fixed_cells
        )

    def push_slab(self, slab) -> None:
        """Consume one time slice of shape ``fixed_shape``."""
        slab = np.asarray(slab, dtype=np.float64)
        if slab.shape != self._fixed_shape:
            raise ValueError(
                f"slab must have shape {self._fixed_shape}, got {slab.shape}"
            )
        if self._slabs_seen + len(self._slabs) >= self._time_domain:
            raise ValueError("time domain exhausted")
        self._slabs.append(slab)
        self._note_memory()
        if len(self._slabs) == self._time_buffer:
            self._flush_block()

    def _note_memory(self) -> None:
        self.max_live_coefficients = max(
            self.max_live_coefficients, self.live_coefficients()
        )

    def _offer_combo_array(self, time_index: int, values: np.ndarray) -> None:
        """Offer every fixed-axis combination of one finalised time
        index to the top-K tracker."""
        if time_index == SCALING_INDEX:
            time_norm = scaling_basis_norm(self._p)
        else:
            level, __ = index_to_detail(self._p, time_index)
            time_norm = detail_basis_norm(level)
        for combo in np.ndindex(*self._fixed_shape):
            norm = time_norm * standard_basis_norm(self._fixed_shape, combo)
            self.topk.offer(combo + (time_index,), float(values[combo]), norm)
            self.finalized += 1

    def _flush_block(self) -> None:
        block_index = self._slabs_seen // self._time_buffer
        block = np.stack(self._slabs, axis=-1)  # fixed axes + time last
        self._slabs = []
        # Fully transform the fixed axes and the buffered time extent:
        # the block's own standard DWT is exactly that.
        hat = standard_dwt(block)

        # SHIFT: time-detail components are final now.
        if self._time_buffer > 1:
            targets = shift_target_indices(
                self._time_domain, self._time_buffer, block_index
            )
            for local in range(1, self._time_buffer):
                self._offer_combo_array(
                    int(targets[local]), hat[..., local]
                )

        # SPLIT: the time-average component climbs every combo's crest.
        indices, weights = split_weights(
            self._time_domain, self._time_buffer, block_index
        )
        averages = hat[..., 0]
        fixed_cells = int(np.prod(self._fixed_shape))
        for index, weight in zip(indices, weights):
            accumulator = self._crest.get(int(index))
            if accumulator is None:
                accumulator = np.zeros(self._fixed_shape, dtype=np.float64)
                self._crest[int(index)] = accumulator
            accumulator += averages * weight
            self.crest_updates += fixed_cells

        self._slabs_seen += self._time_buffer
        self._finalize_completed()
        self._note_memory()

    def _finalize_completed(self) -> None:
        completed = [
            index
            for index in self._crest
            if index != SCALING_INDEX
            and support_of_index(self._p, index)[1] <= self._slabs_seen
        ]
        for index in completed:
            self._offer_combo_array(index, self._crest.pop(index))
        if self._slabs_seen == self._time_domain and SCALING_INDEX in self._crest:
            self._offer_combo_array(
                SCALING_INDEX, self._crest.pop(SCALING_INDEX)
            )

    def synopsis(self) -> Dict[Tuple[int, ...], float]:
        """Retained coefficients keyed by full standard position
        (fixed-axis indices + time flat index last)."""
        return self.topk.items()

    def estimate(self) -> np.ndarray:
        """Reconstruction of the full domain from the retained terms."""
        from repro.wavelet.standard import standard_idwt

        shape = self._fixed_shape + (self._time_domain,)
        coeffs = np.zeros(shape, dtype=np.float64)
        for key, value in self.topk.items().items():
            coeffs[key] = value
        return standard_idwt(coeffs)


class NonStandardStreamSynopsis:
    """Result 5: K-term hybrid non-standard synopsis of a growing cube.

    The growing dataset is consumed as cubic chunks of edge ``M`` in
    z-order within each ``N^d`` hypercube slab of the time axis.
    """

    def __init__(
        self,
        edge: int,
        ndim: int,
        time_domain: int,
        k: int,
        chunk_edge: int,
    ) -> None:
        self._edge = edge
        self._ndim = ndim
        self._n = ilog2(edge)
        self._m = ilog2(chunk_edge)
        if self._m > self._n:
            raise ValueError("chunk_edge exceeds cube edge")
        if time_domain % edge:
            raise ValueError("time_domain must be a multiple of edge")
        self._chunk_edge = chunk_edge
        self._num_cubes = time_domain // edge
        ilog2(self._num_cubes)  # must be a power of two
        self._time_domain = time_domain
        self.topk = TopKTracker(k)
        # Per-cube SPLIT crest: node -> accumulators + countdown.
        self._cube_crest: Dict[Tuple[int, Tuple[int, ...]], list] = {}
        self._cube_average = 0.0
        self._cube_index = 0
        self._chunks_in_cube = 0
        self._chunk_iter = None
        # 1-d synopsis machinery over the cube averages.
        self._time_crest: Dict[int, float] = {}
        self._averages_seen = 0
        self.crest_updates = 0
        self.finalized = 0
        self.max_live_coefficients = 0

    @property
    def chunks_per_cube(self) -> int:
        return (self._edge // self._chunk_edge) ** self._ndim

    def expected_chunk_order(self):
        """The z-order chunk positions each cube must arrive in."""
        side = self._edge // self._chunk_edge
        return zorder_chunks((side,) * self._ndim)

    def live_coefficients(self) -> int:
        branching = (1 << self._ndim) - 1
        return (
            len(self._cube_crest) * branching
            + len(self._time_crest)
            + 1  # running cube average
        )

    def _note_memory(self) -> None:
        self.max_live_coefficients = max(
            self.max_live_coefficients, self.live_coefficients()
        )

    def _offer_cube_detail(
        self, cube: int, key: NonStandardKey, value: float
    ) -> None:
        norm = float(2.0 ** (key.level * self._ndim / 2.0))
        self.topk.offer(("cube", cube, key), value, norm)
        self.finalized += 1

    def push_chunk(self, chunk) -> None:
        """Consume the next cubic chunk (z-order within the cube)."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.shape != (self._chunk_edge,) * self._ndim:
            raise ValueError(
                f"chunk must be a {self._chunk_edge}-edge cube, "
                f"got {chunk.shape}"
            )
        if self._cube_index >= self._num_cubes:
            raise ValueError("time domain exhausted")
        if self._chunk_iter is None:
            self._chunk_iter = self.expected_chunk_order()
        grid_position = next(self._chunk_iter)

        chunk_hat = nonstandard_dwt(chunk)
        # Chunk details are final immediately (SHIFT).
        for key_level in range(1, self._m + 1):
            width = self._chunk_edge >> key_level
            for type_mask in range(1, 1 << self._ndim):
                offset = tuple(
                    width if (type_mask >> axis) & 1 else 0
                    for axis in range(self._ndim)
                )
                block = chunk_hat[
                    tuple(
                        slice(offset[axis], offset[axis] + width)
                        for axis in range(self._ndim)
                    )
                ]
                base = tuple(
                    int(g) * width for g in grid_position
                )
                for local in np.ndindex(*block.shape):
                    node = tuple(
                        base[axis] + local[axis]
                        for axis in range(self._ndim)
                    )
                    self._offer_cube_detail(
                        self._cube_index,
                        NonStandardKey(key_level, node, type_mask),
                        float(block[local]),
                    )

        # SPLIT into the per-cube crest.
        average = float(chunk_hat[(0,) * self._ndim])
        details, scaling_delta = split_contributions_nonstandard(
            self._edge, self._chunk_edge, grid_position, average
        )
        branching = 1 << self._ndim
        for key, delta in details:
            node_id = (key.level, key.node)
            entry = self._cube_crest.get(node_id)
            if entry is None:
                gap = key.level - self._m
                expected = (1 << (gap * self._ndim)) * (branching - 1)
                entry = [np.zeros(branching - 1), expected]
                self._cube_crest[node_id] = entry
            entry[0][key.type_mask - 1] += delta
            entry[1] -= 1
            self.crest_updates += 1
        self._cube_average += scaling_delta
        self._flush_complete_nodes()

        self._chunks_in_cube += 1
        self._note_memory()
        if self._chunks_in_cube == self.chunks_per_cube:
            self._complete_cube()

    def _flush_complete_nodes(self) -> None:
        complete = [
            node_id
            for node_id, entry in self._cube_crest.items()
            if entry[1] == 0
        ]
        for level, node in complete:
            values = self._cube_crest.pop((level, node))[0]
            for type_mask in range(1, 1 << self._ndim):
                self._offer_cube_detail(
                    self._cube_index,
                    NonStandardKey(level, node, type_mask),
                    float(values[type_mask - 1]),
                )

    def _complete_cube(self) -> None:
        if self._cube_crest:
            raise RuntimeError("cube crest not drained — bad chunk order")
        # The cube average joins the 1-d time series (per-item split).
        indices, weights = split_weights(
            self._num_cubes, 1, self._cube_index
        )
        for index, weight in zip(indices, weights):
            self._time_crest[int(index)] = (
                self._time_crest.get(int(index), 0.0)
                + self._cube_average * weight
            )
            self.crest_updates += 1
        self._averages_seen += 1
        self._finalize_time_crest()
        self._cube_average = 0.0
        self._cube_index += 1
        self._chunks_in_cube = 0
        self._chunk_iter = None
        self._note_memory()

    def _offer_time(self, flat_index: int, value: float) -> None:
        q = ilog2(self._num_cubes)
        if flat_index == SCALING_INDEX:
            time_norm = scaling_basis_norm(q)
        else:
            level, __ = index_to_detail(q, flat_index)
            time_norm = detail_basis_norm(level)
        cube_norm = float(2.0 ** (self._n * self._ndim / 2.0))
        self.topk.offer(("time", flat_index), value, time_norm * cube_norm)
        self.finalized += 1

    def _finalize_time_crest(self) -> None:
        q = ilog2(self._num_cubes)
        completed = [
            index
            for index in self._time_crest
            if index != SCALING_INDEX
            and support_of_index(q, index)[1] <= self._averages_seen
        ]
        for index in completed:
            self._offer_time(index, self._time_crest.pop(index))
        if (
            self._averages_seen == self._num_cubes
            and SCALING_INDEX in self._time_crest
        ):
            self._offer_time(
                SCALING_INDEX, self._time_crest.pop(SCALING_INDEX)
            )

    def synopsis(self) -> Dict:
        return self.topk.items()

    def estimate(self) -> np.ndarray:
        """Reconstruction of the full stream from the retained terms.

        Shape: ``(edge,) * (ndim - 1) + (time_domain,)`` — the cube's
        last axis is the within-cube time.  The cube averages are
        estimated from the retained time-hierarchy terms and injected
        as each cube's scaling coefficient before the inverse
        non-standard transform (the hybrid inverse).
        """
        from repro.wavelet.haar1d import haar_idwt
        from repro.wavelet.nonstandard import nonstandard_idwt

        average_coeffs = np.zeros(self._num_cubes, dtype=np.float64)
        per_cube_details: Dict[int, list] = {}
        for key, value in self.topk.items().items():
            kind = key[0]
            if kind == "time":
                average_coeffs[key[1]] = value
            else:
                per_cube_details.setdefault(key[1], []).append(
                    (key[2], value)
                )
        cube_averages = haar_idwt(average_coeffs)

        out_shape = (self._edge,) * (self._ndim - 1) + (self._time_domain,)
        out = np.zeros(out_shape, dtype=np.float64)
        for cube in range(self._num_cubes):
            mallat = np.zeros((self._edge,) * self._ndim, dtype=np.float64)
            for detail_key, value in per_cube_details.get(cube, []):
                mallat[detail_key.position(self._edge)] = value
            mallat[(0,) * self._ndim] = cube_averages[cube]
            block = nonstandard_idwt(mallat)
            out[..., cube * self._edge : (cube + 1) * self._edge] = block
        return out
