"""One-dimensional stream synopses in the time-series model
(paper, Section 5.3, Result 3).

Items arrive in order ``x_0, x_1, ...`` over a fixed domain of size
``N = 2^n``.  At any time only the *wavelet crest* — the coefficients
whose support is still open on the right — can change: the covering
detail at every level plus the overall average, ``log N + 1``
coefficients.

Baseline (Gilbert et al. [5])
    Every arriving item updates the whole crest: ``O(log N)``
    coefficient updates per item, space ``K + log N + 1``.

Buffered SHIFT-SPLIT (Result 3)
    Buffer ``B`` items; when full, transform the buffer (``O(B)``
    in-memory work), SHIFT the ``B - 1`` details out as immediately
    final, and SPLIT only the buffer average onto the crest —
    ``log(N/B) + 1`` crest updates per *B* items, i.e.
    ``O((1/B) log(N/B))`` amortised crest updates per item, at the
    price of ``B`` extra memory.

Both behaviours live in :class:`StreamSynopsis1D`; the baseline is the
``buffer_size=1`` instance (a single item is its own transform and
everything it does is SPLIT).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.shiftsplit1d import shift_target_indices, split_weights
from repro.streams.topk import TopKTracker
from repro.util.bits import ilog2
from repro.wavelet.haar1d import detail_basis_norm, haar_dwt, scaling_basis_norm
from repro.wavelet.layout import (
    SCALING_INDEX,
    index_to_detail,
    support_of_index,
)

__all__ = ["StreamSynopsis1D"]


class StreamSynopsis1D:
    """Best K-term Haar synopsis of a bounded 1-d stream.

    Parameters
    ----------
    domain_size:
        The time-series domain ``N = 2^n``; at most ``N`` items may be
        pushed.
    k:
        Synopsis size (number of retained coefficients).
    buffer_size:
        SHIFT-SPLIT buffer ``B`` (power of two dividing ``N``);
        ``1`` reproduces the per-item baseline.
    """

    def __init__(self, domain_size: int, k: int, buffer_size: int = 1) -> None:
        self._n = ilog2(domain_size)
        self._b = ilog2(buffer_size)
        if self._b > self._n:
            raise ValueError(
                f"buffer_size {buffer_size} exceeds domain {domain_size}"
            )
        self._size = domain_size
        self._buffer_size = buffer_size
        self._buffer: List[float] = []
        self._crest: Dict[int, float] = {}
        self._items = 0
        self.topk = TopKTracker(k)
        #: Crest coefficient read-modify-writes (the paper's per-item
        #: cost metric).
        self.crest_updates = 0
        #: Coefficients finalised so far (offered to the top-K set).
        self.finalized = 0
        #: Peak live memory in coefficients (buffer + crest), beyond K.
        self.max_live_coefficients = 0

    @property
    def domain_size(self) -> int:
        return self._size

    @property
    def items_seen(self) -> int:
        return self._items

    @property
    def buffer_size(self) -> int:
        return self._buffer_size

    def live_coefficients(self) -> int:
        """Current working-memory coefficients beyond the K retained."""
        return len(self._buffer) + len(self._crest)

    def push(self, value: float) -> None:
        """Consume the next stream item."""
        if self._items + len(self._buffer) >= self._size:
            raise ValueError(f"stream domain of {self._size} items exhausted")
        self._buffer.append(float(value))
        self.max_live_coefficients = max(
            self.max_live_coefficients, self.live_coefficients()
        )
        if len(self._buffer) == self._buffer_size:
            self._flush_buffer()

    def extend(self, values) -> None:
        """Consume many items."""
        for value in values:
            self.push(value)

    def _offer(self, flat_index: int, value: float) -> None:
        if flat_index == SCALING_INDEX:
            norm = scaling_basis_norm(self._n)
        else:
            level, __ = index_to_detail(self._n, flat_index)
            norm = detail_basis_norm(level)
        self.topk.offer(flat_index, value, norm)
        self.finalized += 1

    def _flush_buffer(self) -> None:
        block_index = self._items // self._buffer_size
        block = np.asarray(self._buffer, dtype=np.float64)
        self._buffer = []
        block_hat = haar_dwt(block)

        # SHIFT: the buffer's own details are final the moment the
        # buffer completes — no crest traffic for them.
        if self._buffer_size > 1:
            targets = shift_target_indices(
                self._size, self._buffer_size, block_index
            )
            for local in range(1, self._buffer_size):
                self._offer(int(targets[local]), float(block_hat[local]))

        # SPLIT: only the buffer average climbs the crest.
        indices, weights = split_weights(
            self._size, self._buffer_size, block_index
        )
        average = float(block_hat[0])
        for index, weight in zip(indices, weights):
            self._crest[int(index)] = (
                self._crest.get(int(index), 0.0) + average * weight
            )
            self.crest_updates += 1

        self._items += self._buffer_size
        self._finalize_completed()
        self.max_live_coefficients = max(
            self.max_live_coefficients, self.live_coefficients()
        )

    def _finalize_completed(self) -> None:
        """Move crest coefficients whose support has closed to top-K."""
        completed = [
            index
            for index in self._crest
            if index != SCALING_INDEX
            and support_of_index(self._n, index)[1] <= self._items
        ]
        for index in completed:
            self._offer(index, self._crest.pop(index))
        if self._items == self._size and SCALING_INDEX in self._crest:
            self._offer(SCALING_INDEX, self._crest.pop(SCALING_INDEX))

    def synopsis(self) -> Dict[int, float]:
        """The retained coefficients ``{flat index: value}``."""
        return self.topk.items()

    def estimate(self) -> np.ndarray:
        """Reconstruction of the whole domain from the K retained
        coefficients (unseen positions estimate from coarse terms)."""
        from repro.wavelet.haar1d import haar_idwt

        coeffs = np.zeros(self._size, dtype=np.float64)
        for index, value in self.topk.items().items():
            coeffs[index] = value
        return haar_idwt(coeffs)

    def estimate_with_crest(self) -> np.ndarray:
        """Reconstruction that also includes the still-open crest
        coefficients (exact prefix when ``k >= N``)."""
        from repro.wavelet.haar1d import haar_idwt

        coeffs = np.zeros(self._size, dtype=np.float64)
        for index, value in self.topk.items().items():
            coeffs[index] = value
        for index, value in self._crest.items():
            coeffs[index] += value
        return haar_idwt(coeffs)

    def range_sum_estimate(
        self, low: int, high: int, include_crest: bool = True
    ) -> float:
        """Approximate ``sum(stream[low:high+1])`` from the synopsis.

        Uses Lemma 2 directly on the retained (and, by default, the
        still-open crest) coefficients — ``O(log N)`` work, no
        reconstruction.  Exact over the seen prefix when ``k >= N``
        and the crest is included.
        """
        from repro.reconstruct.rangesum import range_sum_weights

        indices, weights = range_sum_weights(self._size, int(low), int(high))
        retained = self.topk.items()
        total = 0.0
        for index, weight in zip(indices, weights):
            value = retained.get(int(index), 0.0)
            if include_crest:
                value += self._crest.get(int(index), 0.0)
            total += weight * value
        return float(total)
