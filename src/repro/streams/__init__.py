"""Data-stream approximation (paper, Section 5.3)."""

from repro.streams.stream1d import StreamSynopsis1D
from repro.streams.streamnd import (
    NonStandardStreamSynopsis,
    StandardStreamSynopsis,
)
from repro.streams.topk import TopKTracker

__all__ = [
    "NonStandardStreamSynopsis",
    "StandardStreamSynopsis",
    "StreamSynopsis1D",
    "TopKTracker",
]
