"""Best K-term synopsis bookkeeping.

The stream maintainers feed *finalised* coefficients (ones no future
arrival can change) into a :class:`TopKTracker`, which keeps the K
largest by L2 significance — the unnormalised coefficient magnitude
times its basis norm, which makes the retained set exactly the
L2-optimal K-term approximation of the data seen so far.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, List, Tuple

__all__ = ["TopKTracker"]


class TopKTracker:
    """Keep the K coefficients with the largest ``|value| * norm``.

    Coefficients are offered once, when finalised; ties are broken by
    arrival order (first arrival wins), which keeps the tracker
    deterministic.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self._k = k
        self._heap: List[Tuple[float, int, Hashable, float]] = []
        self._counter = itertools.count()
        self.offers = 0
        self.evictions = 0

    @property
    def k(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, key: Hashable, value: float, norm: float = 1.0) -> bool:
        """Offer a finalised coefficient; returns True if retained.

        ``norm`` is the L2 norm of the coefficient's basis function
        (see :func:`repro.wavelet.haar1d.detail_basis_norm` and its
        multidimensional analogues).
        """
        self.offers += 1
        if self._k == 0:
            return False
        significance = abs(value) * norm
        entry = (significance, -next(self._counter), key, value)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            self.evictions += 1
            return True
        self.evictions += 0
        return False

    def threshold(self) -> float:
        """Smallest retained significance (0 when not yet full)."""
        if len(self._heap) < self._k or not self._heap:
            return 0.0
        return self._heap[0][0]

    def items(self) -> Dict[Hashable, float]:
        """The retained coefficients as ``{key: value}``."""
        return {key: value for __, __, key, value in self._heap}

    def ordered(self) -> List[Tuple[Hashable, float, float]]:
        """Retained coefficients as ``(key, value, significance)``,
        most significant first."""
        return [
            (key, value, significance)
            for significance, __, key, value in sorted(
                self._heap, reverse=True
            )
        ]
