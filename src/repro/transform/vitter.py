"""Vitter et al. baseline transformer (paper's comparison point,
[12, 13] in Table 2 / Figure 11).

Vitter and Wang compute the standard-form decomposition of a dense
``d``-dimensional dataset in ``O(N^d log N)`` I/Os: the transform
proceeds dimension by dimension and level by level, and because the
external layout keeps coefficients of all levels interleaved, every
level of every dimension pass re-scans the whole dataset to reach the
currently active averages, then writes that level's output.

The reproduction performs the actual transform with exactly that access
pattern over an in-memory working array, charging

* one coefficient read per cell scanned (``N^d`` per level pass), and
* one coefficient write per value produced (``N^d / 2^{l-1}`` at level
  ``l``),

for a total of ``d * N^d * (log N + 2)`` — the ``O(N^d log N)`` of
Table 2, flat in available memory (Figure 11's key contrast with
SHIFT-SPLIT).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.tracer import charge as _trace_charge
from repro.storage.iostats import IOStats
from repro.transform.report import TransformReport
from repro.util.bits import ilog2
from repro.util.validation import as_float_array, require_power_of_two_shape
from repro.wavelet.haar1d import haar_step

__all__ = ["vitter_transform_standard", "vitter_io_cost"]


def vitter_transform_standard(
    data, stats: Optional[IOStats] = None
) -> TransformReport:
    """Standard-form DWT with the Vitter et al. access pattern.

    Returns a :class:`TransformReport` whose ``extras["transform"]``
    holds the resulting coefficients (bit-identical to
    :func:`repro.wavelet.standard.standard_dwt`).
    """
    array = as_float_array(data).copy()
    shape = require_power_of_two_shape(array.shape)
    stats = stats if stats is not None else IOStats()
    total_cells = int(np.prod(shape))

    for axis, extent in enumerate(shape):
        levels = ilog2(extent)
        moved = np.moveaxis(array, axis, -1)
        length = extent
        for __ in range(levels):
            # Full scan to locate this level's active averages.
            stats.coefficient_reads += total_cells
            _trace_charge("coefficient_reads", total_cells)
            averages, details = haar_step(moved[..., :length])
            half = length // 2
            moved[..., :half] = averages
            moved[..., half:length] = details
            written = (int(np.prod(shape)) // extent) * length
            stats.coefficient_writes += written
            _trace_charge("coefficient_writes", written)
            length = half
        array = np.moveaxis(moved, -1, axis)

    report = TransformReport(
        chunks=0,
        source_reads=0,
        store_stats=stats.snapshot(),
        extras={"form": "standard", "method": "vitter", "transform": array},
    )
    return report


def vitter_io_cost(shape) -> int:
    """Closed-form coefficient I/O count of
    :func:`vitter_transform_standard` for ``shape`` (reads + writes)."""
    shape = require_power_of_two_shape(shape)
    total_cells = 1
    for extent in shape:
        total_cells *= extent
    cost = 0
    for extent in shape:
        levels = ilog2(extent)
        cost += levels * total_cells  # scans
        length = extent
        for __ in range(levels):
            cost += (total_cells // extent) * length  # writes
            length //= 2
    return cost
