"""Bulk transformation of massive datasets (paper, Section 5.1)."""

from repro.transform.chunked import (
    ChunkSource,
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.report import TransformReport
from repro.transform.vitter import vitter_io_cost, vitter_transform_standard

__all__ = [
    "ChunkSource",
    "TransformReport",
    "transform_nonstandard_chunked",
    "transform_standard_chunked",
    "vitter_io_cost",
    "vitter_transform_standard",
]
