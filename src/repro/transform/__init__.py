"""Bulk transformation of massive datasets (paper, Section 5.1)."""

from repro.transform.chunked import (
    ChunkSource,
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.procpool import (
    ProcPoolError,
    release_pool_buffers,
    transform_standard_procpool,
)
from repro.transform.report import TransformReport
from repro.transform.vitter import vitter_io_cost, vitter_transform_standard

__all__ = [
    "ChunkSource",
    "ProcPoolError",
    "TransformReport",
    "release_pool_buffers",
    "transform_nonstandard_chunked",
    "transform_standard_chunked",
    "transform_standard_procpool",
    "vitter_io_cost",
    "vitter_transform_standard",
]
