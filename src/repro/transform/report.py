"""Result objects reported by the bulk-transformation drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.storage.iostats import IOStats


@dataclass
class TransformReport:
    """What a bulk transformation cost.

    Attributes
    ----------
    chunks:
        Number of chunks processed.
    source_reads:
        Coefficient reads spent consuming the input data (one per cell).
    store_stats:
        I/O accumulated against the output store during the run
        (coefficient counters for dense stores, block counters for
        tiled stores).
    max_buffer_coefficients:
        Peak number of coefficients held in the SPLIT crest buffer
        (only the buffered non-standard driver uses one; 0 otherwise).
    extras:
        Driver-specific annotations (e.g. the chunk order used).
    """

    chunks: int = 0
    source_reads: int = 0
    store_stats: IOStats = field(default_factory=IOStats)
    max_buffer_coefficients: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def coefficient_ios(self) -> int:
        """Total coefficient-level cost including reading the source."""
        return self.source_reads + self.store_stats.coefficient_ios

    @property
    def block_ios(self) -> int:
        """Block-level cost against the output store."""
        return self.store_stats.block_ios
