"""True process-parallel SHIFT-SPLIT bulk loads (no GIL, no pin churn).

The thread-scatter experiment (``parallel_apply``) lost to serial
cached plans: Python threads serialise the numpy scatters on the GIL
while cross-worker tile pinning re-fetches blocks another worker just
evicted (BENCH_kernels 2d-1024: 3380 block reads vs 1836 serial).
This module replaces it with a ``multiprocessing`` scatter pool built
on two facts:

* every coefficient of a standard-form bulk load lands in exactly one
  tile, and the set of ``(chunk, region)`` scatters that touch a tile
  is known *geometrically* before any data is read — so tiles can be
  partitioned into **disjoint ownership ranges** and each worker can
  assemble its tiles to completion with no locks, no pins and no
  cross-worker traffic at all;
* a forked child shares the parent's page mappings — a
  :class:`~repro.storage.mmap_device.MmapBlockDevice` (``MAP_SHARED``
  file) or an anonymous shared ``mmap`` arena (for the in-memory
  :class:`~repro.storage.block_device.BlockDevice`) is written in the
  child and read in the parent with zero serialisation.

Execution is two-phase, and the parent **is worker 0** — only workers
1..N-1 fork, so a two-worker pool pays for exactly one fork and half
the copy-on-write fault surface::

    phase 1   chunks round-robin over workers: fetch -> DWT ->
              plan.contributions() -> flat tensor into a shared
              anonymous scratch mmap (disjoint per-chunk offsets)
    barrier   every contribution tensor is in shared memory
    phase 2   owned z-order tile ranges: replay the tile's fused
              scatter jobs into a local block buffer, write the block
              exactly once (one counted block write)

Phase 2 is *tile-major*: instead of streaming chunks through a buffer
pool (create, re-hit, evict, flush), each owner accumulates a tile in
a process-local buffer and issues a single device write.  Against a
serial cached load whose pool holds the whole footprint (0 reads,
``num_tiles`` writes) the block I/O is **identical — reads and
writes** — and every write is charged on the worker's own
:class:`~repro.storage.iostats.IOStats`, merged losslessly into the
parent's counters after join.  Values are bit-identical to the serial
path: the schedule fuses a tile's scatter jobs only across provably
disjoint slot sets (SHIFT assignments never collide, and SPLIT
accumulations are merged only while disjoint, preserving their serial
accumulation order per slot — verified per tile at compile time, with
an ordered fallback when the geometry ever violates it).

The pool runs on **raw** devices only: a
:class:`~repro.storage.journal.JournaledDevice` (or any other
wrapper) in the chain would be bypassed by the workers' direct block
writes, silently invalidating its summaries — that is rejected, not
worked around.

Tracing crosses the fork boundary: when a tracer is installed, each
forked worker gets a **fresh child tracer** (the inherited parent
copy is dead weight — charges to it would vanish with the child),
opens ``procpool.worker`` / ``worker.chunks`` / ``worker.tiles``
spans, and ships its finished span records, orphan I/O and drop count
back through the results queue.  The driver absorbs them into the
parent tracer under the ``transform.procpool`` span with fresh span
ids, so the lossless invariant — merged span I/O plus orphans equals
the global ``IOStats`` delta, field for field — holds across
processes exactly as it does across threads.
"""

from __future__ import annotations

import gc
import mmap
import multiprocessing
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plans import get_standard_plan, plans_enabled
from repro.obs.tracer import Tracer, charge as _trace_charge
from repro.obs.tracer import get_tracer, set_tracer, span_record
from repro.storage.block_device import BlockDevice
from repro.storage.iostats import IOStats
from repro.storage.mmap_device import MmapBlockDevice
from repro.transform.chunked import ChunkSource, _chunk_getter, _chunk_order
from repro.transform.report import TransformReport
from repro.util.morton import morton_encode
from repro.util.validation import require_power_of_two_shape
from repro.wavelet.standard import standard_dwt

__all__ = [
    "ProcPoolError",
    "ScatterSchedule",
    "build_scatter_schedule",
    "release_pool_buffers",
    "transform_standard_procpool",
]

#: Seconds a worker waits at the phase barrier before declaring its
#: siblings dead; generous — failed workers abort the barrier, so the
#: timeout only fires if a sibling died without reporting at all.
_BARRIER_TIMEOUT_S = 300.0

#: Span capacity of a forked worker's fresh child tracer.  A worker
#: opens exactly three spans, so the ring never overflows in practice;
#: a nonzero shipped ``dropped`` count still reaches the parent store.
_CHILD_TRACE_SPANS = 64

#: IOStats fields merged from workers into the parent, field-wise.
_STATS_FIELDS = (
    "block_reads",
    "block_writes",
    "coefficient_reads",
    "coefficient_writes",
    "cache_hits",
    "cache_misses",
    "journal_writes",
)


class ProcPoolError(RuntimeError):
    """The store/device cannot run the process pool, or a worker died."""


# ----------------------------------------------------------------------
# Reusable shared buffers
# ----------------------------------------------------------------------
#
# A fresh anonymous mmap costs one page fault per 4 KiB on first touch
# (~0.5 ms/MB) — a measurable slice of a bulk load that is pure
# overhead on every run after the first.  The pool keeps one scratch
# and one arena mapping alive between runs and reuses them when large
# enough; correctness does not depend on their contents because every
# run fully overwrites its scratch region (each chunk writes its whole
# contribution tensor) and every owned arena row (whole-row batch
# writes).  Concurrent runs in one process fall back to ephemeral
# buffers.

_BUFFER_POOL: Dict[str, mmap.mmap] = {}
_BUFFER_POOL_BUSY: set = set()


def _acquire_buffer(role: str, nbytes: int) -> Tuple[mmap.mmap, bool]:
    """Return ``(buffer, pooled)``; pooled buffers are released via
    :func:`_release_buffer`, ephemeral ones closed by the caller."""
    if role in _BUFFER_POOL_BUSY:
        return mmap.mmap(-1, nbytes), False
    pooled = _BUFFER_POOL.get(role)
    if pooled is not None and len(pooled) < nbytes:
        try:
            pooled.close()
        except BufferError:  # leaked export somewhere: abandon, not crash
            pass
        pooled = None
        _BUFFER_POOL.pop(role, None)
    if pooled is None:
        pooled = mmap.mmap(-1, nbytes)
        _BUFFER_POOL[role] = pooled
    _BUFFER_POOL_BUSY.add(role)
    return pooled, True


def _release_buffer(role: str) -> None:
    _BUFFER_POOL_BUSY.discard(role)


def release_pool_buffers() -> None:
    """Drop the cached scratch/arena mappings (frees ~the footprint of
    the last bulk load; the next run re-faults fresh pages)."""
    for role in list(_BUFFER_POOL):
        if role not in _BUFFER_POOL_BUSY:
            buffer = _BUFFER_POOL.pop(role)
            try:
                buffer.close()
            except BufferError:
                pass


# ----------------------------------------------------------------------
# Scatter schedule: the geometric pre-pass
# ----------------------------------------------------------------------


class ScatterSchedule:
    """Everything phase 2 needs, derived from geometry alone.

    The per-tile scatter jobs are stored **compiled flat**: a handful
    of large contiguous arrays instead of thousands of small python
    tuples.  That matters twice — the phase-2 inner loop touches only
    array slices, and a forked child faults in a few read-only pages
    instead of dirtying (via refcounts) one page per tiny object.

    Attributes
    ----------
    chunk_positions:
        Included chunk grid positions, in serial application order.
    tensor_sizes / tensor_offsets:
        Flat contribution-tensor length per chunk and its float64
        offset in the shared scratch arena (offsets are disjoint —
        boundary chunks have different SPLIT path lengths, so sizes
        are per-chunk).
    tile_keys:
        Tile keys in **serial first-touch order** — the exact order
        the serial cached path creates directory entries and
        allocates blocks, so a pool run allocates identical ids.
    job_tile_start:
        ``int64[num_tiles + 1]``; tile ``t`` owns jobs
        ``job_tile_start[t] : job_tile_start[t + 1]``.
    job_accumulate:
        ``uint8[num_jobs]``; 1 = ``+=`` (SPLIT), 0 = assignment
        (SHIFT).
    job_entry_start:
        ``int64[num_jobs + 1]``; job ``j`` owns entries
        ``job_entry_start[j] : job_entry_start[j + 1]``.
    entry_slots / entry_source:
        ``intp`` arrays over all entries: block slot index and
        **global** scratch offset (per-chunk tensor offset already
        folded in), so phase 2 reads one flat scratch array.
    vector_ok:
        True when *every* tile passed the disjointness checks — then
        phase 2 runs fully vectorised (one fancy assignment for all
        SHIFT entries, one ordered ``np.add.at`` for all SPLIT
        entries) instead of the per-job loop.
    assign_tile / assign_slot / assign_src:
        All SHIFT entries flattened (tile index, block slot, global
        scratch offset); pairwise-disjoint targets, order free.
    accum_tile / accum_slot / accum_src:
        All SPLIT entries flattened in **serial order** — ``add.at``
        applies its index array sequentially, so a slot hit by many
        chunks still accumulates in exact serial order.
    entry_counts:
        Coefficients moved into each tile — the ownership balance
        weight.
    fused_jobs / raw_jobs:
        Compile-time accounting: jobs after and before fusion (see
        :func:`build_scatter_schedule`).
    """

    __slots__ = (
        "domain",
        "chunk_shape",
        "block_edge",
        "order",
        "chunk_positions",
        "tensor_sizes",
        "tensor_offsets",
        "tile_keys",
        "job_tile_start",
        "job_accumulate",
        "job_entry_start",
        "entry_slots",
        "entry_source",
        "vector_ok",
        "assign_tile",
        "assign_slot",
        "assign_src",
        "accum_tile",
        "accum_slot",
        "accum_src",
        "entry_counts",
        "total_entries",
        "fused_jobs",
        "raw_jobs",
        "partitions",
    )

    def __init__(
        self,
        domain: Tuple[int, ...],
        chunk_shape: Tuple[int, ...],
        block_edge: int,
        order: str,
        chunk_positions: Tuple[Tuple[int, ...], ...],
        tensor_sizes: np.ndarray,
        tile_keys: List[tuple],
        jobs: List[List[Tuple[int, np.ndarray, np.ndarray, bool]]],
    ) -> None:
        self.domain = domain
        self.chunk_shape = chunk_shape
        self.block_edge = block_edge
        self.order = order
        self.chunk_positions = chunk_positions
        self.tensor_sizes = tensor_sizes
        self.tensor_offsets = np.concatenate(
            ([0], np.cumsum(tensor_sizes)[:-1])
        )
        self.tile_keys = tile_keys
        self.raw_jobs = sum(len(tile_jobs) for tile_jobs in jobs)
        self._compile(jobs)
        self.total_entries = int(self.entry_counts.sum())
        #: ownership partitions memoised per worker count
        self.partitions: Dict[int, List[np.ndarray]] = {}

    def _compile(
        self, jobs: List[List[Tuple[int, np.ndarray, np.ndarray, bool]]]
    ) -> None:
        """Fuse each tile's jobs across disjoint slot sets and flatten.

        Serial semantics per tile are: jobs replay in chunk order,
        SHIFT slices assigned, SPLIT slices accumulated.  Two
        reorderings are bitwise-safe and verified per tile against a
        slot-occupancy bitmap:

        * all SHIFT assignments fuse into one leading job — each
          coefficient is SHIFTed at most once and never also SPLIT
          into, so the assignment targets are pairwise disjoint and
          disjoint from every accumulation target;
        * consecutive SPLIT jobs fuse while their slot sets stay
          disjoint — fancy ``+=`` over unique indices, and any slot
          hit twice still sees its contributions in serial order
          because fusion stops at the first overlap.

        Tiles that violate either check (no known geometry does) keep
        their original ordered job list.
        """
        block_slots = self.block_edge ** len(self.domain)
        offsets = self.tensor_offsets
        tile_starts = [0]
        accumulate_flags: List[int] = []
        entry_starts = [0]
        slot_parts: List[np.ndarray] = []
        source_parts: List[np.ndarray] = []
        entry_counts = np.zeros(len(jobs), dtype=np.int64)
        vector_ok = True
        assign_tiles: List[np.ndarray] = []
        assign_slots: List[np.ndarray] = []
        assign_sources: List[np.ndarray] = []
        accum_tiles: List[np.ndarray] = []
        accum_slots: List[np.ndarray] = []
        accum_sources: List[np.ndarray] = []

        def emit(
            accumulate: bool,
            slot_group: List[np.ndarray],
            source_group: List[np.ndarray],
        ) -> None:
            slots = (
                slot_group[0]
                if len(slot_group) == 1
                else np.concatenate(slot_group)
            )
            sources = (
                source_group[0]
                if len(source_group) == 1
                else np.concatenate(source_group)
            )
            accumulate_flags.append(1 if accumulate else 0)
            entry_starts.append(entry_starts[-1] + slots.size)
            slot_parts.append(slots)
            source_parts.append(sources)

        occupancy = np.zeros(block_slots, dtype=bool)
        for tile_index, tile_jobs in enumerate(jobs):
            entry_counts[tile_index] = sum(
                job[1].size for job in tile_jobs
            )
            assigns = [job for job in tile_jobs if not job[3]]
            accums = [job for job in tile_jobs if job[3]]
            fusable = True
            occupancy[:] = False
            for __, slots, __, __ in assigns:
                if occupancy[slots].any():
                    fusable = False
                    break
                occupancy[slots] = True
            if fusable:
                for __, slots, __, __ in accums:
                    if occupancy[slots].any():
                        fusable = False
                        break
            if not fusable:
                vector_ok = False
                for chunk_index, slots, source, accumulate in tile_jobs:
                    emit(
                        accumulate,
                        [slots],
                        [source + offsets[chunk_index]],
                    )
            else:
                for chunk_index, slots, source, accumulate in tile_jobs:
                    tiles = np.full(slots.size, tile_index, dtype=np.intp)
                    if accumulate:
                        accum_tiles.append(tiles)
                        accum_slots.append(slots)
                        accum_sources.append(source + offsets[chunk_index])
                    else:
                        assign_tiles.append(tiles)
                        assign_slots.append(slots)
                        assign_sources.append(source + offsets[chunk_index])
                if assigns:
                    emit(
                        False,
                        [job[1] for job in assigns],
                        [job[2] + offsets[job[0]] for job in assigns],
                    )
                group_slots: List[np.ndarray] = []
                group_sources: List[np.ndarray] = []
                occupancy[:] = False
                for chunk_index, slots, source, __ in accums:
                    if group_slots and occupancy[slots].any():
                        emit(True, group_slots, group_sources)
                        group_slots, group_sources = [], []
                        occupancy[:] = False
                    group_slots.append(slots)
                    group_sources.append(source + offsets[chunk_index])
                    occupancy[slots] = True
                if group_slots:
                    emit(True, group_slots, group_sources)
            tile_starts.append(len(accumulate_flags))

        self.job_tile_start = np.asarray(tile_starts, dtype=np.int64)
        self.job_accumulate = np.asarray(
            accumulate_flags, dtype=np.uint8
        )
        self.job_entry_start = np.asarray(entry_starts, dtype=np.int64)
        self.entry_slots = (
            np.concatenate(slot_parts)
            if slot_parts
            else np.empty(0, dtype=np.intp)
        )
        self.entry_source = (
            np.concatenate(source_parts)
            if source_parts
            else np.empty(0, dtype=np.intp)
        )

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            return (
                np.concatenate(parts).astype(np.intp, copy=False)
                if parts
                else np.empty(0, dtype=np.intp)
            )

        self.vector_ok = vector_ok
        self.assign_tile = cat(assign_tiles)
        self.assign_slot = cat(assign_slots)
        self.assign_src = cat(assign_sources)
        self.accum_tile = cat(accum_tiles)
        self.accum_slot = cat(accum_slots)
        self.accum_src = cat(accum_sources)
        self.entry_counts = entry_counts
        self.fused_jobs = len(accumulate_flags)

    @property
    def num_tiles(self) -> int:
        return len(self.tile_keys)

    @property
    def scratch_floats(self) -> int:
        return int(self.tensor_sizes.sum())


def build_scatter_schedule(
    domain: Tuple[int, ...],
    chunk_shape: Tuple[int, ...],
    tiling,
    order: str,
    chunk_positions: Sequence[Tuple[int, ...]],
) -> ScatterSchedule:
    """Compile the batch's exact tile footprint into fused scatter jobs.

    Walks chunks in serial order and, per chunk, the plan's regions and
    compiled tiles in serial order — the ``setdefault`` below therefore
    assigns tile indices in serial first-touch order, and each tile's
    job list is its serial mutation sequence (then fused; see
    :meth:`ScatterSchedule._compile`).  Warms the plan cache as a side
    effect, so forked children inherit every compiled plan
    copy-on-write and recompile nothing.
    """
    directory: Dict[tuple, int] = {}
    tile_keys: List[tuple] = []
    jobs: List[List[Tuple[int, np.ndarray, np.ndarray, bool]]] = []
    sizes = np.zeros(len(chunk_positions), dtype=np.int64)
    for chunk_index, grid_position in enumerate(chunk_positions):
        plan = get_standard_plan(domain, chunk_shape, grid_position)
        sizes[chunk_index] = int(np.prod(plan.tensor_shape))
        for is_shift, compiled in plan.iter_compiled(tiling):
            accumulate = not is_shift
            for key, slots, source in compiled.tiles:
                tile_index = directory.setdefault(key, len(tile_keys))
                if tile_index == len(tile_keys):
                    tile_keys.append(key)
                    jobs.append([])
                jobs[tile_index].append(
                    (chunk_index, slots, source, accumulate)
                )
    return ScatterSchedule(
        tuple(domain),
        tuple(chunk_shape),
        tiling.block_edge,
        order,
        tuple(tuple(p) for p in chunk_positions),
        sizes,
        tile_keys,
        jobs,
    )


_SCHEDULE_CACHE: Dict[tuple, ScatterSchedule] = {}
_SCHEDULE_CACHE_CAPACITY = 4


def _cached_schedule(
    domain, chunk_shape, tiling, order, chunk_positions
) -> ScatterSchedule:
    key = (
        tuple(domain),
        tuple(chunk_shape),
        tiling.block_edge,
        order,
        tuple(tuple(p) for p in chunk_positions),
    )
    schedule = _SCHEDULE_CACHE.pop(key, None)
    if schedule is None:
        schedule = build_scatter_schedule(
            domain, chunk_shape, tiling, order, chunk_positions
        )
    _SCHEDULE_CACHE[key] = schedule  # re-insert = move to MRU position
    while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_CAPACITY:
        _SCHEDULE_CACHE.pop(next(iter(_SCHEDULE_CACHE)))
    return schedule


# ----------------------------------------------------------------------
# Ownership partitioning
# ----------------------------------------------------------------------


def _axis_part_ordinal(tiling_1d, part: Tuple[int, int]) -> int:
    """Dense spatial ordinal of one axis tile part (band-major)."""
    band, root = part
    ordinal = root
    for lower in range(band):
        ordinal += tiling_1d.tiles_in_band(lower)
    return ordinal


def partition_ownership(
    schedule: ScatterSchedule, tiling, workers: int
) -> List[np.ndarray]:
    """Disjoint per-worker tile sets: z-order sorted, weight balanced.

    Tiles are sorted by the Morton code of their per-axis part
    ordinals (spatially adjacent tiles share chunk contribution
    tensors, so a contiguous z-order range keeps each worker's
    phase-2 reads local) and cut into ``workers`` contiguous ranges
    whose summed entry weights are balanced greedily.
    """
    codes = np.empty(schedule.num_tiles, dtype=np.int64)
    ordinal_cache: List[Dict[Tuple[int, int], int]] = [
        {} for _ in range(len(schedule.domain))
    ]
    for tile_index, key in enumerate(schedule.tile_keys):
        coords = []
        for axis, part in enumerate(key):
            cache = ordinal_cache[axis]
            ordinal = cache.get(part)
            if ordinal is None:
                ordinal = _axis_part_ordinal(tiling.dim(axis), part)
                cache[part] = ordinal
            coords.append(ordinal)
        codes[tile_index] = morton_encode(coords)
    zorder = np.argsort(codes, kind="stable")
    weights = schedule.entry_counts[zorder]
    total = int(weights.sum())
    ranges: List[np.ndarray] = []
    start = 0
    for worker_index in range(workers):
        remaining_workers = workers - worker_index
        target = total // remaining_workers if remaining_workers else 0
        end = start
        acc = 0
        limit = schedule.num_tiles - (remaining_workers - 1)
        while end < limit and (acc < target or end == start):
            acc += int(weights[end])
            end += 1
        if worker_index == workers - 1:
            end = schedule.num_tiles
            acc = int(weights[start:end].sum())
        ranges.append(zorder[start:end])
        total -= acc
        start = end
    return ranges


class _WorkerShare:
    """One worker's phase-2 inputs: its owned tiles plus its slices of
    the schedule's vector entry arrays, re-targeted to a worker-local
    row numbering (``owned[r]`` assembles in row ``r``)."""

    __slots__ = ("owned", "a_tgt", "a_src", "c_tgt", "c_src")

    def __init__(self, owned, a_tgt, a_src, c_tgt, c_src) -> None:
        self.owned = owned
        self.a_tgt = a_tgt
        self.a_src = a_src
        self.c_tgt = c_tgt
        self.c_src = c_src


def _worker_shares(
    schedule: ScatterSchedule, ranges: List[np.ndarray]
) -> Optional[List[_WorkerShare]]:
    """Split the schedule's vector entry arrays along tile ownership.

    Boolean selection preserves the global entry order, so each
    worker's SPLIT entries stay in serial accumulation order.  Returns
    ``None`` when the schedule could not be vectorised (the workers
    then fall back to the ordered per-job loop).
    """
    if not schedule.vector_ok:
        return None
    block_slots = schedule.block_edge ** len(schedule.domain)
    worker_of = np.empty(schedule.num_tiles, dtype=np.intp)
    row_of = np.empty(schedule.num_tiles, dtype=np.intp)
    for worker_index, owned in enumerate(ranges):
        worker_of[owned] = worker_index
        row_of[owned] = np.arange(owned.size, dtype=np.intp)
    shares: List[_WorkerShare] = []
    for worker_index, owned in enumerate(ranges):
        a_sel = worker_of[schedule.assign_tile] == worker_index
        c_sel = worker_of[schedule.accum_tile] == worker_index
        shares.append(
            _WorkerShare(
                owned,
                row_of[schedule.assign_tile[a_sel]] * block_slots
                + schedule.assign_slot[a_sel],
                schedule.assign_src[a_sel],
                row_of[schedule.accum_tile[c_sel]] * block_slots
                + schedule.accum_slot[c_sel],
                schedule.accum_src[c_sel],
            )
        )
    return shares


# ----------------------------------------------------------------------
# Shared-memory arena for the in-memory device
# ----------------------------------------------------------------------


class _SharedArenaDevice:
    """Charged write path into an anonymous shared mmap arena.

    Stands in for the in-memory :class:`BlockDevice` inside forked
    workers: the simulated device's dict lives in copy-on-write pages,
    so child writes would be invisible to the parent.  Workers write
    here instead (one counted block write each, same accounting as the
    real device) and the parent restores the arena into the simulated
    device uncounted — the I/O was already paid by the workers.
    """

    def __init__(
        self,
        buffer: mmap.mmap,
        block_slots: int,
        base_id: int,
        num_blocks: int,
    ) -> None:
        self._block_slots = block_slots
        self._base_id = base_id  # arena row 0 holds this block id
        self._num_blocks = num_blocks
        self._data = np.frombuffer(
            buffer, dtype=np.float64, count=num_blocks * block_slots
        ).reshape(num_blocks, block_slots)
        self.stats = IOStats()

    @property
    def block_slots(self) -> int:
        return self._block_slots

    def _view(self, block_id: int) -> np.ndarray:
        row = block_id - self._base_id
        if not 0 <= row < self._num_blocks:
            raise KeyError(f"block {block_id} outside the arena")
        return self._data[row]

    def read_block(self, block_id: int) -> np.ndarray:
        self.stats.block_reads += 1
        _trace_charge("block_reads")
        return self._view(block_id).copy()

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        if data.shape != (self._block_slots,):
            raise ValueError(
                f"block data must have shape ({self._block_slots},), "
                f"got {data.shape}"
            )
        self.stats.block_writes += 1
        _trace_charge("block_writes")
        self._view(block_id)[:] = np.asarray(data, dtype=np.float64)

    def write_blocks(
        self, block_ids: np.ndarray, rows: np.ndarray
    ) -> None:
        """Batch write, one block-write I/O per row (device contract)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self._block_slots:
            raise ValueError(
                f"rows must have shape (*, {self._block_slots}), "
                f"got {rows.shape}"
            )
        block_rows = np.asarray(block_ids, dtype=np.int64) - self._base_id
        if block_rows.size and not (
            0 <= int(block_rows.min())
            and int(block_rows.max()) < self._num_blocks
        ):
            raise KeyError("write_blocks targets outside the arena")
        count = rows.shape[0]
        self.stats.block_writes += count
        _trace_charge("block_writes", count)
        self._data[block_rows] = rows


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------


def _scatter_worker(
    worker_index: int,
    schedule: ScatterSchedule,
    share,
    chunk_stride: int,
    device,
    block_ids: np.ndarray,
    scratch: mmap.mmap,
    getter: Callable[[Tuple[int, ...]], np.ndarray],
    barrier,
    results,
    trace_parent=None,
    ship_trace: bool = False,
) -> None:
    """One scatter worker: contribute assigned chunks, then own tiles.

    Worker 0 runs inline in the parent; workers 1..N-1 run in forked
    children where every argument is inherited, nothing pickled.
    Charges land on a fresh :class:`IOStats` installed on the worker's
    (copy-on-write, for children) device object and are shipped back
    through ``results`` for the parent to merge — the driver restores
    the parent device's original stats object after the inline run.

    When tracing is on, the worker's phases run under a
    ``procpool.worker`` span — parented to ``trace_parent`` for the
    inline worker, rooted in the child's fresh tracer otherwise — so
    every device charge attributes to a span instead of leaking to the
    orphan bucket of a dead copy-on-write tracer.  ``ship_trace``
    (children only) appends the finished span records, orphan I/O and
    drop count to the ok result for the driver to absorb.  A failing
    worker aborts the barrier so its siblings fail fast instead of
    waiting out the timeout.
    """
    try:
        stats = IOStats()
        device.stats = stats
        domain = schedule.domain
        offsets = schedule.tensor_offsets
        sizes = schedule.tensor_sizes
        source_reads = 0
        chunks_done = 0
        shared = np.frombuffer(scratch, dtype=np.float64)
        block_slots = schedule.block_edge ** len(domain)
        owned = share.owned if isinstance(share, _WorkerShare) else share
        tracer = get_tracer()
        with tracer.span(
            "procpool.worker", parent=trace_parent, worker=worker_index
        ):
            # --- phase 1: contribution tensors into shared scratch ---
            with tracer.span("worker.chunks") as chunks_span:
                for chunk_index in range(
                    worker_index,
                    len(schedule.chunk_positions),
                    chunk_stride,
                ):
                    grid_position = schedule.chunk_positions[chunk_index]
                    chunk = getter(grid_position)
                    chunk_hat = standard_dwt(chunk)
                    plan = get_standard_plan(
                        domain, schedule.chunk_shape, grid_position
                    )
                    offset = int(offsets[chunk_index])
                    plan.contributions(
                        chunk_hat,
                        out=shared[
                            offset : offset + int(sizes[chunk_index])
                        ],
                    )
                    source_reads += chunk.size
                    chunks_done += 1
                chunks_span.set(
                    chunks=chunks_done, source_reads=source_reads
                )
            barrier.wait(_BARRIER_TIMEOUT_S)
            # --- phase 2: assemble owned tiles, one write each -------
            with tracer.span("worker.tiles", tiles=int(owned.size)):
                if isinstance(share, _WorkerShare):
                    # Vectorised: one fancy assignment covers every
                    # SHIFT entry, one sequential ``add.at`` covers
                    # every SPLIT entry in serial order, one batch
                    # write pays one counted block write per owned
                    # tile.
                    out = np.zeros(
                        owned.size * block_slots, dtype=np.float64
                    )
                    out[share.a_tgt] = shared[share.a_src]
                    if share.c_tgt.size:
                        np.add.at(out, share.c_tgt, shared[share.c_src])
                    device.write_blocks(
                        block_ids[owned],
                        out.reshape(owned.size, block_slots),
                    )
                else:
                    tile_start = schedule.job_tile_start
                    job_accumulate = schedule.job_accumulate
                    entry_start = schedule.job_entry_start
                    entry_slots = schedule.entry_slots
                    entry_source = schedule.entry_source
                    write_block = device.write_block
                    acc = np.zeros(block_slots, dtype=np.float64)
                    for tile_index in owned:
                        acc[:] = 0.0
                        for job in range(
                            tile_start[tile_index],
                            tile_start[tile_index + 1],
                        ):
                            lo = entry_start[job]
                            hi = entry_start[job + 1]
                            slots = entry_slots[lo:hi]
                            values = shared[entry_source[lo:hi]]
                            if job_accumulate[job]:
                                acc[slots] += values
                            else:
                                acc[slots] = values
                        write_block(int(block_ids[tile_index]), acc)
        del shared  # release the scratch mmap export
        trace_payload = None
        if ship_trace and isinstance(tracer, Tracer):
            trace_payload = {
                "spans": [
                    span_record(span) for span in tracer.spans()
                ],
                "orphan_io": dict(tracer.orphan_io),
                "dropped": tracer.store.dropped,
            }
        results.put(
            (
                worker_index,
                "ok",
                {
                    field: getattr(stats, field)
                    for field in _STATS_FIELDS
                },
                source_reads,
                chunks_done,
                trace_payload,
            )
        )
    except BaseException:
        try:
            barrier.abort()  # fail siblings fast, not on timeout
        except Exception:
            pass
        results.put((worker_index, "error", traceback.format_exc()))


def _forked_worker(ship_trace: bool, *args) -> None:
    """Child entry: gc off (a collection would touch every inherited
    object's gc header and fault in its copy-on-write page; the child
    is short-lived and allocates no cycles worth collecting).

    With tracing on, the inherited tracer is a copy-on-write *copy* —
    spans and charges recorded on it die with the child.  Install a
    small fresh tracer instead; its records ship back through the
    results queue and the driver absorbs them into the real one.
    """
    gc.disable()
    if ship_trace:
        set_tracer(Tracer(max_spans=_CHILD_TRACE_SPANS))
    _scatter_worker(*args, trace_parent=None, ship_trace=ship_trace)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _raw_device_of(store):
    tile_store = getattr(store, "tile_store", None)
    if tile_store is None:
        raise ProcPoolError(
            "the process pool needs a tiled standard store "
            "(store.tile_store missing)"
        )
    device = tile_store.device
    if not isinstance(device, (BlockDevice, MmapBlockDevice)):
        raise ProcPoolError(
            f"the process pool writes blocks directly and would bypass "
            f"{type(device).__name__} — run it on a raw BlockDevice or "
            f"MmapBlockDevice (journal the result afterwards if "
            f"durability is needed)"
        )
    return tile_store, device


def transform_standard_procpool(
    store,
    source: ChunkSource,
    chunk_shape: Sequence[int],
    order: str = "rowmajor",
    skip_zero_chunks: bool = False,
    workers: int = 2,
) -> TransformReport:
    """Bulk-load a fresh tiled standard store with forked scatter workers.

    Drop-in for ``transform_standard_chunked`` on a *fresh*
    :class:`~repro.storage.tiled.TiledStandardStore` over a raw
    (unwrapped) device: bit-identical coefficients, identical block
    directory and allocation order, and block reads/writes identical
    to a serial cached load whose pool holds the whole tile footprint
    (0 reads, ``num_tiles`` writes — tile-major assembly writes each
    tile exactly once).  Buffer-pool hit/miss counters stay zero: the
    pool is never consulted, which is the point.

    The parent participates as worker 0, so ``workers=1`` degenerates
    to the inline two-phase pipeline with no fork at all, and
    ``workers=2`` forks exactly once.

    ``skip_zero_chunks`` needs the chunk values before the schedule is
    built, so it is supported for array sources only.  Requires the
    plan-compiled path and the ``fork`` start method (inherited page
    mappings are the zero-copy transport).
    """
    domain = require_power_of_two_shape(store.shape, "store shape")
    chunk_shape = require_power_of_two_shape(chunk_shape, "chunk_shape")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not plans_enabled():
        raise ProcPoolError(
            "the process pool replays compiled plans; re-enable them "
            "(repro.core.plans) to use it"
        )
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:
        raise ProcPoolError(
            "the process pool shares plan caches and mmap arenas by "
            "forking; this platform offers no fork start method"
        )
    tile_store, device = _raw_device_of(store)
    if tile_store.num_tiles != 0:
        raise ProcPoolError(
            "the process pool is a fresh bulk loader; the store already "
            f"holds {tile_store.num_tiles} tiles — use the serial or "
            f"threaded driver for incremental loads"
        )
    if skip_zero_chunks and callable(source):
        raise ProcPoolError(
            "skip_zero_chunks with a callable source would fetch every "
            "chunk twice across processes; materialise the array or "
            "use transform_standard_chunked"
        )
    grid_shape = tuple(
        extent // chunk_extent
        for extent, chunk_extent in zip(domain, chunk_shape)
    )
    getter = _chunk_getter(source, chunk_shape)
    all_positions = list(_chunk_order(order, grid_shape))
    skipped = 0
    if skip_zero_chunks:
        positions = []
        for grid_position in all_positions:
            if np.any(getter(grid_position)):
                positions.append(grid_position)
            else:
                skipped += 1
    else:
        positions = all_positions
    workers = max(1, min(workers, max(1, len(positions))))
    report = TransformReport(
        extras={
            "order": order,
            "form": "standard",
            "skipped_chunks": skipped,
            "workers": workers,
            "plans": True,
            "mode": "procpool",
        }
    )
    tracer = get_tracer()
    trace_enabled = isinstance(tracer, Tracer)
    with tracer.span(
        "transform.procpool",
        shape=domain,
        chunk=tuple(chunk_shape),
        order=order,
        workers=workers,
    ) as pool_span:
        with tracer.span("procpool.schedule"):
            schedule = _cached_schedule(
                domain, chunk_shape, store.tiling, order, positions
            )
            memo = schedule.partitions.get(workers)
            if memo is None:
                ownership = partition_ownership(
                    schedule, store.tiling, workers
                )
                shares = _worker_shares(schedule, ownership)
                memo = (ownership, shares)
                schedule.partitions[workers] = memo
            ownership, shares = memo
        # Pre-allocate every block in serial first-touch order *before*
        # forking: ids match the serial run and the mmap file never
        # resizes under a child's mapping.
        block_ids = np.array(
            [device.allocate() for _ in range(schedule.num_tiles)],
            dtype=np.int64,
        )
        tile_store.restore_directory(
            {
                key: int(block_ids[tile_index])
                for tile_index, key in enumerate(schedule.tile_keys)
            }
        )
        scratch, scratch_pooled = _acquire_buffer(
            "scratch", max(1, schedule.scratch_floats) * 8
        )
        arena: Optional[mmap.mmap] = None
        arena_pooled = False
        worker_device = None
        try:
            base_id = int(block_ids[0]) if block_ids.size else 0
            if isinstance(device, MmapBlockDevice):
                worker_device = device
            else:
                block_slots = tile_store.block_slots
                arena, arena_pooled = _acquire_buffer(
                    "arena",
                    max(1, schedule.num_tiles * block_slots * 8),
                )
                worker_device = _SharedArenaDevice(
                    arena, block_slots, base_id, schedule.num_tiles
                )
            barrier = ctx.Barrier(workers)
            results = ctx.SimpleQueue()
            processes = [
                ctx.Process(
                    target=_forked_worker,
                    args=(
                        trace_enabled,
                        worker_index,
                        schedule,
                        shares[worker_index]
                        if shares is not None
                        else ownership[worker_index],
                        workers,
                        worker_device,
                        block_ids,
                        scratch,
                        getter,
                        barrier,
                        results,
                    ),
                )
                for worker_index in range(1, workers)
            ]
            for process in processes:
                process.start()
            # The parent is worker 0: it runs its chunk share and its
            # owned tile range inline (no fork, no copy-on-write), and
            # only its fresh worker-local IOStats — merged below like
            # any other worker's — must not leak onto the device.
            original_stats = worker_device.stats
            try:
                # Inline worker 0 records straight into the parent
                # tracer, parented under the procpool span; nothing to
                # ship.
                _scatter_worker(
                    0,
                    schedule,
                    shares[0] if shares is not None else ownership[0],
                    workers,
                    worker_device,
                    block_ids,
                    scratch,
                    getter,
                    barrier,
                    results,
                    trace_parent=pool_span if trace_enabled else None,
                    ship_trace=False,
                )
            finally:
                worker_device.stats = original_stats
            for process in processes:
                process.join()
            outcomes = []
            while not results.empty():
                outcomes.append(results.get())
            results.close()
            errors = [o for o in outcomes if o[1] == "error"]
            if errors:
                # Prefer the root cause over siblings' broken-barrier
                # fallout.
                primary = next(
                    (
                        e
                        for e in errors
                        if "BrokenBarrierError" not in e[2]
                    ),
                    errors[0],
                )
                raise ProcPoolError(
                    f"scatter worker {primary[0]} failed (the store's "
                    f"pre-allocated blocks are orphaned — recreate the "
                    f"store and device/arena before retrying):"
                    f"\n{primary[2]}"
                )
            if len(outcomes) != workers:
                dead = [
                    p.exitcode for p in processes if p.exitcode != 0
                ]
                raise ProcPoolError(
                    f"{workers - len(outcomes)} scatter worker(s) died "
                    f"without reporting (exit codes {dead}; the "
                    f"store's pre-allocated blocks are orphaned — "
                    f"recreate the store and device/arena before "
                    f"retrying)"
                )
            stats = device.stats
            for outcome in outcomes:
                __, __, fields, source_reads, chunks_done, shipped = (
                    outcome
                )
                for field, value in fields.items():
                    setattr(stats, field, getattr(stats, field) + value)
                report.source_reads += source_reads
                report.chunks += chunks_done
                if shipped is not None and trace_enabled:
                    # Forked workers' spans re-id and re-parent under
                    # the procpool span; their orphan I/O and ring
                    # drops fold into the parent tracer, keeping the
                    # receipt lossless across the fork boundary.
                    tracer.absorb(
                        shipped["spans"],
                        orphan_io=shipped["orphan_io"],
                        parent=pool_span,
                        dropped=shipped["dropped"],
                    )
            if arena is not None and schedule.num_tiles:
                # The workers paid one counted write per tile into the
                # shared arena; adopting it into the simulated device
                # is the uncounted restore path, not a second write.
                arena_blocks = np.frombuffer(
                    arena, dtype=np.float64
                )[: schedule.num_tiles * tile_store.block_slots].reshape(
                    schedule.num_tiles, tile_store.block_slots
                )
                if base_id == 0 and device.num_blocks == (
                    schedule.num_tiles
                ):
                    # Fresh device: the arena *is* the block image.
                    # lint: uncounted (adopting the shared arena; workers already charged one write per tile)
                    device.restore_blocks(arena_blocks)
                else:
                    # lint: uncounted (adopting the shared arena; workers already charged one write per tile)
                    full = device.dump_blocks()
                    full[
                        base_id : base_id + schedule.num_tiles
                    ] = arena_blocks
                    # lint: uncounted (adopting the shared arena; workers already charged one write per tile)
                    device.restore_blocks(full)
                del arena_blocks  # release the mmap export before close
            elif isinstance(device, MmapBlockDevice):
                device.sync()
        except BaseException:
            # Blocks were pre-allocated and the directory restored
            # before the workers ran; the device's allocation cursor
            # cannot roll back, so clear the directory rather than
            # leave a half-loaded store that masquerades as populated.
            tile_store.restore_directory({})
            raise
        finally:
            if scratch_pooled:
                _release_buffer("scratch")
            else:
                scratch.close()
            if arena is not None:
                if isinstance(worker_device, _SharedArenaDevice):
                    worker_device._data = None  # release the export
                if arena_pooled:
                    _release_buffer("arena")
                else:
                    arena.close()
        report.extras["ownership"] = [
            {
                "tiles": int(owned.size),
                "entries": int(schedule.entry_counts[owned].sum()),
            }
            for owned in ownership
        ]
        if hasattr(store, "flush"):
            store.flush()
    report.store_stats = store.stats.snapshot()
    return report
