"""I/O-efficient bulk transformation by chunks (paper, Section 5.1).

The dataset is consumed in memory-sized hypercube chunks; each chunk is
transformed in memory, its details are SHIFTed into place and its
average is SPLIT into path contributions.

Standard form (Result 1)
    ``O((N/M)^d (M + log(N/M))^d)`` coefficient I/Os, improving to
    ``O((N/M)^d (M/B + log_B(N/M))^d)`` blocks under tiling.

Non-standard form (Result 2)
    ``O((N/M)^d (M^d + (2^d-1) log(N/M)))`` coefficient I/Os; with
    z-order chunk traversal and a crest buffer of
    ``(2^d - 1) log(N/M)`` coefficients the SPLIT contributions never
    hit the disk before they are final, reaching the optimal
    ``O(N^d)`` (``O((N/B)^d)`` blocks).

Both drivers run through the plan-compiled SHIFT-SPLIT path of
:mod:`repro.core.plans` by default.  The standard driver additionally
supports ``workers=K``: chunk fetch, DWT and plan compilation move to a
thread pool while the main thread applies the precomputed contribution
tensors *in chunk order* — bit-identical output and identical
:class:`~repro.storage.iostats.IOStats` to the serial path.

``parallel_apply`` is a deprecated no-op.  The old thread-scatter path
pinned tiles per scatter on a sharded pool, which churned frames other
threads needed and re-read blocks the serial trace never touched
(3380 vs 1836 reads on the 2d-1024 benchmark).  Threads cannot fix
that under the GIL; the replacement is
:func:`repro.transform.procpool.transform_standard_procpool`, which
partitions tile ownership across processes so no tile is ever touched
by two workers and the block-I/O trace matches the serial path
exactly.
"""

from __future__ import annotations

import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.nonstandard_ops import (
    shift_regions_nonstandard,
    split_contributions_nonstandard,
)
from repro.core.plans import (
    get_nonstandard_plan,
    get_standard_plan,
    plans_enabled,
)
from repro.obs.tracer import get_tracer
from repro.core.standard_ops import apply_chunk_standard_uncached
from repro.transform.report import TransformReport
from repro.util.morton import rowmajor_chunks, zorder_chunks
from repro.util.validation import require_power_of_two_shape
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.nonstandard import nonstandard_dwt
from repro.wavelet.standard import standard_dwt

__all__ = [
    "ChunkSource",
    "transform_standard_chunked",
    "transform_nonstandard_chunked",
]

#: A chunk supplier: either the full dense array, or a callable mapping
#: a chunk grid position to the chunk's data (so benchmarks can stream
#: synthetic data without materialising the whole cube).  With
#: ``workers > 1`` a callable source is invoked from pool threads and
#: must be thread-safe.
ChunkSource = Union[np.ndarray, Callable[[Tuple[int, ...]], np.ndarray]]


def _chunk_getter(
    source: ChunkSource, chunk_shape: Sequence[int]
) -> Callable[[Tuple[int, ...]], np.ndarray]:
    if callable(source):
        return source

    array = np.asarray(source, dtype=np.float64)

    def getter(grid_position: Tuple[int, ...]) -> np.ndarray:
        selector = tuple(
            slice(g * extent, (g + 1) * extent)
            for g, extent in zip(grid_position, chunk_shape)
        )
        return array[selector]

    return getter


def _chunk_order(order: str, grid_shape: Sequence[int]):
    if order == "zorder":
        return zorder_chunks(grid_shape)
    if order == "rowmajor":
        return rowmajor_chunks(grid_shape)
    raise ValueError(f"unknown chunk order {order!r}")


def transform_standard_chunked(
    store,
    source: ChunkSource,
    chunk_shape: Sequence[int],
    order: str = "rowmajor",
    skip_zero_chunks: bool = False,
    workers: int = 1,
    parallel_apply: bool = False,
    use_plans: Optional[bool] = None,
) -> TransformReport:
    """Bulk-load a standard-form transform chunk by chunk (Result 1).

    ``store`` is any standard-store region interface whose ``shape``
    is the full domain; ``chunk_shape`` is the memory budget ``M^d``.

    ``skip_zero_chunks`` models the paper's sparse-data variant
    (``O(z + (z/M^d) log(N/M))``-style cost for ``z`` non-zero values):
    all-zero chunks contribute nothing to any coefficient and are
    skipped entirely, as a chunk directory over sparse data would never
    fetch them.  Skipped chunks are counted in
    ``extras["skipped_chunks"]`` and charge no I/O.

    Parameters
    ----------
    workers:
        With ``workers > 1`` chunk fetch, DWT and plan compilation run
        in a thread pool while the main thread applies each chunk's
        precomputed contribution tensor in chunk order — bit-identical
        coefficients and identical ``IOStats`` to ``workers=1``.
        Requires the plan path (``use_plans`` must not be False).
    parallel_apply:
        Deprecated no-op.  The retired thread-scatter path amplified
        block reads through pool-pin churn; passing ``True`` now emits
        a :class:`DeprecationWarning` and runs the ordered pipeline
        (or the serial loop for ``workers=1``) instead.  For truly
        concurrent scatters use
        :func:`repro.transform.procpool.transform_standard_procpool`.
    use_plans:
        Tri-state: ``None`` follows the global switch of
        :mod:`repro.core.plans`; ``False`` forces the interpreted
        per-call path (the uncached benchmark baseline).
    """
    domain = require_power_of_two_shape(store.shape, "store shape")
    chunk_shape = require_power_of_two_shape(chunk_shape, "chunk_shape")
    if use_plans is None:
        use_plans = plans_enabled()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and not use_plans:
        raise ValueError("workers > 1 requires the plan-compiled path")
    if parallel_apply:
        warnings.warn(
            "parallel_apply is deprecated and ignored: the thread-scatter"
            " path amplified block reads through pool-pin churn; use"
            " repro.transform.procpool.transform_standard_procpool for"
            " truly parallel scatters",
            DeprecationWarning,
            stacklevel=2,
        )
        parallel_apply = False
    grid_shape = tuple(
        extent // chunk_extent
        for extent, chunk_extent in zip(domain, chunk_shape)
    )
    getter = _chunk_getter(source, chunk_shape)
    report = TransformReport(
        extras={
            "order": order,
            "form": "standard",
            "skipped_chunks": 0,
            "workers": workers,
            "plans": bool(use_plans),
        }
    )
    cells_per_chunk = int(np.prod(chunk_shape))
    tracer = get_tracer()

    with tracer.span(
        "transform.standard",
        shape=domain,
        chunk=tuple(chunk_shape),
        order=order,
        workers=workers,
    ):
        if workers == 1:
            for grid_position in _chunk_order(order, grid_shape):
                with tracer.span("chunk", grid=grid_position) as span:
                    chunk = getter(grid_position)
                    if skip_zero_chunks and not np.any(chunk):
                        report.extras["skipped_chunks"] += 1
                        span.set(skipped=True)
                        continue
                    report.source_reads += cells_per_chunk
                    chunk_hat = standard_dwt(chunk)
                    if use_plans:
                        plan = get_standard_plan(
                            domain, chunk_hat.shape, grid_position
                        )
                        plan.apply(store, chunk_hat, fresh=True)
                    else:
                        apply_chunk_standard_uncached(
                            store,
                            chunk_hat,
                            grid_position,
                            fresh=True,
                            chunk_is_transformed=True,
                        )
                    report.chunks += 1
        else:
            _standard_chunked_parallel(
                store,
                getter,
                domain,
                grid_shape,
                order,
                skip_zero_chunks,
                workers,
                report,
                cells_per_chunk,
            )

        if hasattr(store, "flush"):
            store.flush()
    report.store_stats = store.stats.snapshot()
    return report


def _standard_chunked_parallel(
    store,
    getter,
    domain: Tuple[int, ...],
    grid_shape: Tuple[int, ...],
    order: str,
    skip_zero_chunks: bool,
    workers: int,
    report: TransformReport,
    cells_per_chunk: int,
) -> None:
    """The ``workers > 1`` pipeline behind ``transform_standard_chunked``.

    Workers prepare ``(plan, flat contribution tensor)`` per chunk; the
    main thread consumes completed futures *in submission order* and
    applies them, so every store mutation (and hence the block-I/O
    trace) happens in exactly the serial sequence.
    """
    tracer = get_tracer()
    # Pool threads start with an empty span context, so each worker
    # span attaches to the transform root explicitly.
    root_span = tracer.current_span()

    def prepare(grid_position):
        with tracer.span(
            "chunk.prepare", parent=root_span, grid=grid_position
        ) as span:
            chunk = getter(grid_position)
            if skip_zero_chunks and not np.any(chunk):
                span.set(skipped=True)
                return None, None
            chunk_hat = standard_dwt(chunk)
            plan = get_standard_plan(domain, chunk_hat.shape, grid_position)
            flat = plan.contributions(chunk_hat)
            return plan, flat

    def consume(future):
        plan, flat = future.result()
        if plan is None:
            report.extras["skipped_chunks"] += 1
            return
        report.source_reads += cells_per_chunk
        with tracer.span("chunk.apply", grid=plan.grid_position):
            plan.apply_contributions(store, flat, fresh=True)
        report.chunks += 1

    window = 2 * workers
    with ThreadPoolExecutor(max_workers=workers) as executor:
        pending = deque()
        for grid_position in _chunk_order(order, grid_shape):
            pending.append(executor.submit(prepare, grid_position))
            if len(pending) >= window:
                consume(pending.popleft())
        while pending:
            consume(pending.popleft())


class _CrestBuffer:
    """In-memory accumulator for not-yet-final SPLIT contributions.

    Keyed by quadtree node ``(level, position)``; each entry holds the
    ``2^d - 1`` detail accumulators of the node plus a countdown of
    outstanding chunk contributions.  A node is flushed to the store
    the moment its last contribution arrives, so with z-order chunk
    traversal at most one node per level is ever live — the paper's
    ``(2^d - 1) log(N/M)`` extra memory.  Completed nodes are tracked
    in an explicit list as their countdowns hit zero, so draining them
    never rescans the live entries.
    """

    def __init__(self, ndim: int) -> None:
        self._ndim = ndim
        self._entries: Dict[Tuple[int, Tuple[int, ...]], list] = {}
        self._completed: list = []
        self.max_live_nodes = 0

    def is_empty(self) -> bool:
        return not self._entries

    def add(
        self,
        key: NonStandardKey,
        delta: float,
        chunk_level_gap: int,
    ) -> None:
        """Accumulate one contribution; ``chunk_level_gap`` is
        ``level - m`` (how many levels above the chunks the node is)."""
        node_id = (key.level, key.node)
        entry = self._entries.get(node_id)
        if entry is None:
            expected = (1 << (chunk_level_gap * self._ndim)) * (
                (1 << self._ndim) - 1
            )
            entry = [np.zeros((1 << self._ndim) - 1), expected]
            self._entries[node_id] = entry
            self.max_live_nodes = max(self.max_live_nodes, len(self._entries))
        entry[0][key.type_mask - 1] += delta
        entry[1] -= 1
        if entry[1] == 0:
            self._completed.append(node_id)

    def pop_complete(self):
        """Yield and remove nodes that received every contribution."""
        while self._completed:
            node_id = self._completed.pop(0)
            values = self._entries.pop(node_id)[0]
            yield node_id, values


def transform_nonstandard_chunked(
    store,
    source: ChunkSource,
    chunk_edge: int,
    order: str = "zorder",
    buffer_crest: bool = True,
    skip_zero_chunks: bool = False,
    use_plans: Optional[bool] = None,
) -> TransformReport:
    """Bulk-load a non-standard transform chunk by chunk (Result 2).

    With ``buffer_crest`` the SPLIT contributions are accumulated in
    memory and written exactly once when final — combined with
    ``order="zorder"`` this is the paper's optimal ``O(N^d)`` variant.
    With ``buffer_crest=False`` every SPLIT contribution is a
    read-modify-write against the store (the unbuffered bound of
    Result 2).

    ``skip_zero_chunks`` models sparse data: all-zero chunks do no
    SHIFT writes and charge no source reads.  (Under ``buffer_crest``
    their zero SPLIT contributions are still booked — in memory, for
    free — so crest finalisation stays exact.)

    Unless disabled (``use_plans`` / the global switch), the per-chunk
    SHIFT regions and SPLIT path weights come from cached
    :class:`~repro.core.plans.NonStandardChunkPlan` objects instead of
    being re-derived every chunk.
    """
    size = store.size
    ndim = store.ndim
    grid_side = size // chunk_edge
    grid_shape = (grid_side,) * ndim
    getter = _chunk_getter(source, (chunk_edge,) * ndim)
    if use_plans is None:
        use_plans = plans_enabled()
    report = TransformReport(
        extras={
            "order": order,
            "form": "nonstandard",
            "buffered": buffer_crest,
            "skipped_chunks": 0,
            "plans": bool(use_plans),
        }
    )
    cells_per_chunk = chunk_edge**ndim
    crest = _CrestBuffer(ndim) if buffer_crest else None
    scaling_accumulator = 0.0
    chunk_level = chunk_edge.bit_length() - 1

    with get_tracer().span(
        "transform.nonstandard",
        size=size,
        chunk_edge=chunk_edge,
        order=order,
        buffered=bool(buffer_crest),
    ):
        for grid_position in _chunk_order(order, grid_shape):
            chunk = getter(grid_position)
            skipped = skip_zero_chunks and not np.any(chunk)
            plan = (
                get_nonstandard_plan(size, chunk_edge, grid_position)
                if use_plans
                else None
            )
            if skipped:
                report.extras["skipped_chunks"] += 1
                if crest is None:
                    continue
                chunk_hat = None
            else:
                report.source_reads += cells_per_chunk
                chunk_hat = nonstandard_dwt(chunk)
                shift_regions = (
                    plan.shift_regions
                    if plan is not None
                    else shift_regions_nonstandard(size, chunk_edge, grid_position)
                )
                for level, mask, start, chunk_slices in shift_regions:
                    store.set_details(
                        level, mask, start, chunk_hat[chunk_slices]
                    )
            average = (
                0.0 if chunk_hat is None else float(chunk_hat[(0,) * ndim])
            )
            if plan is not None:
                details = plan.split_pairs(average)
                gaps = plan.split_level_gaps
                scaling_delta = average * plan.scaling_weight
            else:
                details, scaling_delta = split_contributions_nonstandard(
                    size, chunk_edge, grid_position, average
                )
                gaps = [key.level - chunk_level for key, __ in details]
            if crest is None:
                for key, delta in details:
                    store.add_detail(key, delta)
                store.add_scaling(scaling_delta)
            else:
                for (key, delta), gap in zip(details, gaps):
                    crest.add(key, delta, gap)
                scaling_accumulator += scaling_delta
                for (level, node), values in crest.pop_complete():
                    if skip_zero_chunks and not np.any(values):
                        continue  # a fully-zero subtree: nothing to store
                    for type_mask in range(1, 1 << ndim):
                        store.set_detail(
                            NonStandardKey(level, node, type_mask),
                            float(values[type_mask - 1]),
                        )
            if not skipped:
                report.chunks += 1

        if crest is not None:
            # Any residue means the source did not cover the whole cube.
            if not crest.is_empty():
                raise RuntimeError(
                    "crest buffer not empty after the last chunk — "
                    "incomplete chunk coverage"
                )
            store.set_scaling(scaling_accumulator)
            report.max_buffer_coefficients = crest.max_live_nodes * (
                (1 << ndim) - 1
            )
        if hasattr(store, "flush"):
            store.flush()
        report.store_stats = store.stats.snapshot()
    return report
