"""I/O-efficient bulk transformation by chunks (paper, Section 5.1).

The dataset is consumed in memory-sized hypercube chunks; each chunk is
transformed in memory, its details are SHIFTed into place and its
average is SPLIT into path contributions.

Standard form (Result 1)
    ``O((N/M)^d (M + log(N/M))^d)`` coefficient I/Os, improving to
    ``O((N/M)^d (M/B + log_B(N/M))^d)`` blocks under tiling.

Non-standard form (Result 2)
    ``O((N/M)^d (M^d + (2^d-1) log(N/M)))`` coefficient I/Os; with
    z-order chunk traversal and a crest buffer of
    ``(2^d - 1) log(N/M)`` coefficients the SPLIT contributions never
    hit the disk before they are final, reaching the optimal
    ``O(N^d)`` (``O((N/B)^d)`` blocks).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple, Union

import numpy as np

from repro.core.nonstandard_ops import (
    shift_regions_nonstandard,
    split_contributions_nonstandard,
)
from repro.core.standard_ops import apply_chunk_standard
from repro.transform.report import TransformReport
from repro.util.morton import rowmajor_chunks, zorder_chunks
from repro.util.validation import require_power_of_two_shape
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.nonstandard import nonstandard_dwt

__all__ = [
    "ChunkSource",
    "transform_standard_chunked",
    "transform_nonstandard_chunked",
]

#: A chunk supplier: either the full dense array, or a callable mapping
#: a chunk grid position to the chunk's data (so benchmarks can stream
#: synthetic data without materialising the whole cube).
ChunkSource = Union[np.ndarray, Callable[[Tuple[int, ...]], np.ndarray]]


def _chunk_getter(
    source: ChunkSource, chunk_shape: Sequence[int]
) -> Callable[[Tuple[int, ...]], np.ndarray]:
    if callable(source):
        return source

    array = np.asarray(source, dtype=np.float64)

    def getter(grid_position: Tuple[int, ...]) -> np.ndarray:
        selector = tuple(
            slice(g * extent, (g + 1) * extent)
            for g, extent in zip(grid_position, chunk_shape)
        )
        return array[selector]

    return getter


def _chunk_order(order: str, grid_shape: Sequence[int]):
    if order == "zorder":
        return zorder_chunks(grid_shape)
    if order == "rowmajor":
        return rowmajor_chunks(grid_shape)
    raise ValueError(f"unknown chunk order {order!r}")


def transform_standard_chunked(
    store,
    source: ChunkSource,
    chunk_shape: Sequence[int],
    order: str = "rowmajor",
    skip_zero_chunks: bool = False,
) -> TransformReport:
    """Bulk-load a standard-form transform chunk by chunk (Result 1).

    ``store`` is any standard-store region interface whose ``shape``
    is the full domain; ``chunk_shape`` is the memory budget ``M^d``.

    ``skip_zero_chunks`` models the paper's sparse-data variant
    (``O(z + (z/M^d) log(N/M))``-style cost for ``z`` non-zero values):
    all-zero chunks contribute nothing to any coefficient and are
    skipped entirely, as a chunk directory over sparse data would never
    fetch them.  Skipped chunks are counted in
    ``extras["skipped_chunks"]`` and charge no I/O.
    """
    domain = require_power_of_two_shape(store.shape, "store shape")
    chunk_shape = require_power_of_two_shape(chunk_shape, "chunk_shape")
    grid_shape = tuple(
        extent // chunk_extent
        for extent, chunk_extent in zip(domain, chunk_shape)
    )
    getter = _chunk_getter(source, chunk_shape)
    report = TransformReport(
        extras={"order": order, "form": "standard", "skipped_chunks": 0}
    )
    cells_per_chunk = int(np.prod(chunk_shape))
    for grid_position in _chunk_order(order, grid_shape):
        chunk = getter(grid_position)
        if skip_zero_chunks and not np.any(chunk):
            report.extras["skipped_chunks"] += 1
            continue
        report.source_reads += cells_per_chunk
        apply_chunk_standard(store, chunk, grid_position, fresh=True)
        report.chunks += 1
    if hasattr(store, "flush"):
        store.flush()
    report.store_stats = store.stats.snapshot()
    return report


class _CrestBuffer:
    """In-memory accumulator for not-yet-final SPLIT contributions.

    Keyed by quadtree node ``(level, position)``; each entry holds the
    ``2^d - 1`` detail accumulators of the node plus a countdown of
    outstanding chunk contributions.  A node is flushed to the store
    the moment its last contribution arrives, so with z-order chunk
    traversal at most one node per level is ever live — the paper's
    ``(2^d - 1) log(N/M)`` extra memory.
    """

    def __init__(self, ndim: int) -> None:
        self._ndim = ndim
        self._entries: Dict[Tuple[int, Tuple[int, ...]], list] = {}
        self.max_live_nodes = 0

    def is_empty(self) -> bool:
        return not self._entries

    def add(
        self,
        key: NonStandardKey,
        delta: float,
        chunk_level_gap: int,
    ) -> None:
        """Accumulate one contribution; ``chunk_level_gap`` is
        ``level - m`` (how many levels above the chunks the node is)."""
        node_id = (key.level, key.node)
        entry = self._entries.get(node_id)
        if entry is None:
            expected = (1 << (chunk_level_gap * self._ndim)) * (
                (1 << self._ndim) - 1
            )
            entry = [np.zeros((1 << self._ndim) - 1), expected]
            self._entries[node_id] = entry
            self.max_live_nodes = max(self.max_live_nodes, len(self._entries))
        entry[0][key.type_mask - 1] += delta
        entry[1] -= 1

    def pop_complete(self):
        """Yield and remove nodes that received every contribution."""
        complete = [
            node_id
            for node_id, entry in self._entries.items()
            if entry[1] == 0
        ]
        for node_id in complete:
            values = self._entries.pop(node_id)[0]
            yield node_id, values


def transform_nonstandard_chunked(
    store,
    source: ChunkSource,
    chunk_edge: int,
    order: str = "zorder",
    buffer_crest: bool = True,
    skip_zero_chunks: bool = False,
) -> TransformReport:
    """Bulk-load a non-standard transform chunk by chunk (Result 2).

    With ``buffer_crest`` the SPLIT contributions are accumulated in
    memory and written exactly once when final — combined with
    ``order="zorder"`` this is the paper's optimal ``O(N^d)`` variant.
    With ``buffer_crest=False`` every SPLIT contribution is a
    read-modify-write against the store (the unbuffered bound of
    Result 2).

    ``skip_zero_chunks`` models sparse data: all-zero chunks do no
    SHIFT writes and charge no source reads.  (Under ``buffer_crest``
    their zero SPLIT contributions are still booked — in memory, for
    free — so crest finalisation stays exact.)
    """
    size = store.size
    ndim = store.ndim
    grid_side = size // chunk_edge
    grid_shape = (grid_side,) * ndim
    getter = _chunk_getter(source, (chunk_edge,) * ndim)
    report = TransformReport(
        extras={
            "order": order,
            "form": "nonstandard",
            "buffered": buffer_crest,
            "skipped_chunks": 0,
        }
    )
    cells_per_chunk = chunk_edge**ndim
    crest = _CrestBuffer(ndim) if buffer_crest else None
    scaling_accumulator = 0.0

    for grid_position in _chunk_order(order, grid_shape):
        chunk = getter(grid_position)
        skipped = skip_zero_chunks and not np.any(chunk)
        if skipped:
            report.extras["skipped_chunks"] += 1
            if crest is None:
                continue
            chunk_hat = None
        else:
            report.source_reads += cells_per_chunk
            chunk_hat = nonstandard_dwt(chunk)
            for level, mask, start, chunk_slices in shift_regions_nonstandard(
                size, chunk_edge, grid_position
            ):
                store.set_details(
                    level, mask, start, chunk_hat[chunk_slices]
                )
        average = (
            0.0 if chunk_hat is None else float(chunk_hat[(0,) * ndim])
        )
        details, scaling_delta = split_contributions_nonstandard(
            size, chunk_edge, grid_position, average
        )
        if crest is None:
            for key, delta in details:
                store.add_detail(key, delta)
            store.add_scaling(scaling_delta)
        else:
            chunk_level = chunk_edge.bit_length() - 1
            for key, delta in details:
                crest.add(key, delta, key.level - chunk_level)
            scaling_accumulator += scaling_delta
            for (level, node), values in crest.pop_complete():
                if skip_zero_chunks and not np.any(values):
                    continue  # a fully-zero subtree: nothing to store
                for type_mask in range(1, 1 << ndim):
                    store.set_detail(
                        NonStandardKey(level, node, type_mask),
                        float(values[type_mask - 1]),
                    )
        if not skipped:
            report.chunks += 1

    if crest is not None:
        # Any residue means the source did not cover the whole cube.
        if not crest.is_empty():
            raise RuntimeError(
                "crest buffer not empty after the last chunk — "
                "incomplete chunk coverage"
            )
        store.set_scaling(scaling_accumulator)
        report.max_buffer_coefficients = crest.max_live_nodes * (
            (1 << ndim) - 1
        )
    if hasattr(store, "flush"):
        store.flush()
    report.store_stats = store.stats.snapshot()
    return report
