"""Shared low-level utilities: bit math, dyadic geometry, z-order curves."""

from repro.util.bits import ceil_div, ceil_log, ilog2, is_power_of_two
from repro.util.dyadic import (
    DyadicBox,
    DyadicInterval,
    dyadic_box_cover,
    dyadic_cover,
)
from repro.util.padding import crop_to_shape, next_power_of_two, pad_to_pow2
from repro.util.morton import (
    morton_decode,
    morton_encode,
    rowmajor_chunks,
    zorder_chunks,
)
from repro.util.validation import (
    as_float_array,
    require_in_range,
    require_power_of_two,
    require_power_of_two_shape,
)

__all__ = [
    "DyadicBox",
    "DyadicInterval",
    "as_float_array",
    "ceil_div",
    "crop_to_shape",
    "ceil_log",
    "dyadic_box_cover",
    "dyadic_cover",
    "ilog2",
    "is_power_of_two",
    "morton_decode",
    "morton_encode",
    "next_power_of_two",
    "pad_to_pow2",
    "require_in_range",
    "require_power_of_two",
    "require_power_of_two_shape",
    "rowmajor_chunks",
    "zorder_chunks",
]
