"""Padding helpers for non-power-of-two data.

The wavelet machinery (like the paper) assumes power-of-two extents.
Real datasets rarely oblige; these helpers zero-pad an array up to the
next powers of two and crop results back, so downstream users can feed
arbitrary shapes through the public API.

Zero padding composes cleanly with SHIFT-SPLIT: the padded region is a
collection of all-zero chunks, which the sparse-aware bulk transform
(``skip_zero_chunks``) skips at no I/O cost.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import as_float_array

__all__ = ["next_power_of_two", "pad_to_pow2", "crop_to_shape"]


def next_power_of_two(value: int) -> int:
    """Smallest power of two ``>= value`` (``value >= 1``)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def pad_to_pow2(data) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Zero-pad every axis up to the next power of two.

    Returns ``(padded, original_shape)``; pass the shape to
    :func:`crop_to_shape` to undo.
    """
    array = as_float_array(data)
    original_shape = array.shape
    padded_shape = tuple(
        next_power_of_two(extent) for extent in original_shape
    )
    if padded_shape == original_shape:
        return array.copy(), original_shape
    padded = np.zeros(padded_shape, dtype=np.float64)
    padded[tuple(slice(0, extent) for extent in original_shape)] = array
    return padded, original_shape


def crop_to_shape(data, shape: Sequence[int]) -> np.ndarray:
    """Crop ``data`` back to ``shape`` (inverse of :func:`pad_to_pow2`)."""
    array = np.asarray(data)
    shape = tuple(int(extent) for extent in shape)
    if len(shape) != array.ndim:
        raise ValueError(
            f"shape rank {len(shape)} does not match array rank {array.ndim}"
        )
    if any(
        extent > available
        for extent, available in zip(shape, array.shape)
    ):
        raise ValueError(f"cannot crop {array.shape} down to {shape}")
    return array[tuple(slice(0, extent) for extent in shape)].copy()
