"""Dyadic intervals and dyadic boxes.

A *dyadic interval* (paper, Definition 3) is ``[k * 2^j, (k+1) * 2^j - 1]``
for a scale ``j >= 0`` and a translation ``k >= 0``.  Haar wavelet and
scaling coefficients have dyadic support intervals (Property 1), and the
SHIFT/SPLIT operations are defined for dyadic sub-regions, so this class
is the vocabulary the whole library speaks.

A *dyadic box* is a cross product of dyadic intervals, one per dimension;
the multidimensional SHIFT-SPLIT operations act on dyadic boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.util.bits import ilog2, is_power_of_two


@dataclass(frozen=True)
class DyadicInterval:
    """The dyadic interval ``I_{scale, translation}``.

    Attributes
    ----------
    scale:
        The ``j`` in ``I_{j,k}``; the interval has length ``2**scale``.
    translation:
        The ``k`` in ``I_{j,k}``; the interval starts at ``k * 2**scale``.
    """

    scale: int
    translation: int

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError(f"scale must be >= 0, got {self.scale}")
        if self.translation < 0:
            raise ValueError(
                f"translation must be >= 0, got {self.translation}"
            )

    @property
    def length(self) -> int:
        """Number of points covered: ``2**scale``."""
        return 1 << self.scale

    @property
    def start(self) -> int:
        """First covered index (inclusive)."""
        return self.translation << self.scale

    @property
    def stop(self) -> int:
        """One past the last covered index (exclusive)."""
        return (self.translation + 1) << self.scale

    @classmethod
    def from_range(cls, start: int, stop: int) -> "DyadicInterval":
        """Build the dyadic interval ``[start, stop)``.

        Raises ``ValueError`` unless the range really is dyadic, i.e.
        its length is a power of two and its start is aligned to it.
        """
        length = stop - start
        if not is_power_of_two(length):
            raise ValueError(
                f"range [{start}, {stop}) has non-power-of-two length"
            )
        scale = ilog2(length)
        if start % length != 0:
            raise ValueError(
                f"range [{start}, {stop}) is not aligned to its length"
            )
        return cls(scale=scale, translation=start // length)

    def contains(self, other: "DyadicInterval") -> bool:
        """True if ``other`` lies completely inside this interval.

        This is the paper's *covers* relation (Definition 2) applied to
        support intervals: nested dyadic intervals are either disjoint
        or one contains the other.
        """
        return self.start <= other.start and other.stop <= self.stop

    def overlaps(self, other: "DyadicInterval") -> bool:
        """True if the two intervals share at least one point."""
        return self.start < other.stop and other.start < self.stop

    def parent(self) -> "DyadicInterval":
        """The dyadic interval one scale up that contains this one."""
        return DyadicInterval(self.scale + 1, self.translation // 2)

    def is_left_child(self) -> bool:
        """True if this interval is the left half of its parent."""
        return self.translation % 2 == 0

    def halves(self) -> Tuple["DyadicInterval", "DyadicInterval"]:
        """The two child intervals one scale down (requires scale > 0)."""
        if self.scale == 0:
            raise ValueError("a scale-0 interval has no halves")
        left = DyadicInterval(self.scale - 1, 2 * self.translation)
        right = DyadicInterval(self.scale - 1, 2 * self.translation + 1)
        return left, right


@dataclass(frozen=True)
class DyadicBox:
    """A cross product of per-dimension dyadic intervals."""

    intervals: Tuple[DyadicInterval, ...]

    @property
    def ndim(self) -> int:
        return len(self.intervals)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(interval.length for interval in self.intervals)

    @property
    def starts(self) -> Tuple[int, ...]:
        return tuple(interval.start for interval in self.intervals)

    @property
    def cells(self) -> int:
        total = 1
        for interval in self.intervals:
            total *= interval.length
        return total

    @classmethod
    def from_corner(
        cls, corner: Sequence[int], shape: Sequence[int]
    ) -> "DyadicBox":
        """Build a dyadic box from a corner point and a shape.

        Every extent must be a power of two and every corner coordinate
        must be aligned to the corresponding extent.
        """
        if len(corner) != len(shape):
            raise ValueError("corner and shape must have equal length")
        intervals = tuple(
            DyadicInterval.from_range(start, start + extent)
            for start, extent in zip(corner, shape)
        )
        return cls(intervals)

    def is_cubic(self) -> bool:
        """True if all per-dimension extents are equal."""
        lengths = {interval.length for interval in self.intervals}
        return len(lengths) == 1

    def as_slices(self) -> Tuple[slice, ...]:
        """Numpy-style slices selecting this box from a full array."""
        return tuple(
            slice(interval.start, interval.stop) for interval in self.intervals
        )

    def contains(self, other: "DyadicBox") -> bool:
        if self.ndim != other.ndim:
            raise ValueError("dimension mismatch")
        return all(
            mine.contains(theirs)
            for mine, theirs in zip(self.intervals, other.intervals)
        )


def dyadic_cover(start: int, stop: int) -> Iterator[DyadicInterval]:
    """Decompose an arbitrary range ``[start, stop)`` into maximal
    disjoint dyadic intervals (the canonical dyadic cover).

    The paper reduces arbitrary selection ranges to collections of
    dyadic ranges (Section 5.4); this is that reduction.  The cover has
    at most ``2 * log2(stop - start) + O(1)`` pieces.

    >>> [(i.start, i.stop) for i in dyadic_cover(3, 9)]
    [(3, 4), (4, 8), (8, 9)]
    """
    if start < 0 or stop < start:
        raise ValueError(f"invalid range [{start}, {stop})")
    position = start
    while position < stop:
        remaining = stop - position
        # Largest power of two that fits in the remaining range...
        size = 1 << (remaining.bit_length() - 1)
        # ...capped by the alignment of the current position (position 0
        # is aligned to everything).
        alignment = position & -position
        if alignment and alignment < size:
            size = alignment
        yield DyadicInterval.from_range(position, position + size)
        position += size


def dyadic_box_cover(
    starts: Sequence[int], stops: Sequence[int]
) -> Iterator[DyadicBox]:
    """Cover an arbitrary axis-aligned box with disjoint dyadic boxes.

    The cover is the cross product of the per-dimension canonical
    dyadic covers.
    """
    if len(starts) != len(stops):
        raise ValueError("starts and stops must have equal length")
    per_dim = [list(dyadic_cover(lo, hi)) for lo, hi in zip(starts, stops)]

    def recurse(dim: int, chosen: list) -> Iterator[DyadicBox]:
        if dim == len(per_dim):
            yield DyadicBox(tuple(chosen))
            return
        for interval in per_dim[dim]:
            chosen.append(interval)
            yield from recurse(dim + 1, chosen)
            chosen.pop()

    yield from recurse(0, [])
