"""Bit-level helpers used throughout the wavelet machinery.

All sizes in this library (domain sizes, chunk sizes, tile edges) are
powers of two, so fast exact integer log2 and power-of-two checks are
needed everywhere.  Keeping them in one place also keeps the error
messages consistent.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive integral power of two.

    >>> is_power_of_two(8)
    True
    >>> is_power_of_two(0)
    False
    >>> is_power_of_two(6)
    False
    """
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises ``ValueError`` if ``value`` is not a positive power of two;
    this guards every public entry point that takes a domain size.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value!r}")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def ceil_log(value: int, base: int) -> int:
    """Smallest integer ``e`` with ``base**e >= value`` (both >= 1).

    Used for the ``log_B(N/M)`` terms in the paper's tile-count formulas.
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    exponent = 0
    power = 1
    while power < value:
        power *= base
        exponent += 1
    return exponent
