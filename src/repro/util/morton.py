"""Morton (z-order) curves.

Section 5.1 of the paper reduces the non-standard bulk transformation to
the optimal ``O(N^d)`` I/O bound by visiting chunks in z-order and
buffering the coefficients affected by SPLIT until they are finalised.
Section 5.3 reuses the same access pattern for multidimensional stream
synopses.  These helpers provide the encode/decode and the ordered chunk
walk.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple


def morton_encode(coords: Sequence[int]) -> int:
    """Interleave the bits of ``coords`` into a single Morton code.

    Bit ``b`` of dimension ``i`` lands at position ``b * d + i`` so that
    codes sort in z-order.  Works for any number of dimensions and any
    coordinate magnitude.
    """
    code = 0
    dims = len(coords)
    if dims == 0:
        raise ValueError("need at least one coordinate")
    max_bits = max(c.bit_length() for c in coords) if any(coords) else 1
    for bit in range(max_bits):
        for dim, coord in enumerate(coords):
            if coord >> bit & 1:
                code |= 1 << (bit * dims + dim)
    return code


def morton_decode(code: int, ndim: int) -> Tuple[int, ...]:
    """Invert :func:`morton_encode` for ``ndim`` dimensions."""
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
    coords = [0] * ndim
    bit = 0
    while code >> (bit * ndim):
        for dim in range(ndim):
            if code >> (bit * ndim + dim) & 1:
                coords[dim] |= 1 << bit
        bit += 1
    return tuple(coords)


def zorder_chunks(grid_shape: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Yield every cell of an integer grid in z-order.

    ``grid_shape`` gives the per-dimension number of chunks.  For
    non-cubic grids the walk enumerates codes of the bounding cube and
    skips out-of-range cells, which preserves the z-order of the cells
    that do exist.
    """
    shape = tuple(grid_shape)
    if not shape or any(extent < 1 for extent in shape):
        raise ValueError(f"invalid grid shape {shape!r}")
    total = 1
    for extent in shape:
        total *= extent
    side = max(shape)
    bits = (side - 1).bit_length() if side > 1 else 1
    emitted = 0
    for code in range(1 << (bits * len(shape))):
        coords = morton_decode(code, len(shape))
        if all(c < extent for c, extent in zip(coords, shape)):
            yield coords
            emitted += 1
            if emitted == total:
                return


def rowmajor_chunks(grid_shape: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Yield every cell of an integer grid in row-major (C) order.

    The ablation baseline for :func:`zorder_chunks`.
    """
    shape = tuple(grid_shape)
    if not shape or any(extent < 1 for extent in shape):
        raise ValueError(f"invalid grid shape {shape!r}")

    def recurse(dim: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if dim == len(shape):
            yield prefix
            return
        for coord in range(shape[dim]):
            yield from recurse(dim + 1, prefix + (coord,))

    yield from recurse(0, ())
