"""Argument-validation helpers shared by the public API surface."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.bits import is_power_of_two


def require_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value


def require_power_of_two_shape(
    shape: Sequence[int], name: str = "shape"
) -> Tuple[int, ...]:
    """Validate that every extent of ``shape`` is a positive power of two."""
    shape = tuple(int(extent) for extent in shape)
    if not shape:
        raise ValueError(f"{name} must have at least one dimension")
    for axis, extent in enumerate(shape):
        if not is_power_of_two(extent):
            raise ValueError(
                f"{name}[{axis}] must be a positive power of two, got {extent}"
            )
    return shape


def as_float_array(data, name: str = "data") -> np.ndarray:
    """Convert ``data`` to a float64 ndarray, copying only if needed."""
    array = np.asarray(data, dtype=np.float64)
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return array


def require_in_range(value: int, low: int, high: int, name: str) -> int:
    """Validate ``low <= value <= high`` and return ``value``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
