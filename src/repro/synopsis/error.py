"""Approximation-error metrics for wavelet synopses."""

from __future__ import annotations

import numpy as np

__all__ = ["sse", "relative_l2_error", "max_abs_error"]


def sse(estimate, truth) -> float:
    """Sum of squared errors."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {estimate.shape} vs {truth.shape}"
        )
    return float(((estimate - truth) ** 2).sum())


def relative_l2_error(estimate, truth) -> float:
    """``||estimate - truth|| / ||truth||`` (0 for a perfect match;
    defined as 0 when both are identically zero)."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {estimate.shape} vs {truth.shape}"
        )
    denominator = float(np.linalg.norm(truth))
    numerator = float(np.linalg.norm(estimate - truth))
    if denominator == 0.0:
        return 0.0 if numerator == 0.0 else float("inf")
    return numerator / denominator


def max_abs_error(estimate, truth) -> float:
    """Largest absolute cell error."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {estimate.shape} vs {truth.shape}"
        )
    return float(np.abs(estimate - truth).max())
