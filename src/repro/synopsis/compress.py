"""Offline best K-term wavelet synopses (both decomposition forms).

The stream maintainers of :mod:`repro.streams` build these
incrementally; here they are built offline from a full transform —
the reference the streaming results are tested against, and the tool
behind the paper's compressibility comparison between the standard and
non-standard forms ("range aggregate queries can be highly compressed
using the standard form", Section 3.1).

Selection is L2-optimal: coefficients are ranked by unnormalised
magnitude times basis norm, which under an orthogonal basis minimises
the reconstruction SSE for any fixed K.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.bits import ilog2
from repro.util.validation import as_float_array, require_power_of_two_shape
from repro.wavelet.layout import index_to_detail
from repro.wavelet.nonstandard import nonstandard_dwt, nonstandard_idwt
from repro.wavelet.standard import standard_dwt, standard_idwt

__all__ = [
    "standard_significance",
    "nonstandard_significance",
    "best_k_standard",
    "best_k_nonstandard",
    "threshold_standard",
]


def standard_significance(shape: Tuple[int, ...]) -> np.ndarray:
    """Basis-norm weights of every standard-form coefficient.

    ``significance = |coefficient| * weight`` is the L2-optimal top-K
    ranking key; the weight at position ``(t_1..t_d)`` is the product
    of per-axis ``2^{level/2}`` factors.
    """
    shape = require_power_of_two_shape(shape)
    weights = np.ones(shape, dtype=np.float64)
    for axis, extent in enumerate(shape):
        n = ilog2(extent)
        axis_weights = np.empty(extent, dtype=np.float64)
        axis_weights[0] = 2.0 ** (n / 2.0)
        for index in range(1, extent):
            level, __ = index_to_detail(n, index)
            axis_weights[index] = 2.0 ** (level / 2.0)
        reshaped = [1] * len(shape)
        reshaped[axis] = extent
        weights = weights * axis_weights.reshape(reshaped)
    return weights


def nonstandard_significance(size: int, ndim: int) -> np.ndarray:
    """Basis-norm weights of every non-standard (Mallat-layout)
    coefficient: ``2^{level * d / 2}``, and ``2^{n d / 2}`` for the
    overall average."""
    n = ilog2(size)
    weights = np.empty((size,) * ndim, dtype=np.float64)
    weights[(0,) * ndim] = 2.0 ** (n * ndim / 2.0)
    for level in range(1, n + 1):
        width = size >> level
        norm = 2.0 ** (level * ndim / 2.0)
        for type_mask in range(1, 1 << ndim):
            selector = tuple(
                slice(width, 2 * width)
                if (type_mask >> axis) & 1
                else slice(0, width)
                for axis in range(ndim)
            )
            weights[selector] = norm
    return weights


def best_k_standard(data, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Best K-term standard-form synopsis of ``data``.

    Returns ``(sparse_transform, reconstruction)``: the transform with
    all but the K most significant coefficients zeroed, and its
    inverse.
    """
    array = as_float_array(data)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    hat = standard_dwt(array)
    significance = np.abs(hat) * standard_significance(array.shape)
    keep = min(k, hat.size)
    sparse = np.zeros_like(hat)
    if keep:
        flat_order = np.argsort(-significance.ravel(), kind="stable")[:keep]
        sparse.ravel()[flat_order] = hat.ravel()[flat_order]
    return sparse, standard_idwt(sparse)


def best_k_nonstandard(data, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Best K-term non-standard synopsis of a cubic ``data``."""
    array = as_float_array(data)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    hat = nonstandard_dwt(array)
    significance = np.abs(hat) * nonstandard_significance(
        array.shape[0], array.ndim
    )
    keep = min(k, hat.size)
    sparse = np.zeros_like(hat)
    if keep:
        flat_order = np.argsort(-significance.ravel(), kind="stable")[:keep]
        sparse.ravel()[flat_order] = hat.ravel()[flat_order]
    return sparse, nonstandard_idwt(sparse)


def threshold_standard(
    data, epsilon: float
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Keep every standard-form coefficient with significance
    ``>= epsilon`` (the threshold dual of top-K).

    Returns ``(sparse_transform, reconstruction, kept_count)``.  The
    retained SSE is directly bounded: dropping a coefficient of
    significance ``s`` adds exactly ``s^2`` to the reconstruction SSE,
    so the total error is the sum of squared dropped significances.
    """
    array = as_float_array(data)
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    hat = standard_dwt(array)
    significance = np.abs(hat) * standard_significance(array.shape)
    mask = significance >= epsilon
    sparse = np.where(mask, hat, 0.0)
    return sparse, standard_idwt(sparse), int(mask.sum())
