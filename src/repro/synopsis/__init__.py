"""Offline wavelet synopses and approximation-error metrics."""

from repro.synopsis.compress import (
    best_k_nonstandard,
    best_k_standard,
    nonstandard_significance,
    standard_significance,
    threshold_standard,
)
from repro.synopsis.error import max_abs_error, relative_l2_error, sse

__all__ = [
    "best_k_nonstandard",
    "best_k_standard",
    "max_abs_error",
    "nonstandard_significance",
    "relative_l2_error",
    "sse",
    "standard_significance",
    "threshold_standard",
]
