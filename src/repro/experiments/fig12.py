"""Figure 12 — effect of larger tiles on bulk-transformation block I/O.

Paper setup: d = 2, memory of 64 coefficients, I/O measured in *disk
blocks* under the tiling allocation, dataset size swept, tile sizes
1 KB and 4 KB, both decomposition forms.

Expected shape: block I/O grows linearly with dataset size; larger
tiles cut it by roughly the tile-size ratio; the non-standard form
needs no more blocks than the standard form.

Scaled-down reproduction: square 2-d datasets with
``chunk 8 x 8 = 64`` coefficients of memory; tile edges ``B`` give
blocks of ``B^2`` coefficients (``B=8`` -> 512 B, ``B=16`` -> 2 KB at
8 bytes per coefficient — power-of-two stand-ins for the paper's byte
sizes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import print_experiment
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)

__all__ = ["run_fig12", "main"]


def _chunk_source(edge: int, seed: int):
    """Deterministic per-chunk synthetic data, generated on demand so
    large datasets never materialise in memory."""

    def getter(grid_position: Tuple[int, ...]) -> np.ndarray:
        rng = np.random.default_rng(
            (seed, *grid_position)
        )
        return rng.normal(size=(edge, edge))

    return getter


def run_fig12(
    dataset_edges: Sequence[int] = (128, 256, 512),
    tile_edges: Sequence[int] = (8, 16),
    chunk_edge: int = 8,
    pool_blocks: int = 64,
    seed: int = 13,
) -> List[Dict]:
    """Sweep dataset size and tile size, both forms, block I/O."""
    rows: List[Dict] = []
    for dataset_edge in dataset_edges:
        source = _chunk_source(chunk_edge, seed)
        for tile_edge in tile_edges:
            std_store = TiledStandardStore(
                (dataset_edge, dataset_edge),
                block_edge=tile_edge,
                pool_capacity=pool_blocks,
            )
            std_report = transform_standard_chunked(
                std_store, source, (chunk_edge, chunk_edge)
            )
            ns_store = TiledNonStandardStore(
                dataset_edge,
                2,
                block_edge=tile_edge,
                pool_capacity=pool_blocks,
            )
            ns_report = transform_nonstandard_chunked(
                ns_store, source, chunk_edge, order="zorder"
            )
            rows.append(
                {
                    "dataset_edge": dataset_edge,
                    "cells": dataset_edge**2,
                    "tile_edge": tile_edge,
                    "tile_bytes": tile_edge**2 * 8,
                    "standard_block_io": std_report.block_ios,
                    "nonstandard_block_io": ns_report.block_ios,
                }
            )
    return rows


def main(
    dataset_edges: Sequence[int] = (128, 256, 512),
    tile_edges: Sequence[int] = (8, 16),
) -> List[Dict]:
    rows = run_fig12(dataset_edges=dataset_edges, tile_edges=tile_edges)
    print_experiment(
        "Figure 12 — transformation I/O (blocks) vs dataset size and "
        "tile size; d=2, memory = 64 coefficients",
        rows,
        [
            "dataset_edge",
            "cells",
            "tile_edge",
            "tile_bytes",
            "standard_block_io",
            "nonstandard_block_io",
        ],
        note=(
            "Expect: linear growth in dataset size; larger tiles reduce "
            "block I/O; non-standard <= standard."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
