"""Figure 13 — SHIFT-SPLIT appending over time.

Paper setup: PRECIPITATION (8 x 8 spatial, 32 samples per month), one
month appended at a time, block I/O per append plotted over time for
tile sizes 2K/4K/8K.  Sudden jumps mark domain expansions (the time
dimension doubling); the jumps shrink as blocks grow.

Reproduction: synthetic PRECIPITATION-like months (see
:mod:`repro.datasets.synthetic`), tile edges swept; each row is one
appended month for one tile size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.append.appender import StandardAppender
from repro.datasets.synthetic import precipitation_months
from repro.experiments.common import print_experiment
from repro.storage.tiled import TiledStandardStore

__all__ = ["run_fig13", "main"]


def run_fig13(
    months: int = 48,
    tile_edges: Sequence[int] = (2, 4, 8),
    spatial=(8, 8),
    samples_per_month: int = 32,
    pool_blocks: int = 64,
    seed: int = 11,
) -> List[Dict]:
    """Append ``months`` monthly slabs for each tile size."""
    rows: List[Dict] = []
    for tile_edge in tile_edges:
        appender = StandardAppender(
            slab_shape=spatial + (samples_per_month,),
            grow_axis=2,
            store_factory=lambda shape, stats, edge=tile_edge: TiledStandardStore(
                shape,
                block_edge=edge,
                pool_capacity=pool_blocks,
                stats=stats,
            ),
        )
        for month, slab in enumerate(
            precipitation_months(
                months, spatial, samples_per_month, seed=seed
            )
        ):
            record = appender.append(slab)
            rows.append(
                {
                    "tile_edge": tile_edge,
                    "tile_bytes": tile_edge**3 * 8,
                    "month": month,
                    "day": month * samples_per_month,
                    "block_io": record.io_delta.block_ios,
                    "expanded": record.expanded,
                    "time_extent": record.domain_shape[2],
                }
            )
    return rows


def main(months: int = 48) -> List[Dict]:
    rows = run_fig13(months=months)
    expansion_rows = [row for row in rows if row["expanded"]]
    print_experiment(
        "Figure 13 — appending I/O (blocks) per month; "
        "PRECIPITATION-like 8x8x32/month",
        expansion_rows
        + sorted(
            (r for r in rows if not r["expanded"] and r["month"] % 8 == 0),
            key=lambda r: (r["tile_edge"], r["month"]),
        ),
        ["tile_edge", "tile_bytes", "month", "block_io", "expanded", "time_extent"],
        note=(
            "Expansion months (top) show the jump cost; steady months "
            "(sampled) show the flat baseline.  Larger tiles damp the "
            "jumps."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
