"""Stream synopsis quality — streaming best-K equals offline best-K.

The stream maintainers of Section 5.3 are exact: because every
coefficient finalises with precisely the value the offline transform
assigns it, the streaming top-K set (and therefore the approximation
error) must coincide with the offline L2-optimal K-term synopsis.
This experiment confirms that across a K sweep on bursty data and
reports the error curve.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.streams import bursty_stream
from repro.experiments.common import print_experiment
from repro.streams.stream1d import StreamSynopsis1D
from repro.synopsis.compress import best_k_standard
from repro.synopsis.error import relative_l2_error

__all__ = ["run_stream_quality", "main"]


def run_stream_quality(
    domain_log2: int = 14,
    k_values: Sequence[int] = (8, 32, 128, 512),
    buffer_size: int = 64,
    seed: int = 59,
) -> List[Dict]:
    size = 1 << domain_log2
    stream = bursty_stream(size, burst_probability=0.002, seed=seed)
    rows: List[Dict] = []
    for k in k_values:
        synopsis = StreamSynopsis1D(size, k=k, buffer_size=buffer_size)
        synopsis.extend(stream)
        streaming_error = relative_l2_error(synopsis.estimate(), stream)
        __, offline_estimate = best_k_standard(stream, k)
        offline_error = relative_l2_error(offline_estimate, stream)
        rows.append(
            {
                "K": k,
                "streaming_error": round(streaming_error, 5),
                "offline_error": round(offline_error, 5),
                "gap": round(abs(streaming_error - offline_error), 6),
                "crest_updates_per_item": round(
                    synopsis.crest_updates / size, 4
                ),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_stream_quality()
    print_experiment(
        "Stream quality — streaming K-term synopsis vs offline best-K "
        "(bursty stream)",
        rows,
        [
            "K",
            "streaming_error",
            "offline_error",
            "gap",
            "crest_updates_per_item",
        ],
        note=(
            "The streaming synopsis must match the offline optimum "
            "(gap ~ 0, ties aside) while paying only the buffered "
            "update cost."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
