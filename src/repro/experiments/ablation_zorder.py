"""Ablation — chunk traversal order and crest buffering for the
non-standard bulk transformation.

Section 5.1 reaches the optimal ``O(N^d)`` bound for the non-standard
form only by (a) buffering SPLIT contributions in memory until final
and (b) visiting chunks in z-order so the buffer stays at
``(2^d - 1) log(N/M)`` coefficients.  This ablation isolates both
choices:

* z-order + buffer  — optimal I/O, minimal buffer (the paper's choice)
* row-major + buffer — optimal I/O but the buffer balloons
* row-major + no buffer — minimal memory but extra SPLIT I/O
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.synthetic import random_cube
from repro.experiments.common import print_experiment
from repro.storage.dense import DenseNonStandardStore
from repro.transform.chunked import transform_nonstandard_chunked

__all__ = ["run_ablation_zorder", "main"]


def run_ablation_zorder(
    edge: int = 128, chunk_edge: int = 8, ndim: int = 2, seed: int = 37
) -> List[Dict]:
    data = random_cube((edge,) * ndim, seed=seed)
    configurations = [
        ("zorder + crest buffer", "zorder", True),
        ("rowmajor + crest buffer", "rowmajor", True),
        ("rowmajor, no buffer", "rowmajor", False),
    ]
    rows: List[Dict] = []
    for label, order, buffered in configurations:
        store = DenseNonStandardStore(edge, ndim)
        report = transform_nonstandard_chunked(
            store, data, chunk_edge, order=order, buffer_crest=buffered
        )
        rows.append(
            {
                "configuration": label,
                "coefficient_io": report.coefficient_ios,
                "crest_buffer_peak": report.max_buffer_coefficients,
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_ablation_zorder()
    print_experiment(
        "Ablation — non-standard bulk transform: traversal order and "
        "crest buffering",
        rows,
        ["configuration", "coefficient_io", "crest_buffer_peak"],
        note=(
            "z-order + buffer achieves the optimal I/O with a tiny "
            "buffer; row-major + buffer pays the same I/O but hoards "
            "memory; no buffer pays extra SPLIT I/O."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
