"""Shared experiment-harness helpers: table formatting and scale notes.

Every experiment module exposes ``run_*`` functions returning plain
row dictionaries (so benchmarks, tests and documentation regeneration
all consume the same data) plus a ``main()`` that prints the rows the
way the paper reports them.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["format_table", "print_experiment"]


def format_table(rows: Sequence[Dict], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    ruler = "  ".join("-" * widths[column] for column in columns)
    lines = [header, ruler]
    for row in rows:
        lines.append(
            "  ".join(
                str(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def print_experiment(
    title: str, rows: Sequence[Dict], columns: Sequence[str], note: str = ""
) -> None:
    """Print one experiment's result table with a header banner."""
    banner = "=" * max(len(title), 8)
    print(banner)
    print(title)
    print(banner)
    if note:
        print(note)
    print(format_table(rows, columns))
    print()
