"""Table 2 — I/O complexities of the three transformation methods.

===========================  =============================================
Method                       I/O cost (coefficients)
===========================  =============================================
Vitter et al. (standard)     ``O(N^d log N)``
SHIFT-SPLIT (standard)       ``O((N/M)^d (M + log(N/M))^d)``
SHIFT-SPLIT (non-standard)   ``O(N^d)``
===========================  =============================================

This experiment measures the actual coefficient I/O over a sweep of
domain sizes and reports the measured-to-formula ratio, which should
stay near a constant per method if the implementation really has the
claimed complexity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.common import print_experiment
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.vitter import vitter_io_cost
from repro.util.bits import ilog2

__all__ = ["run_table2", "main"]


def _chunk_source(chunk_shape, seed: int):
    def getter(grid_position):
        rng = np.random.default_rng((seed, *grid_position))
        return rng.normal(size=chunk_shape)

    return getter


def run_table2(
    edges: Sequence[int] = (64, 128, 256),
    chunk_edge: int = 8,
    ndim: int = 2,
    seed: int = 19,
) -> List[Dict]:
    """Sweep the domain edge; measure coefficient I/O per method."""
    rows: List[Dict] = []
    for edge in edges:
        shape = (edge,) * ndim
        n = ilog2(edge)
        m = ilog2(chunk_edge)
        cells = edge**ndim

        source = _chunk_source((chunk_edge,) * ndim, seed)
        std_store = DenseStandardStore(shape)
        std_report = transform_standard_chunked(
            std_store, source, (chunk_edge,) * ndim
        )
        ns_store = DenseNonStandardStore(edge, ndim)
        ns_report = transform_nonstandard_chunked(
            ns_store, source, chunk_edge, order="zorder", buffer_crest=True
        )
        vitter_cost = vitter_io_cost(shape)

        vitter_formula = cells * n * ndim
        std_formula = ((edge // chunk_edge) ** ndim) * (
            (chunk_edge + (n - m)) ** ndim
        )
        ns_formula = cells

        rows.append(
            {
                "N": edge,
                "d": ndim,
                "M": chunk_edge,
                "vitter_io": vitter_cost,
                "vitter_ratio": round(vitter_cost / vitter_formula, 3),
                "std_io": std_report.coefficient_ios,
                "std_ratio": round(
                    std_report.coefficient_ios / std_formula, 3
                ),
                "ns_io": ns_report.coefficient_ios,
                "ns_ratio": round(ns_report.coefficient_ios / ns_formula, 3),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_table2()
    print_experiment(
        "Table 2 — I/O complexity check (measured coefficient I/O and "
        "measured/formula ratios)",
        rows,
        [
            "N",
            "d",
            "M",
            "vitter_io",
            "vitter_ratio",
            "std_io",
            "std_ratio",
            "ns_io",
            "ns_ratio",
        ],
        note=(
            "Ratios steady across N confirm each method matches its "
            "Table 2 complexity class."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
