"""Supporting claim (Section 3.1) — compressibility of the two forms.

"The non-standard form of decomposition involves fewer operations and
thus is faster to compute but does not compress as efficiently as the
standard form.  Particularly, range aggregate queries can be highly
compressed using the standard form [9]."

This experiment K-term-compresses the same smooth cube under both
forms and measures (a) the cell-level reconstruction error and (b) the
error of a workload of range-sum queries answered from the synopsis —
the standard form should win on range aggregates as K shrinks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.synthetic import temperature_cube
from repro.experiments.common import print_experiment
from repro.synopsis.compress import best_k_nonstandard, best_k_standard
from repro.synopsis.error import relative_l2_error

__all__ = ["run_compression", "main"]


def _range_sum_error(estimate: np.ndarray, truth: np.ndarray, rng) -> float:
    """Mean relative error of 64 random range sums."""
    edge = truth.shape[0]
    errors = []
    for __ in range(64):
        lows = rng.integers(0, edge // 2, size=truth.ndim)
        highs = lows + rng.integers(1, edge // 2, size=truth.ndim)
        selector = tuple(
            slice(int(lo), int(hi) + 1) for lo, hi in zip(lows, highs)
        )
        exact = float(truth[selector].sum())
        approx = float(estimate[selector].sum())
        scale = max(abs(exact), 1e-9)
        errors.append(abs(approx - exact) / scale)
    return float(np.mean(errors))


def run_compression(
    edge: int = 32,
    k_values: Sequence[int] = (16, 64, 256, 1024),
    seed: int = 41,
) -> List[Dict]:
    """Compress a smooth 2-d slice of TEMPERATURE-like data at several
    K under both forms; report cell and range-sum errors."""
    cube4 = temperature_cube((edge, edge, 4, 4), seed=seed)
    data = cube4[:, :, 0, 0]  # a smooth spatial field
    rows: List[Dict] = []
    for k in k_values:
        __, std_estimate = best_k_standard(data, k)
        __, ns_estimate = best_k_nonstandard(data, k)
        rng = np.random.default_rng(seed + k)
        rows.append(
            {
                "K": k,
                "K_fraction": round(k / data.size, 4),
                "std_cell_error": round(
                    relative_l2_error(std_estimate, data), 5
                ),
                "ns_cell_error": round(
                    relative_l2_error(ns_estimate, data), 5
                ),
                "std_rangesum_error": round(
                    _range_sum_error(std_estimate, data, rng), 5
                ),
                "ns_rangesum_error": round(
                    _range_sum_error(
                        ns_estimate, data, np.random.default_rng(seed + k)
                    ),
                    5,
                ),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_compression()
    print_experiment(
        "Compressibility — best K-term synopses under the two forms "
        "(Section 3.1's claim)",
        rows,
        [
            "K",
            "K_fraction",
            "std_cell_error",
            "ns_cell_error",
            "std_rangesum_error",
            "ns_rangesum_error",
        ],
        note=(
            "Expect the standard form to answer range aggregates more "
            "accurately at equal K on smooth data."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
