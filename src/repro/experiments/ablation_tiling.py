"""Ablation — subtree tiling vs naive index blocking under a query
workload.

Section 3 argues the wavelet-tree subtree tiling is the right
coefficient-to-block allocation because any reconstruction touches
root paths.  This ablation runs the same point-query and range-sum
workload against

* the paper's tiling (:class:`~repro.storage.tiled.TiledStandardStore`),
* the paper's tiling with the redundant per-tile scaling coefficients
  populated (single-block point queries, Section 3's "dramatic"
  query-cost reduction),
* naive row-major index blocking
  (:class:`~repro.storage.naive.NaiveBlockedStandardStore`),

with a cold cache per query, and reports blocks read per query.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.synthetic import random_cube
from repro.experiments.common import print_experiment
from repro.reconstruct.point import point_query_standard
from repro.reconstruct.rangesum import range_sum_standard
from repro.storage.naive import NaiveBlockedStandardStore
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked

__all__ = ["run_ablation_tiling", "main"]


def _measure_queries(store, data: np.ndarray, rng) -> Dict[str, float]:
    edge = data.shape[0]
    points = [
        tuple(int(c) for c in rng.integers(0, edge, size=data.ndim))
        for __ in range(32)
    ]
    ranges = []
    for __ in range(32):
        lows = rng.integers(0, edge // 2, size=data.ndim)
        highs = lows + rng.integers(1, edge // 2, size=data.ndim)
        ranges.append((tuple(map(int, lows)), tuple(map(int, highs))))

    point_reads = 0
    for position in points:
        store.drop_cache()
        before = store.stats.snapshot()
        value = point_query_standard(store, position)
        assert np.isclose(value, data[position])
        point_reads += store.stats.delta_since(before).block_reads

    range_reads = 0
    for lows, highs in ranges:
        store.drop_cache()
        before = store.stats.snapshot()
        value = range_sum_standard(store, lows, highs)
        expected = data[
            tuple(slice(lo, hi + 1) for lo, hi in zip(lows, highs))
        ].sum()
        assert np.isclose(value, expected)
        range_reads += store.stats.delta_since(before).block_reads

    return {
        "point_blocks_per_query": point_reads / len(points),
        "range_blocks_per_query": range_reads / len(ranges),
    }


def run_ablation_tiling(
    edge: int = 256, block_edge: int = 8, seed: int = 31
) -> List[Dict]:
    data = random_cube((edge, edge), seed=seed)
    rng = np.random.default_rng(seed + 1)

    tiled = TiledStandardStore(
        (edge, edge), block_edge=block_edge, pool_capacity=256
    )
    transform_standard_chunked(tiled, data, (16, 16))
    tiled_metrics = _measure_queries(tiled, data, np.random.default_rng(seed + 1))

    naive = NaiveBlockedStandardStore(
        (edge, edge), block_edge=block_edge, pool_capacity=256
    )
    transform_standard_chunked(naive, data, (16, 16))
    naive_metrics = _measure_queries(naive, data, np.random.default_rng(seed + 1))

    # Tiling + the redundant scaling slots: single-block point queries.
    from repro.reconstruct.scalings import (
        point_query_single_tile,
        populate_scalings_standard,
    )

    populate_scalings_standard(tiled)
    rng = np.random.default_rng(seed + 1)
    fast_reads = 0
    probes = 32
    for __ in range(probes):
        position = tuple(int(c) for c in rng.integers(0, edge, size=2))
        tiled.drop_cache()
        before = tiled.stats.snapshot()
        value = point_query_single_tile(tiled, position)
        assert np.isclose(value, data[position])
        fast_reads += tiled.stats.delta_since(before).block_reads

    return [
        {
            "allocation": "subtree tiling (paper)",
            "block_edge": block_edge,
            **{key: round(value, 2) for key, value in tiled_metrics.items()},
        },
        {
            "allocation": "tiling + stored scalings",
            "block_edge": block_edge,
            "point_blocks_per_query": round(fast_reads / probes, 2),
            "range_blocks_per_query": round(
                tiled_metrics["range_blocks_per_query"], 2
            ),
        },
        {
            "allocation": "naive index blocking",
            "block_edge": block_edge,
            **{key: round(value, 2) for key, value in naive_metrics.items()},
        },
    ]


def main() -> List[Dict]:
    rows = run_ablation_tiling()
    print_experiment(
        "Ablation — block reads per query: subtree tiling vs naive "
        "index blocking (cold cache)",
        rows,
        [
            "allocation",
            "block_edge",
            "point_blocks_per_query",
            "range_blocks_per_query",
        ],
        note="The paper's tiling should need fewer blocks per query.",
    )
    return rows


if __name__ == "__main__":
    main()
