"""Sparse-data variant of the bulk transformation (Section 5.1).

"We can modify our SHIFT-SPLIT approach to accommodate for sparseness
... where only z non-zero values exist; the modified I/O complexity is
O(z + (z/M^d) log(N/M))" (constants per the paper's discussion of
Vitter et al.'s sparse case).

This experiment loads cubes of fixed size but falling density with
``skip_zero_chunks`` enabled and shows the I/O tracking the number of
*occupied chunks* rather than the domain size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.synthetic import sparse_cube
from repro.experiments.common import print_experiment
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)

__all__ = ["run_sparse", "main"]


def run_sparse(
    edge: int = 128,
    chunk_edge: int = 8,
    densities: Sequence[float] = (1.0, 0.25, 0.05, 0.01),
    seed: int = 43,
) -> List[Dict]:
    rows: List[Dict] = []
    total_chunks = (edge // chunk_edge) ** 2
    for density in densities:
        data = sparse_cube((edge, edge), density=min(density, 1.0), seed=seed)
        std_store = DenseStandardStore((edge, edge))
        std = transform_standard_chunked(
            std_store,
            data,
            (chunk_edge, chunk_edge),
            skip_zero_chunks=True,
        )
        ns_store = DenseNonStandardStore(edge, 2)
        ns = transform_nonstandard_chunked(
            ns_store,
            data,
            chunk_edge,
            order="zorder",
            skip_zero_chunks=True,
        )
        rows.append(
            {
                "density": density,
                "occupied_chunks": std.chunks,
                "total_chunks": total_chunks,
                "std_io": std.coefficient_ios,
                "ns_io": ns.coefficient_ios,
                "std_io_per_occupied_chunk": round(
                    std.coefficient_ios / max(std.chunks, 1), 1
                ),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_sparse()
    print_experiment(
        "Sparse data — bulk transformation I/O vs density "
        "(skip-zero-chunks variant of Section 5.1)",
        rows,
        [
            "density",
            "occupied_chunks",
            "total_chunks",
            "std_io",
            "ns_io",
            "std_io_per_occupied_chunk",
        ],
        note=(
            "Expect I/O to track occupied chunks (z), with a steady "
            "per-occupied-chunk cost, not the domain size."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
