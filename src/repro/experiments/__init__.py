"""Experiment harness: one module per paper table/figure plus the
ablations called out in DESIGN.md.  Each exposes ``run_*`` returning
plain row dictionaries and a printing ``main()``; the ``benchmarks/``
suite wraps these same functions."""

from repro.experiments import (
    ablation_tiling,
    ablation_zorder,
    compression,
    fig11,
    fig12,
    fig13,
    query_cost,
    reconstruct_exp,
    sparse,
    stream_buffer,
    stream_quality,
    stream_space,
    table1,
    table2,
    update_exp,
)
from repro.experiments import export

__all__ = [
    "ablation_tiling",
    "ablation_zorder",
    "compression",
    "export",
    "fig11",
    "fig12",
    "fig13",
    "query_cost",
    "reconstruct_exp",
    "sparse",
    "stream_buffer",
    "stream_quality",
    "stream_space",
    "table1",
    "table2",
    "update_exp",
]


def run_all(fast: bool = True) -> dict:
    """Run every experiment (scaled down when ``fast``) and return the
    row lists keyed by experiment id.  Used by EXPERIMENTS.md
    regeneration and the quickstart example."""
    results = {}
    results["table1"] = table1.main()
    results["table2"] = table2.main()
    results["fig11"] = fig11.main(edge=8 if fast else 16)
    results["fig12"] = fig12.main(
        dataset_edges=(64, 128) if fast else (128, 256, 512)
    )
    results["fig13"] = fig13.main(months=12 if fast else 48)
    results["stream_buffer"] = stream_buffer.main()
    results["stream_space"] = stream_space.main()
    results["stream_quality"] = stream_quality.main()
    results["reconstruct"] = reconstruct_exp.main()
    results["update"] = update_exp.main()
    results["query_cost"] = query_cost.main()
    results["sparse"] = sparse.main()
    results["compression"] = compression.main()
    results["ablation_tiling"] = ablation_tiling.main()
    results["ablation_zorder"] = ablation_zorder.main()
    return results
