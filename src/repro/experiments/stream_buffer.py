"""Section 6's stream experiment — synopsis update cost vs buffer size.

The paper's third experiment shows "the significant improvement in the
update cost for maintaining a wavelet synopsis in a data stream
application by employing additional memory as buffer" (the figure
itself is truncated in the available text; the quantity follows
Result 3).

Measured here: crest coefficient updates per item — ``log N + 1`` for
the per-item baseline (buffer 1), dropping as ``(log(N/B) + 1) / B``
with a buffer of ``B`` — plus the extra working memory each buffer
size needs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.streams import random_walk_stream
from repro.experiments.common import print_experiment
from repro.streams.stream1d import StreamSynopsis1D
from repro.util.bits import ilog2

__all__ = ["run_stream_buffer", "main"]


def run_stream_buffer(
    domain_log2: int = 16,
    k: int = 64,
    buffer_sizes: Sequence[int] = (1, 4, 16, 64, 256, 1024),
    seed: int = 17,
) -> List[Dict]:
    """Consume one stream per buffer size; report per-item costs."""
    size = 1 << domain_log2
    data = random_walk_stream(size, seed=seed)
    rows: List[Dict] = []
    for buffer_size in buffer_sizes:
        synopsis = StreamSynopsis1D(size, k=k, buffer_size=buffer_size)
        synopsis.extend(data)
        n = domain_log2
        b = ilog2(buffer_size)
        formula = (n - b + 1) / buffer_size
        rows.append(
            {
                "buffer": buffer_size,
                "crest_updates_per_item": round(
                    synopsis.crest_updates / size, 4
                ),
                "formula": round(formula, 4),
                "live_memory_coefficients": synopsis.max_live_coefficients,
                "memory_bound": buffer_size + (n - b) + 1,
                "finalized": synopsis.finalized,
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_stream_buffer()
    print_experiment(
        "Stream experiment — 1-d synopsis update cost vs buffer size "
        "(Result 3)",
        rows,
        [
            "buffer",
            "crest_updates_per_item",
            "formula",
            "live_memory_coefficients",
            "memory_bound",
        ],
        note=(
            "Expect crest updates/item to track (log(N/B)+1)/B and "
            "memory to track B + log(N/B) + 1."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
