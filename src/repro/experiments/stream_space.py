"""Results 3-5 — synopsis space bounds, measured.

Each maintainer reports its peak live working memory (coefficients
beyond the K retained); this experiment compares those peaks with the
paper's bounds:

* Result 3 (1-d):        ``K + B + log(N/B)``
* Result 4 (standard):   ``K + M_buf * N^{d-1} + N^{d-1} log(T/M_buf)``
* Result 5 (non-std):    ``K + M^d + (2^d - 1) log(N/M) + log(T/N)``
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.streams import random_walk_stream, slab_stream
from repro.experiments.common import print_experiment
from repro.streams.stream1d import StreamSynopsis1D
from repro.streams.streamnd import (
    NonStandardStreamSynopsis,
    StandardStreamSynopsis,
)
from repro.util.bits import ilog2

__all__ = ["run_stream_space", "main"]


def run_stream_space(seed: int = 21) -> List[Dict]:
    rows: List[Dict] = []

    # Result 3: 1-d, N = 2^14, B = 64.
    size, buffer_size, k = 1 << 14, 64, 32
    synopsis = StreamSynopsis1D(size, k=k, buffer_size=buffer_size)
    synopsis.extend(random_walk_stream(size, seed=seed))
    n, b = ilog2(size), ilog2(buffer_size)
    rows.append(
        {
            "result": "R3 (1-d)",
            "params": f"N=2^{n}, B={buffer_size}, K={k}",
            "measured_live": synopsis.max_live_coefficients,
            "bound": buffer_size + (n - b) + 1,
        }
    )

    # Result 4: standard form, 4x4 fixed, T = 256, buffer 4.
    fixed, time_domain, time_buffer = (4, 4), 256, 4
    std = StandardStreamSynopsis(fixed, time_domain, k=k, time_buffer=time_buffer)
    for slab in slab_stream(fixed, time_domain, seed=seed):
        std.push_slab(slab)
    fixed_cells = int(np.prod(fixed))
    p, mb = ilog2(time_domain), ilog2(time_buffer)
    rows.append(
        {
            "result": "R4 (standard)",
            "params": f"fixed={fixed}, T={time_domain}, M={time_buffer}, K={k}",
            "measured_live": std.max_live_coefficients,
            "bound": time_buffer * fixed_cells
            + fixed_cells * ((p - mb) + 1),
        }
    )

    # Result 5: non-standard hybrid, edge 8, d=2, T = 64, chunk 2.
    edge, ndim, time_domain_ns, chunk_edge = 8, 2, 64, 2
    ns = NonStandardStreamSynopsis(
        edge, ndim, time_domain_ns, k=k, chunk_edge=chunk_edge
    )
    strip = np.stack(
        list(slab_stream((edge,), time_domain_ns, seed=seed)), axis=-1
    )
    for cube_index in range(time_domain_ns // edge):
        block = strip[:, cube_index * edge : (cube_index + 1) * edge]
        for grid in ns.expected_chunk_order():
            ns.push_chunk(
                block[
                    grid[0] * chunk_edge : (grid[0] + 1) * chunk_edge,
                    grid[1] * chunk_edge : (grid[1] + 1) * chunk_edge,
                ]
            )
    n_ns, m_ns = ilog2(edge), ilog2(chunk_edge)
    rows.append(
        {
            "result": "R5 (non-std)",
            "params": (
                f"N={edge}, d={ndim}, T={time_domain_ns}, M={chunk_edge}, K={k}"
            ),
            "measured_live": ns.max_live_coefficients,
            "bound": ((1 << ndim) - 1) * (n_ns - m_ns)
            + ilog2(time_domain_ns // edge)
            + 1
            + 1,
        }
    )
    return rows


def main() -> List[Dict]:
    rows = run_stream_space()
    print_experiment(
        "Results 3-5 — synopsis working memory, measured vs bound "
        "(excluding the K retained terms and the R5 chunk buffer)",
        rows,
        ["result", "params", "measured_live", "bound"],
        note="Measured live memory must stay within the analytic bound.",
    )
    return rows


if __name__ == "__main__":
    main()
