"""Example 2 — batch updates: SHIFT-SPLIT vs naive per-cell.

"Each of M̃ updates requires n + 1 values to be updated, leading to a
total cost of O(M̃ log N).  However, we can use the SHIFT-SPLIT
operations to batch updates and reduce cost ... to O(M̃ + log(N/M̃))."

This experiment updates blocks of growing size in a transformed
dataset with both strategies (they produce identical transforms) and
reports the coefficient I/O of each.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.standard_ops import apply_chunk_standard
from repro.experiments.common import print_experiment
from repro.storage.dense import DenseStandardStore
from repro.update.batch import batch_update_standard, naive_update_standard
from repro.util.bits import ilog2

__all__ = ["run_update", "main"]


def run_update(
    edge: int = 256,
    block_edges: Sequence[int] = (2, 8, 32),
    seed: int = 47,
) -> List[Dict]:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(edge, edge))
    n = ilog2(edge)
    rows: List[Dict] = []
    for block_edge in block_edges:
        batched = DenseStandardStore((edge, edge))
        apply_chunk_standard(batched, data, (0, 0))
        naive = DenseStandardStore((edge, edge))
        apply_chunk_standard(naive, data, (0, 0))
        deltas = rng.normal(size=(block_edge, block_edge))
        corner = (block_edge, block_edge)  # an interior aligned block

        batched.stats.reset()
        batch_update_standard(batched, deltas, corner)
        naive.stats.reset()
        naive_update_standard(naive, deltas, corner)
        assert np.allclose(batched.to_array(), naive.to_array())

        m = ilog2(block_edge)
        rows.append(
            {
                "update_cells": block_edge**2,
                "shift_split_io": batched.stats.coefficient_ios,
                "shift_split_formula": (block_edge + (n - m)) ** 2,
                "naive_io": naive.stats.coefficient_ios,
                "naive_formula": (block_edge**2) * (n + 1) ** 2,
                "speedup": round(
                    naive.stats.coefficient_ios
                    / batched.stats.coefficient_ios,
                    1,
                ),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_update()
    print_experiment(
        "Example 2 — batch update I/O (coefficients): SHIFT-SPLIT vs "
        "naive per-cell",
        rows,
        [
            "update_cells",
            "shift_split_io",
            "shift_split_formula",
            "naive_io",
            "naive_formula",
            "speedup",
        ],
        note=(
            "Both strategies yield identical transforms; SHIFT-SPLIT "
            "touches O(M̃ + log(N/M̃)) per axis instead of O(M̃ log N)."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
