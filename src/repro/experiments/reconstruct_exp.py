"""Result 6 — partial reconstruction cost, SHIFT-SPLIT vs naive.

For a dyadic region of edge ``M`` in an ``N^d`` dataset, the inverse
SHIFT-SPLIT touches ``(M + log(N/M))^d`` coefficients (standard) or
``M^d + (2^d - 1) log(N/M) + 1`` (non-standard), against the two naive
strategies the paper frames it with: reconstructing everything
(``N^d`` + transform cost) or reconstructing point by point
(``M^d (log N + 1)^d`` standard).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.nonstandard_ops import extract_region_nonstandard
from repro.core.standard_ops import extract_region_standard
from repro.datasets.synthetic import random_cube
from repro.experiments.common import print_experiment
from repro.reconstruct.region import reconstruct_box_pointwise
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.util.bits import ilog2

__all__ = ["run_reconstruct", "main"]


def run_reconstruct(
    edge: int = 256,
    ndim: int = 2,
    region_edges: Sequence[int] = (4, 16, 64),
    seed: int = 23,
) -> List[Dict]:
    """Compare extraction I/O for a sweep of dyadic region sizes."""
    data = random_cube((edge,) * ndim, seed=seed)
    std_store = DenseStandardStore((edge,) * ndim)
    transform_standard_chunked(std_store, data, (16,) * ndim)
    ns_store = DenseNonStandardStore(edge, ndim)
    transform_nonstandard_chunked(ns_store, data, 16)
    n = ilog2(edge)

    rows: List[Dict] = []
    for region_edge in region_edges:
        corner = (region_edge,) * ndim  # an interior aligned corner
        m = ilog2(region_edge)

        std_store.stats.reset()
        region = extract_region_standard(
            std_store, corner, (region_edge,) * ndim
        )
        std_cost = std_store.stats.coefficient_reads
        expected = data[
            tuple(slice(c, c + region_edge) for c in corner)
        ]
        assert np.allclose(region, expected)

        ns_store.stats.reset()
        region_ns = extract_region_nonstandard(ns_store, corner, region_edge)
        ns_cost = ns_store.stats.coefficient_reads
        assert np.allclose(region_ns, expected)

        std_store.stats.reset()
        reconstruct_box_pointwise(
            std_store,
            corner,
            tuple(c + region_edge for c in corner),
            form="standard",
        )
        pointwise_cost = std_store.stats.coefficient_reads

        rows.append(
            {
                "region_edge": region_edge,
                "cells": region_edge**ndim,
                "std_shift_split_io": std_cost,
                "std_formula": (region_edge + (n - m)) ** ndim,
                "ns_shift_split_io": ns_cost,
                # M^d - 1 gathered details + (2^d-1)(n-m) path details
                # + the overall average.
                "ns_formula": region_edge**ndim
                - 1
                + ((1 << ndim) - 1) * (n - m)
                + 1,
                "pointwise_io": pointwise_cost,
                "full_reconstruction_io": edge**ndim,
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_reconstruct()
    print_experiment(
        "Result 6 — partial reconstruction I/O (coefficients)",
        rows,
        [
            "region_edge",
            "cells",
            "std_shift_split_io",
            "std_formula",
            "ns_shift_split_io",
            "ns_formula",
            "pointwise_io",
            "full_reconstruction_io",
        ],
        note=(
            "SHIFT-SPLIT extraction should sit near its formula and far "
            "below both naive strategies for mid-sized regions."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
