"""Query-cost study — block reads per query across tile sizes and
query types (the workload the tiling of Section 3 is optimised for).

For each tile size and both decomposition forms, a workload of point
queries and range sums runs cold-cache against the tiled stores; the
redundant-scaling fast path (Section 3's spare slot) is measured as
well.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.synthetic import random_cube
from repro.datasets.workloads import point_workload, range_workload
from repro.experiments.common import print_experiment
from repro.reconstruct.point import (
    point_query_nonstandard,
    point_query_standard,
)
from repro.reconstruct.rangesum import range_sum_nonstandard, range_sum_standard
from repro.reconstruct.scalings import (
    point_query_single_tile,
    populate_scalings_standard,
)
from repro.reconstruct.scalings_ns import (
    point_query_single_tile_nonstandard,
    populate_scalings_nonstandard,
)
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)

__all__ = ["run_query_cost", "main"]


def _cold(store, query) -> int:
    store.drop_cache()
    before = store.stats.snapshot()
    query()
    return store.stats.delta_since(before).block_reads


def run_query_cost(
    edge: int = 128,
    tile_edges: Sequence[int] = (4, 8),
    probes: int = 24,
    seed: int = 53,
) -> List[Dict]:
    data = random_cube((edge, edge), seed=seed)
    points = list(point_workload((edge, edge), probes, seed=seed))
    ranges = list(
        range_workload((edge, edge), probes, selectivity=0.2, seed=seed)
    )
    rows: List[Dict] = []
    for tile_edge in tile_edges:
        std = TiledStandardStore(
            (edge, edge), block_edge=tile_edge, pool_capacity=256
        )
        transform_standard_chunked(std, data, (16, 16))
        ns = TiledNonStandardStore(
            edge, 2, block_edge=tile_edge, pool_capacity=256
        )
        transform_nonstandard_chunked(ns, data, 16)

        std_point = np.mean(
            [
                _cold(std, lambda p=p: point_query_standard(std, p))
                for p in points
            ]
        )
        std_range = np.mean(
            [
                _cold(std, lambda lo=lo, hi=hi: range_sum_standard(std, lo, hi))
                for lo, hi in ranges
            ]
        )
        ns_point = np.mean(
            [
                _cold(ns, lambda p=p: point_query_nonstandard(ns, p))
                for p in points
            ]
        )
        ns_range = np.mean(
            [
                _cold(
                    ns, lambda lo=lo, hi=hi: range_sum_nonstandard(ns, lo, hi)
                )
                for lo, hi in ranges
            ]
        )

        populate_scalings_standard(std)
        populate_scalings_nonstandard(ns)
        std_fast = np.mean(
            [
                _cold(std, lambda p=p: point_query_single_tile(std, p))
                for p in points
            ]
        )
        ns_fast = np.mean(
            [
                _cold(
                    ns,
                    lambda p=p: point_query_single_tile_nonstandard(ns, p),
                )
                for p in points
            ]
        )
        rows.append(
            {
                "tile_edge": tile_edge,
                "std_point": round(float(std_point), 2),
                "std_point_fast": round(float(std_fast), 2),
                "std_range": round(float(std_range), 2),
                "ns_point": round(float(ns_point), 2),
                "ns_point_fast": round(float(ns_fast), 2),
                "ns_range": round(float(ns_range), 2),
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_query_cost()
    print_experiment(
        "Query cost — block reads per query (cold cache), both forms, "
        "with and without the redundant scalings",
        rows,
        [
            "tile_edge",
            "std_point",
            "std_point_fast",
            "std_range",
            "ns_point",
            "ns_point_fast",
            "ns_range",
        ],
        note=(
            "Larger tiles mean fewer blocks per query; the stored "
            "scalings take point queries to a single block in both "
            "forms."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
