"""Figure 11 — effect of larger memory on bulk-transformation I/O.

Paper setup: the 16 GB 4-d TEMPERATURE cube, I/O measured in
*coefficients*, memory (chunk) size swept; three methods compared:
Vitter et al., SHIFT-SPLIT standard, SHIFT-SPLIT non-standard.

Expected shape (paper): Vitter is worst at every memory size and flat
in memory; SHIFT-SPLIT standard improves markedly as memory grows
(the SPLIT term ``(M + log(N/M))^d`` shrinks relative to ``M^d``);
SHIFT-SPLIT non-standard is lowest and nearly flat.

Scaled-down reproduction: a synthetic TEMPERATURE-like cube (see
:mod:`repro.datasets.synthetic`); the cube edge is configurable, and
row dictionaries carry everything needed to compare shapes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.synthetic import temperature_cube
from repro.experiments.common import print_experiment
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)
from repro.transform.vitter import vitter_transform_standard

__all__ = ["run_fig11", "main"]


def run_fig11(
    edge: int = 16,
    memory_edges: Sequence[int] = (2, 4, 8),
    seed: int = 7,
) -> List[Dict]:
    """Sweep memory (chunk) size for the three transformation methods.

    ``edge`` is the per-dimension size of the 4-d cube; memory in
    coefficients is ``memory_edge ** 4``.
    """
    shape = (edge,) * 4
    cube = temperature_cube(shape, seed=seed)

    vitter_report = vitter_transform_standard(cube)
    vitter_cost = vitter_report.store_stats.coefficient_ios

    rows: List[Dict] = []
    for memory_edge in memory_edges:
        std_store = DenseStandardStore(shape)
        std_report = transform_standard_chunked(
            std_store, cube, (memory_edge,) * 4
        )
        ns_store = DenseNonStandardStore(edge, 4)
        ns_report = transform_nonstandard_chunked(
            ns_store, cube, memory_edge, order="zorder", buffer_crest=True
        )
        rows.append(
            {
                "memory_edge": memory_edge,
                "memory_coefficients": memory_edge**4,
                "vitter_io": vitter_cost,
                "shift_split_standard_io": std_report.coefficient_ios,
                "shift_split_nonstandard_io": ns_report.coefficient_ios,
                "ns_crest_buffer": ns_report.max_buffer_coefficients,
            }
        )
    return rows


def main(edge: int = 16) -> List[Dict]:
    rows = run_fig11(edge=edge)
    print_experiment(
        f"Figure 11 — transformation I/O (coefficients) vs memory; "
        f"4-d TEMPERATURE-like cube, edge {edge}",
        rows,
        [
            "memory_edge",
            "memory_coefficients",
            "vitter_io",
            "shift_split_standard_io",
            "shift_split_nonstandard_io",
        ],
        note=(
            "Expect: Vitter flat and largest; standard falls with memory; "
            "non-standard lowest and flat."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
