"""Table 1 — tiles touched by SHIFT and SPLIT.

The paper's closed forms for a cubic dyadic range of edge ``M`` inside
an ``N^d`` domain with per-dimension tile edge ``B``:

=============  ==========================  ================================
               Standard                    Non-standard
=============  ==========================  ================================
SHIFT          ``O((M/B)^d)``              ``O((M/B)^d)``
SPLIT          ``O((log_B(N/M))^d)``       ``O((2^d - 1) log_B(N/M))``
=============  ==========================  ================================

This experiment *measures* the touched tile counts through the actual
tilings and reports them next to the ceiling-free formulas, verifying
the constants the asymptotics hide.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.shiftsplit1d import axis_shift_split
from repro.core.nonstandard_ops import split_contributions_nonstandard
from repro.experiments.common import print_experiment
from repro.tiling.nonstandard import NonStandardTiling
from repro.tiling.standard import StandardTiling
from repro.util.bits import ceil_div, ceil_log, ilog2

__all__ = [
    "measure_standard_tiles",
    "measure_nonstandard_tiles",
    "run_table1",
    "main",
]


def measure_standard_tiles(
    size: int, chunk: int, block_edge: int, ndim: int, translation: int = 0
) -> Dict[str, int]:
    """Count distinct tiles touched by the SHIFT and SPLIT target sets
    of a cubic chunk under the standard cross-product tiling."""
    tiling = StandardTiling((size,) * ndim, block_edge)
    axis_map = axis_shift_split(size, chunk, translation)
    shift_targets = axis_map.target[axis_map.shift_slice()]
    split_targets = axis_map.target[axis_map.split_slice()]
    shift_tiles = (
        tiling.tiles_of_cross_product([shift_targets] * ndim)
        if shift_targets.size
        else 0
    )
    # SPLIT touches every combination with >= 1 split component:
    # all-target tiles minus pure-shift tiles.
    all_targets = axis_map.target
    total_tiles = tiling.tiles_of_cross_product([all_targets] * ndim)
    return {
        "shift_tiles": shift_tiles,
        "split_tiles": total_tiles - shift_tiles,
        "total_tiles": total_tiles,
    }


def measure_nonstandard_tiles(
    size: int,
    chunk: int,
    block_edge: int,
    ndim: int,
    grid_position: Tuple[int, ...] = None,
) -> Dict[str, int]:
    """Count distinct tiles touched by a cubic chunk under the
    non-standard quadtree tiling."""
    if grid_position is None:
        grid_position = (0,) * ndim
    tiling = NonStandardTiling(size, ndim, block_edge)
    m = ilog2(chunk)
    if m >= 1:
        shift_tiles = len(
            set(tiling.tiles_of_subtree(m, tuple(g for g in grid_position)))
        )
    else:
        shift_tiles = 0
    details, __ = split_contributions_nonstandard(
        size, chunk, grid_position, 1.0
    )
    split_tiles = {tiling.locate_key(key)[0] for key, __ in details}
    split_tiles.add(tiling.locate_scaling()[0])
    shift_tile_set = (
        set(tiling.tiles_of_subtree(m, tuple(grid_position)))
        if m >= 1
        else set()
    )
    return {
        "shift_tiles": shift_tiles,
        "split_tiles": len(split_tiles - shift_tile_set),
        "total_tiles": len(split_tiles | shift_tile_set),
    }


def run_table1(
    configs: Sequence[Tuple[int, int, int, int]] = (
        (1024, 64, 8, 1),
        (1024, 64, 8, 2),
        (256, 16, 4, 2),
        (256, 16, 4, 3),
        (64, 8, 2, 3),
    ),
) -> List[Dict]:
    """Measure tile counts over ``(N, M, B, d)`` configurations and
    compare with the paper's formulas."""
    rows: List[Dict] = []
    for size, chunk, block_edge, ndim in configs:
        standard = measure_standard_tiles(size, chunk, block_edge, ndim)
        nonstandard = measure_nonstandard_tiles(size, chunk, block_edge, ndim)
        shift_formula = ceil_div(chunk, block_edge) ** ndim
        split_std_formula = (
            ceil_div(chunk, block_edge) + ceil_log(size // chunk, block_edge)
        ) ** ndim - ceil_div(chunk, block_edge) ** ndim
        split_ns_formula = ceil_log(size // chunk, block_edge)
        rows.append(
            {
                "N": size,
                "M": chunk,
                "B": block_edge,
                "d": ndim,
                "std_shift": standard["shift_tiles"],
                "std_shift_formula": shift_formula,
                "std_split": standard["split_tiles"],
                "std_split_formula": split_std_formula,
                "ns_shift": nonstandard["shift_tiles"],
                "ns_shift_formula": shift_formula,
                "ns_split": nonstandard["split_tiles"],
                "ns_split_formula": split_ns_formula,
            }
        )
    return rows


def main() -> List[Dict]:
    rows = run_table1()
    print_experiment(
        "Table 1 — tiles touched by SHIFT / SPLIT (measured vs formula)",
        rows,
        [
            "N",
            "M",
            "B",
            "d",
            "std_shift",
            "std_shift_formula",
            "std_split",
            "std_split_formula",
            "ns_shift",
            "ns_shift_formula",
            "ns_split",
            "ns_split_formula",
        ],
        note=(
            "Formulas drop ceilings (as the paper does); measured counts "
            "should match up to small additive constants."
        ),
    )
    return rows


if __name__ == "__main__":
    main()
