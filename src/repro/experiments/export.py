"""Exporting experiment rows to CSV (for plotting the figures)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence

__all__ = ["write_csv", "export_all"]


def write_csv(rows: Sequence[Dict], path) -> Path:
    """Write experiment rows to ``path`` as CSV (columns from the
    union of row keys, in first-seen order)."""
    path = Path(path)
    if not rows:
        raise ValueError("no rows to export")
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_all(results: Dict[str, Sequence[Dict]], directory) -> list:
    """Write one CSV per experiment id into ``directory``."""
    directory = Path(directory)
    written = []
    for name, rows in results.items():
        written.append(write_csv(rows, directory / f"{name}.csv"))
    return written
