"""Lightweight, thread-safe serving metrics.

The query engine needs observability that the raw
:class:`~repro.storage.iostats.IOStats` counters cannot express —
latency distributions, admission outcomes, planner dedup ratios.  A
:class:`MetricsRegistry` holds named :class:`Counter`\\ s,
:class:`Gauge`\\ s and :class:`Histogram`\\ s behind one lock and
renders everything to a plain dict with
:meth:`MetricsRegistry.snapshot`, which is what the benchmarks and the
``serve-replay`` CLI print.  :func:`repro.obs.to_prometheus` renders
the same registry in Prometheus text exposition format.

Counters, gauges and histograms may carry **labels**
(``registry.counter("hits", labels={"shard": 0})``): each distinct
label set is its own series, keyed in snapshots as ``name{k="v",...}``
— the Prometheus convention, passed through verbatim by the exporter.
The serving layer uses this for per-tenant series
(``query_latency_s{tenant="acme"}``).

No external metrics stack: observations are kept in a bounded
reservoir, percentiles are computed on demand from a sorted copy.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _series_key(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` with label
    names sorted, so equal label sets always map to the same series."""
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        # lint: allow=lock-discipline (racy read of a CPython-atomic int; scrapes tolerate staleness)
        return self._value


class Gauge:
    """A named value that can move both ways (pool residency, queue
    depth).  Unlike :class:`Counter` it is *set* to the current reading
    rather than accumulated; ``add`` supports delta-style updates (e.g.
    +1 on admit, -1 on completion)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        # lint: allow=lock-discipline (racy read of a CPython-atomic float; scrapes tolerate staleness)
        return self._value


class Histogram:
    """Latency-style distribution with percentile snapshots.

    Keeps at most ``max_samples`` raw observations; count/sum/min/max
    are exact.  Once the reservoir fills it is halved (every other
    sample kept) and the keep *stride* doubles, so later observations
    are admitted at the thinned rate too — the kept set stays uniformly
    spaced over the whole record sequence instead of over-representing
    recent samples.  Adequate for benchmark reporting, not billing.
    """

    __slots__ = ("name", "_samples", "_max_samples", "_stride", "count",
                 "total", "min", "max", "_lock")

    def __init__(self, name: str, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self._samples: List[float] = []  # guarded-by: _lock
        self._max_samples = max_samples
        self._stride = 1  # guarded-by: _lock
        self.count = 0  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.min = float("inf")  # guarded-by: _lock
        self.max = float("-inf")  # guarded-by: _lock
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) > self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the kept samples
        (nearest-rank; 0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        return self._rank(ordered, q)

    @staticmethod
    def _rank(ordered: List[float], q: float) -> float:
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        # One lock acquisition for the whole snapshot: reading count /
        # total / min / max field-by-field without the lock can tear
        # against a concurrent record() (count from before an update,
        # total from after it).
        with self._lock:
            count = self.count
            total = self.total
            lo = self.min if count else 0.0
            hi = self.max if count else 0.0
            ordered = sorted(self._samples)
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self._rank(ordered, 0.50),
            "p95": self._rank(ordered, 0.95),
            "p99": self._rank(ordered, 0.99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(key)
            return counter

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(key)
            return gauge

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(key)
            return histogram

    def snapshot(self) -> dict:
        """Everything the registry knows, as one JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        }
