"""Lightweight, thread-safe serving metrics.

The query engine needs observability that the raw
:class:`~repro.storage.iostats.IOStats` counters cannot express —
latency distributions, admission outcomes, planner dedup ratios.  A
:class:`MetricsRegistry` holds named :class:`Counter`\\ s and
:class:`Histogram`\\ s behind one lock and renders everything to a
plain dict with :meth:`MetricsRegistry.snapshot`, which is what the
benchmarks and the ``serve-replay`` CLI print.

No external metrics stack: observations are kept in a bounded
reservoir, percentiles are computed on demand from a sorted copy.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Latency-style distribution with percentile snapshots.

    Keeps at most ``max_samples`` raw observations (uniformly thinning
    by keeping every other sample once full — adequate for benchmark
    reporting, not for billing); count/sum/min/max are exact.
    """

    __slots__ = ("name", "_samples", "_max_samples", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self._samples: List[float] = []
        self._max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._samples.append(value)
            if len(self._samples) > self._max_samples:
                self._samples = self._samples[::2]

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the kept samples
        (nearest-rank; 0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named counters and histograms, created on first access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            return histogram

    def snapshot(self) -> dict:
        """Everything the registry knows, as one JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        }
