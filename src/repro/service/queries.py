"""Query descriptions the service plans and executes.

Three OLAP query shapes over a standard-form tiled store, mirroring
the reconstruction entry points in :mod:`repro.reconstruct`:

* :class:`PointQuery` — one cell (Lemma 1 root-path read);
* :class:`RangeSumQuery` — aggregate over an inclusive box (Lemma 2
  boundary read);
* :class:`RegionQuery` — reconstruct the data of a half-open box
  (Result 6 dyadic-cover extraction).

Queries are frozen dataclasses so batches can be hashed, deduplicated
and shipped between threads safely.  :func:`execute_query` is the one
dispatch point the engine's workers call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple, Union

from repro.reconstruct.point import point_query_standard
from repro.reconstruct.rangesum import range_sum_standard
from repro.reconstruct.region import reconstruct_box_standard

__all__ = [
    "PointQuery",
    "RangeSumQuery",
    "RegionQuery",
    "CustomQuery",
    "Query",
    "execute_query",
]


@dataclass(frozen=True)
class PointQuery:
    """Reconstruct the single cell at ``position``."""

    position: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position", tuple(int(x) for x in self.position)
        )


@dataclass(frozen=True)
class RangeSumQuery:
    """Sum of the inclusive box ``[lows, highs]`` (per axis)."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lows", tuple(int(x) for x in self.lows))
        object.__setattr__(self, "highs", tuple(int(x) for x in self.highs))
        if len(self.lows) != len(self.highs):
            raise ValueError("lows/highs rank mismatch")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise ValueError(f"empty box [{self.lows}, {self.highs}]")


@dataclass(frozen=True)
class RegionQuery:
    """Reconstruct the data of the half-open box ``[starts, stops)``."""

    starts: Tuple[int, ...]
    stops: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "starts", tuple(int(x) for x in self.starts))
        object.__setattr__(self, "stops", tuple(int(x) for x in self.stops))
        if len(self.starts) != len(self.stops):
            raise ValueError("starts/stops rank mismatch")
        if any(a >= b for a, b in zip(self.starts, self.stops)):
            raise ValueError(f"empty region [{self.starts}, {self.stops})")


@dataclass(frozen=True)
class CustomQuery:
    """Escape hatch: run an arbitrary callable against the store.

    The planner contributes no tile set for it (no prefetching); the
    engine executes ``fn(store)`` on a worker thread.  Used by tests to
    model slow queries and by callers with bespoke read patterns.
    """

    fn: Callable[[Any], Any] = field(compare=False)


Query = Union[PointQuery, RangeSumQuery, RegionQuery, CustomQuery]


def execute_query(store, query: Query) -> Any:
    """Run ``query`` against a standard-form store and return its value."""
    if isinstance(query, PointQuery):
        return point_query_standard(store, query.position)
    if isinstance(query, RangeSumQuery):
        return range_sum_standard(store, query.lows, query.highs)
    if isinstance(query, RegionQuery):
        return reconstruct_box_standard(store, query.starts, query.stops)
    if isinstance(query, CustomQuery):
        return query.fn(store)
    raise TypeError(f"unsupported query type: {type(query).__name__}")
