"""Query descriptions the service plans and executes.

Three OLAP query shapes over a standard-form tiled store, mirroring
the reconstruction entry points in :mod:`repro.reconstruct`:

* :class:`PointQuery` — one cell (Lemma 1 root-path read);
* :class:`RangeSumQuery` — aggregate over an inclusive box (Lemma 2
  boundary read);
* :class:`RegionQuery` — reconstruct the data of a half-open box
  (Result 6 dyadic-cover extraction).

Queries are frozen dataclasses so batches can be hashed, deduplicated
and shipped between threads safely.  :func:`execute_query` is the one
dispatch point the engine's workers call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple, Union

from repro.reconstruct.point import point_query_standard
from repro.reconstruct.rangesum import range_sum_standard, range_sum_weights
from repro.reconstruct.region import reconstruct_box_standard
from repro.storage.degrade import collecting_degraded

__all__ = [
    "PointQuery",
    "RangeSumQuery",
    "RegionQuery",
    "CustomQuery",
    "DegradedValue",
    "Query",
    "execute_query",
    "execute_query_degraded",
    "query_weight_bound",
]


@dataclass(frozen=True)
class PointQuery:
    """Reconstruct the single cell at ``position``."""

    position: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position", tuple(int(x) for x in self.position)
        )


@dataclass(frozen=True)
class RangeSumQuery:
    """Sum of the inclusive box ``[lows, highs]`` (per axis)."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lows", tuple(int(x) for x in self.lows))
        object.__setattr__(self, "highs", tuple(int(x) for x in self.highs))
        if len(self.lows) != len(self.highs):
            raise ValueError("lows/highs rank mismatch")
        if any(lo > hi for lo, hi in zip(self.lows, self.highs)):
            raise ValueError(f"empty box [{self.lows}, {self.highs}]")


@dataclass(frozen=True)
class RegionQuery:
    """Reconstruct the data of the half-open box ``[starts, stops)``."""

    starts: Tuple[int, ...]
    stops: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "starts", tuple(int(x) for x in self.starts))
        object.__setattr__(self, "stops", tuple(int(x) for x in self.stops))
        if len(self.starts) != len(self.stops):
            raise ValueError("starts/stops rank mismatch")
        if any(a >= b for a, b in zip(self.starts, self.stops)):
            raise ValueError(f"empty region [{self.starts}, {self.stops})")


@dataclass(frozen=True)
class CustomQuery:
    """Escape hatch: run an arbitrary callable against the store.

    The planner contributes no tile set for it (no prefetching); the
    engine executes ``fn(store)`` on a worker thread.  Used by tests to
    model slow queries and by callers with bespoke read patterns.
    """

    fn: Callable[[Any], Any] = field(compare=False)


Query = Union[PointQuery, RangeSumQuery, RegionQuery, CustomQuery]


def execute_query(store, query: Query) -> Any:
    """Run ``query`` against a standard-form store and return its value."""
    if isinstance(query, PointQuery):
        return point_query_standard(store, query.position)
    if isinstance(query, RangeSumQuery):
        return range_sum_standard(store, query.lows, query.highs)
    if isinstance(query, RegionQuery):
        return reconstruct_box_standard(store, query.starts, query.stops)
    if isinstance(query, CustomQuery):
        return query.fn(store)
    raise TypeError(f"unsupported query type: {type(query).__name__}")


def query_weight_bound(store, query: Query) -> float:
    """Bound on the magnitude of the weight any single coefficient
    carries in ``query``'s answer.

    A query's value is a weighted sum of stored coefficients, so a
    block the store could not read contributes at most
    ``query_weight_bound * ||block||_1`` of absolute error — the bound
    degraded execution reports.

    * Point and region reconstructions combine coefficients with signs
      (products of ±1 per axis under the unnormalised Haar basis):
      bound 1.
    * A range sum's per-coefficient weight is the product of per-axis
      overlap counts (Lemma 2); the bound is the product of each axis'
      maximum absolute weight.
    * A custom query's read pattern is opaque: ``inf`` (a degraded
      custom result carries no usable bound).
    """
    if isinstance(query, (PointQuery, RegionQuery)):
        return 1.0
    if isinstance(query, RangeSumQuery):
        bound = 1.0
        for extent, low, high in zip(store.shape, query.lows, query.highs):
            __, weights = range_sum_weights(extent, low, high)
            bound *= float(max(abs(weights)))
        return bound
    return math.inf


@dataclass(frozen=True)
class DegradedValue:
    """A degraded query answer: the value computed with unreadable
    blocks zero-filled, plus the worst-case absolute error that
    substitution can have introduced and the blocks involved."""

    value: Any
    error_bound: float
    missing_blocks: Tuple[int, ...]


def execute_query_degraded(store, query: Query):
    """Run ``query`` tolerating unreadable blocks.

    Returns the plain value when every read succeeded, or a
    :class:`DegradedValue` when blocks had to be zero-filled.  Raises
    only for failures outside the store's read path.
    """
    with collecting_degraded() as collector:
        value = execute_query(store, query)
    if not collector.degraded:
        return value
    return DegradedValue(
        value=value,
        error_bound=collector.error_bound(query_weight_bound(store, query)),
        missing_blocks=tuple(b.block_id for b in collector.missing),
    )
