"""Deadline-bounded degraded reads: answer from what is already cached.

A query whose deadline has expired used to be answered with a bare
timeout.  The serving layer wants something better: the paper's
progressive/approximate answering says a wavelet store can always
produce *an* answer with a sound absolute error bound — the degraded
machinery of :mod:`repro.storage.degrade` computes exactly that for
unreadable blocks.  This module makes "no time left" look like
"unreadable": a :class:`DeadlineGuardDevice` wraps the block device
and, while a worker thread holds its :meth:`~DeadlineGuardDevice.cache_only`
scope, refuses every *device read* with :class:`BlockNotResidentError`.
Buffer-pool hits never reach the device, so an expired query re-run
under the scope reads only resident blocks, zero-fills the rest, and
reports the same ``W * ||block||_1`` error bound a fault-degraded read
would — without touching the (possibly slow, possibly contended) disk
at all.

The guard flag is **per-thread**: one tenant's expired queries degrade
while every other worker on the shared device keeps reading normally.
Writes always pass through (a cache-only read pass can still trigger
a write-back eviction, which must not be lost).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["BlockNotResidentError", "DeadlineGuardDevice"]


class BlockNotResidentError(IOError):
    """Read refused: the deadline budget allows no device I/O."""

    def __init__(self, block_id: int) -> None:
        super().__init__(
            f"block {block_id} is not resident and the deadline "
            f"budget allows no device read"
        )
        self.block_id = block_id


class DeadlineGuardDevice:
    """Device wrapper that can refuse reads for the current thread.

    Outside a :meth:`cache_only` scope the wrapper is a transparent
    pass-through (one ``threading.local`` attribute check per read).
    Install it *outermost* in the device chain — above journaling —
    so a refused read never consumes a checksum verification or a
    journal probe, and below the buffer pool — so resident blocks
    keep answering for free.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._local = threading.local()

    # ------------------------------------------------------------------
    # pass-through surface
    # ------------------------------------------------------------------

    @property
    def inner(self):
        return self._inner

    @property
    def stats(self):
        return self._inner.stats

    @property
    def block_slots(self) -> int:
        return self._inner.block_slots

    @property
    def num_blocks(self) -> int:
        return self._inner.num_blocks

    def allocate(self) -> int:
        return self._inner.allocate()

    def peek_block(self, block_id: int) -> np.ndarray:
        return self._inner.peek_block(block_id)

    def dump_blocks(self) -> np.ndarray:
        return self._inner.dump_blocks()

    def restore_blocks(self, blocks: np.ndarray) -> None:
        self._inner.restore_blocks(blocks)

    def bytes_used(self, coefficient_bytes: int = 8) -> int:
        return self._inner.bytes_used(coefficient_bytes)

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        self._inner.write_block(block_id, data)

    def __getattr__(self, name: str):
        # Durability extensions (``write_batch``, ``block_summary``,
        # ``journal``, ``recover``) surface only when the wrapped
        # device has them, so probing code sees a plain device as
        # plain — the same conditional-passthrough contract as
        # :class:`repro.service.pool._SynchronizedDevice`.
        if name in (
            "write_batch",
            "block_summary",
            "expected_summary",
            "journal",
            "recover",
            "scan",
            "fault_counts",
        ):
            return getattr(self._inner, name)
        raise AttributeError(name)

    # ------------------------------------------------------------------
    # the guard
    # ------------------------------------------------------------------

    @contextmanager
    def cache_only(self) -> Iterator[None]:
        """Refuse device reads on this thread for the scope's duration."""
        already = getattr(self._local, "active", False)
        self._local.active = True
        try:
            yield
        finally:
            self._local.active = already

    @property
    def guarding(self) -> bool:
        """Is the current thread inside a :meth:`cache_only` scope?"""
        return bool(getattr(self._local, "active", False))

    def read_block(self, block_id: int) -> np.ndarray:
        if getattr(self._local, "active", False):
            raise BlockNotResidentError(block_id)
        return self._inner.read_block(block_id)
